//! The paper's §2.3 DDoS-agent prototype, end to end: collect a (synthetic)
//! monitoring-node trace, write it to the log-file format, parse it back,
//! and replay it as an attack — first into the single-peer capacity model
//! (Figures 5–6), then as live wire traffic against a servent overlay.
//!
//! ```sh
//! cargo run --release --example trace_replay_attack
//! ```

use ddpolice::servent::{Harness, HarnessConfig, ServentRole};
use ddpolice::testbed::{parse_log, write_log, ChainExperiment, ReplayAgent, TraceCollector};
use ddpolice::topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. "Our experiment to collect query trace lasted 24 hours" — we collect
    //    a synthetic ten minutes at the same aggregate rate.
    let collector = TraceCollector::paper_setup();
    let mut rng = StdRng::seed_from_u64(2007);
    let (records, summary) = collector.collect(600, &mut rng);
    println!(
        "collected {} queries ({} distinct, {:.1} MB) through a {}-connection super node",
        summary.queries,
        summary.distinct_queries,
        summary.bytes as f64 / 1e6,
        collector.connections
    );

    // 2. Round-trip the log file format.
    let mut log = Vec::new();
    write_log(&records, &mut log).expect("in-memory write");
    let parsed = parse_log(&log[..]).expect("parse back");
    assert_eq!(parsed.len(), records.len());
    println!("log file: {} bytes, parsed back losslessly", log.len());

    // 3. Replay at the agent's maximum against peer B's capacity model.
    let mut agent = ReplayAgent::new(parsed, 29_000).expect("non-empty log");
    let minute = agent.next_minute();
    let point = ChainExperiment::default().point(minute.len() as u32);
    println!(
        "replaying {}/min into peer B: processed {}, dropped {} ({:.0}%) — Figure 6's endpoint",
        point.sent_qpm,
        point.processed_qpm,
        point.dropped_qpm,
        point.drop_rate * 100.0
    );

    // 4. The same behavior as a live overlay attack, caught by DD-POLICE.
    let graph = TopologyConfig { n: 25, model: TopologyModel::BarabasiAlbert { m: 3 } }
        .generate(&mut StdRng::seed_from_u64(4));
    let attacker = NodeId(6);
    let role = ServentRole::FloodingAgent { rate_qpm: 1_200, respond_reports: true };
    let mut h = Harness::new(&graph, &[(attacker, role)], HarnessConfig::default(), 11);
    h.run_minutes(3);
    let isolated = h.servents[attacker.index()].neighbors().is_empty();
    println!(
        "\nlive replay: agent {attacker} flooded the overlay and was {} by DD-POLICE",
        if isolated { "fully isolated" } else { "NOT isolated" }
    );
}
