//! The paper's §3.6 motivation, live: how few agents does it take to hurt a
//! flooding-search overlay? Sweeps the number of DDoS agents and prints
//! traffic amplification, response-time slowdown, and success rate — the
//! quantities of Figures 9–11.
//!
//! ```sh
//! cargo run --release --example attack_impact
//! ```

use ddpolice::experiments::runners::{agent_sweep, fig10, fig11, fig9};
use ddpolice::experiments::ExpOptions;

fn main() {
    let opts = ExpOptions { peers: 1_000, ticks: 15, seed: 42, ..ExpOptions::default() };
    println!(
        "sweeping DDoS agent counts on a {}-peer overlay ({} minutes each, 3 regimes)...\n",
        opts.peers, opts.ticks
    );
    let rows = agent_sweep(&opts);
    print!("{}", fig9(&rows).render());
    println!();
    print!("{}", fig10(&rows).render());
    println!();
    print!("{}", fig11(&rows).render());
    println!();
    println!(
        "paper's headline (§3.6): \"ten to twenty (<0.1%) compromised peers will double the\n\
         total traffic\" and \"up to 89.7% of queries could fail\" at 100 agents — compare the\n\
         amplification and success columns above."
    );
}
