//! Quickstart: simulate an overlay DDoS attack and defend it with DD-POLICE.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ddpolice::experiments::DefenseKind;
use ddpolice::prelude::*;

fn main() {
    // A 1,000-peer Gnutella-style overlay, 20 simulated minutes, 20 DDoS
    // agents flooding at min(20,000, link) queries per minute each.
    let scenario = Scenario::builder()
        .peers(1_000)
        .ticks(20)
        .attackers(20)
        .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
        .seed(7)
        .build();

    // `run_with_damage` also runs the paired no-attack baseline (same seed,
    // same topology) so the paper's damage rate D(t) can be computed.
    let report = scenario.run_with_damage();

    println!("defense: {}", report.attacked.defense);
    println!("baseline success rate: {:.1}%", report.baseline.summary.success_rate_mean * 100.0);
    println!(
        "attacked success rate: {:.1}% (stabilized {:.1}%)",
        report.attacked.summary.success_rate_mean * 100.0,
        report.attacked.summary.success_rate_stable * 100.0
    );
    println!(
        "attacker disconnection events: {} ({} agents never caught)",
        report.attacked.summary.attackers_cut, report.attacked.summary.attackers_never_cut
    );
    println!(
        "good peers wrongly cut (paper's false negative): {}",
        report.attacked.summary.errors.false_negative
    );
    match report.recovery_ticks {
        Some(t) => println!("damage recovery time: {t} minutes"),
        None => println!("damage never exceeded the 20% trigger (or never recovered)"),
    }
    println!("\ndamage rate per minute:");
    for (t, d) in report.damage.values.iter().enumerate() {
        println!("  minute {:>2}: {:>5.1}%  {}", t + 1, d * 100.0, bar(*d));
    }
}

fn bar(v: f64) -> String {
    "#".repeat((v * 40.0).round() as usize)
}
