//! Churn vs the neighbor-list exchange policy (§3.7.1), live.
//!
//! DD-POLICE's Buddy Groups are built from *exchanged snapshots* of neighbor
//! lists. Under churn the snapshots go stale; the exchange period trades
//! accuracy (stale members are assumed to have reported zero, inflating the
//! indicators) against control-message overhead. The paper settles on a
//! periodic exchange every 2 minutes.
//!
//! ```sh
//! cargo run --release --example churn_dynamics
//! ```

use ddpolice::experiments::runners::exchange;
use ddpolice::experiments::ExpOptions;
use ddpolice::sim::SimConfig;
use ddpolice::workload::LifetimeModel;

fn main() {
    let opts = ExpOptions { peers: 1_000, ticks: 15, agents: 30, seed: 4, ..ExpOptions::default() };
    println!(
        "comparing exchange policies with {} agents on {} peers, churn on\n",
        opts.agents, opts.peers
    );
    print!("{}", exchange(&opts).render());

    // Show how fast sessions actually turn over in the paper's model.
    let cfg = SimConfig::default();
    println!("\nchurn model (§3.5): lifetime {:?}", cfg.lifetime);
    let mut rng = rand::SeedableRng::seed_from_u64(1);
    let mut lifetimes: Vec<u32> = (0..10_000)
        .map(|_| LifetimeModel::default().sample_minutes::<rand::rngs::StdRng>(&mut rng))
        .collect();
    lifetimes.sort_unstable();
    let pct = |p: f64| lifetimes[(p * (lifetimes.len() - 1) as f64) as usize];
    println!(
        "sampled session lifetimes: p10={} min, median={} min, p90={} min, mean≈10 min",
        pct(0.10),
        pct(0.50),
        pct(0.90)
    );
    println!(
        "\n=> over a 2-minute exchange period roughly {:.0}% of sessions end, which is the\n\
           staleness DD-POLICE tolerates by design (\"no big difference ... as long as s is\n\
           no more than 2 minutes\", §3.7.1).",
        100.0 * 2.0 / 10.0
    );
}
