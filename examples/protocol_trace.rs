//! Watch DD-POLICE catch a flooding agent at the *protocol* level: real
//! servents, every message encoded to wire bytes on every hop.
//!
//! ```sh
//! cargo run --release --example protocol_trace
//! ```

use ddpolice::servent::{Harness, HarnessConfig, ServentRole};
use ddpolice::topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let graph = TopologyConfig { n: 30, model: TopologyModel::BarabasiAlbert { m: 3 } }
        .generate(&mut StdRng::seed_from_u64(2));
    let attacker = NodeId(4);
    let degree = graph.degree(attacker);
    println!(
        "30 servents, BA overlay; peer {attacker} (degree {degree}) floods 1,500 distinct\n\
         queries per minute per neighbor starting at second 1.\n"
    );
    let role = ServentRole::FloodingAgent { rate_qpm: 1_500, respond_reports: true };
    let mut h = Harness::new(&graph, &[(attacker, role)], HarnessConfig::default(), 9);
    h.run_minutes(4);
    let r = h.report();

    println!("timeline:");
    println!("  second   0  connect-time neighbor-list exchange (Buddy Groups form)");
    println!("  second  60  minute-1 counters finalize; In_query(attacker) > 500 everywhere");
    println!("  second  62  Neighbor_Traffic (0x83) reports cross between BG members");
    for &(t, observer, suspect) in r.cuts.iter().filter(|&&(_, _, s)| s == attacker) {
        println!("  second {t:>3}  {observer} sends Bye(0x0bad) and disconnects {suspect}");
    }
    let wrongful: Vec<_> = r.cuts.iter().filter(|&&(_, _, s)| s != attacker).collect();
    println!("\nattacker isolated: {}", h.servents[attacker.index()].neighbors().is_empty());
    println!("wrongful disconnections: {}", wrongful.len());
    println!(
        "search service: {}/{} queries resolved, mean first-hit latency {:.1}s",
        r.resolved, r.issued, r.mean_latency_secs
    );
    println!(
        "wire totals: {} frames, {:.1} MB — every frame went through encode/decode",
        r.frames,
        r.bytes as f64 / 1e6
    );
    // Show one observer's verdict (the indicators in action).
    for s in &h.servents {
        if let Some(&(t, suspect, g, sv, true)) =
            s.verdict_log.iter().find(|&&(_, sus, _, _, cut)| cut && sus == attacker)
        {
            println!(
                "\nexample verdict: at second {t}, {} judged {} with g = {g:.1}, s = {sv:.1} \
                 (cut threshold 5) — both ≈ q0/q = 1500/100",
                s.id, suspect
            );
            break;
        }
    }
}
