//! Tuning DD-POLICE's cut threshold — the §3.7.2 tradeoff, live.
//!
//! A small CT makes peers trigger-happy (good forwarders get cut: the
//! paper's "false negative"); a large CT lets marginal agents linger (the
//! paper's "false positive") and slows recovery. The paper settles on
//! CT = 5.
//!
//! ```sh
//! cargo run --release --example defense_tuning
//! ```

use ddpolice::experiments::runners::{ct_sweep, fig13, fig14};
use ddpolice::experiments::ExpOptions;

fn main() {
    let opts = ExpOptions {
        peers: 1_000,
        ticks: 15,
        agents: 50,
        seed: 9,
        replicates: 2,
        ..ExpOptions::default()
    };
    println!(
        "sweeping the cut threshold with {} agents on {} peers ({} replicates)...\n",
        opts.agents, opts.peers, opts.replicates
    );
    let rows = ct_sweep(&opts, &[1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 12.0]);
    print!("{}", fig13(&rows).render());
    println!();
    print!("{}", fig14(&rows).render());
    println!();

    // "Comprehensively considering the performance of DD-POLICE, we choose
    // CT = 5" (§3.7.2): the paper weighs errors *and* recovery. Mirror that:
    // among thresholds that actually recover (damage back under 15%), pick
    // the one with the fewest errors.
    let best = rows
        .iter()
        .filter(|r| r.recovery_ticks.is_some())
        .min_by(|a, b| a.false_judgment.total_cmp(&b.false_judgment));
    match best {
        Some(r) => println!(
            "best recovering threshold: CT = {} (false judgment {:.1}, recovery {:.1} min) — the paper chooses CT = 5",
            r.cut_threshold,
            r.false_judgment,
            r.recovery_ticks.unwrap_or(f64::NAN),
        ),
        None => println!("no threshold recovered — increase ticks"),
    }
}
