//! The paper's §5 future work, carried out: overlay DDoS on a *structured*
//! P2P system (a Chord-like DHT).
//!
//! ```sh
//! cargo run --release --example structured_dht
//! ```

use ddpolice::dht::{DhtAttack, DhtConfig, DhtPolice, DhtSimulation};

fn run(label: &str, attack: DhtAttack, defense: Option<DhtPolice>, agents: usize) {
    let mut sim =
        DhtSimulation::new(DhtConfig { peers: 1_000, attack, defense, ..DhtConfig::default() }, 7);
    sim.compromise(agents);
    let res = sim.run(10);
    println!(
        "{label:<38} success {:>5.1}%  isolated {:>2}/{agents}  wrongly isolated {}",
        res.summary.success_rate_stable * 100.0,
        res.attackers_isolated,
        res.summary.errors.false_negative,
    );
}

fn main() {
    println!("1,000-node Chord-like ring, 10 simulated minutes, 50 DDoS agents\n");
    run("uniform attack, no defense", DhtAttack::Uniform, None, 50);
    run("uniform attack, origination detector", DhtAttack::Uniform, Some(DhtPolice::default()), 50);
    run("hotspot attack, no defense", DhtAttack::Hotspot { victim_key: 42 }, None, 50);
    println!(
        "\nTakeaways (see EXPERIMENTS.md §5): unicast lookups have no flooding\n\
         amplification, so the same agents hurt far less than on Gnutella; a\n\
         node's `sent − received` difference exposes originators locally (no\n\
         Buddy Group needed); and the hotspot variant censors one key region\n\
         while global service stays up."
    );
}
