//! The Gnutella-with-DD-POLICE wire protocol, byte by byte.
//!
//! Builds each message type, encodes it, decodes it back, and walks a query
//! through a peer's seen-GUID table to show duplicate suppression and
//! reverse-path routing — the two Gnutella rules (§2.2) that both enable the
//! attack (anonymity) and power the defense (per-link accounting).
//!
//! ```sh
//! cargo run --example wire_protocol
//! ```

use ddpolice::protocol::routing::Offer;
use ddpolice::protocol::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn show(msg: &Message) {
    let wire = encode_message(msg);
    println!(
        "{:?} (0x{:02x}) — {} bytes on the wire",
        msg.header.kind,
        msg.header.kind as u8,
        wire.len()
    );
    print!("   ");
    for (i, b) in wire.iter().enumerate() {
        if i == HEADER_LEN {
            print!("| ");
        }
        print!("{b:02x}");
        if i + 1 == wire.len().min(40) {
            break;
        }
    }
    if wire.len() > 40 {
        print!("…");
    }
    println!();
    let mut cursor = wire.clone();
    let back = decode_message(&mut cursor).expect("roundtrip");
    assert_eq!(&back, msg);
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);

    println!("== message catalog (23-byte header | payload) ==\n");
    show(&Message::new(Guid::random(&mut rng), 7, Payload::Ping(Ping)));
    show(&Message::new(
        Guid::random(&mut rng),
        7,
        Payload::Query(Query { min_speed: 0, criteria: "free mp3".into() }),
    ));
    show(&Message::new(
        Guid::random(&mut rng),
        7,
        Payload::QueryHit(QueryHit {
            addr: PeerAddr::from_node_index(42),
            speed_kbps: 1_000,
            results: vec![QueryHitResult {
                file_index: 1,
                file_size: 3_400_000,
                file_name: "song.mp3".into(),
            }],
            servent_id: [0xab; 16],
        }),
    ));
    // The paper's Table 1 extension: payload type 0x83.
    show(&Message::new(
        Guid::random(&mut rng),
        1,
        Payload::NeighborTraffic(NeighborTraffic {
            source_ip: Ipv4Addr::new(10, 0, 0, 1),
            suspect_ip: Ipv4Addr::new(10, 0, 0, 2),
            timestamp: 1_185_000_000,
            outgoing_queries: 412,
            incoming_queries: 5_204,
        }),
    ));
    show(&Message::new(
        Guid::random(&mut rng),
        1,
        Payload::NeighborList(NeighborList {
            neighbors: (0..4).map(PeerAddr::from_node_index).collect(),
        }),
    ));
    show(&Message::new(
        Guid::random(&mut rng),
        1,
        Payload::Bye(Bye {
            code: Bye::CODE_DDOS_SUSPECT,
            reason: "single indicator exceeded CT".into(),
        }),
    ));

    println!("\n== duplicate suppression & reverse-path routing ==\n");
    let mut seen = SeenTable::new(600);
    let q = Guid::random(&mut rng);
    // The query arrives first from neighbor 3, then again from neighbor 9.
    assert_eq!(seen.offer(q, 3, 0), Offer::Fresh);
    println!("query {q} from neighbor 3: fresh -> process & forward");
    assert_eq!(seen.offer(q, 9, 1), Offer::Duplicate);
    println!("query {q} from neighbor 9: duplicate -> drop (\"visited before\")");
    println!(
        "query hit for {q} routes back to neighbor {} (inverse path)",
        seen.reverse_route(&q).unwrap()
    );
    println!(
        "\nNote: the hit never names the query's origin — that anonymity is why\n\
         network-layer DDoS defenses cannot see overlay flooding attacks (§1)."
    );
}
