//! Whole-message encode/decode.

use crate::error::ProtocolError;
use crate::header::Header;
use crate::message::{Message, Payload};
use bytes::{Bytes, BytesMut};

/// Encode a full message (header + payload) to bytes.
///
/// The header's `payload_len` is recomputed from the actual payload, so a
/// stale length cannot produce a corrupt frame.
pub fn encode_message(msg: &Message) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    msg.payload.encode(&mut body);
    let mut out = BytesMut::with_capacity(crate::header::HEADER_LEN + body.len());
    let header = Header { payload_len: body.len() as u32, ..msg.header };
    header.encode(&mut out);
    out.extend_from_slice(&body);
    out.freeze()
}

/// Decode one full message from the front of `buf`, advancing it.
pub fn decode_message(buf: &mut Bytes) -> Result<Message, ProtocolError> {
    let header = Header::decode(buf)?;
    let want = header.payload_len as usize;
    if buf.len() < want {
        return Err(ProtocolError::TruncatedPayload { want, have: buf.len() });
    }
    let mut body = buf.split_to(want);
    let payload = Payload::decode(header.kind, &mut body)?;
    if body.has_remaining_bytes() {
        return Err(ProtocolError::MalformedPayload("trailing bytes in payload"));
    }
    Ok(Message { header, payload })
}

trait HasRemaining {
    fn has_remaining_bytes(&self) -> bool;
}

impl HasRemaining for Bytes {
    fn has_remaining_bytes(&self) -> bool {
        !self.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guid::Guid;
    use crate::message::*;
    use std::net::Ipv4Addr;

    fn roundtrip(payload: Payload) -> Message {
        let msg = Message::new(Guid::derived(9, 9), 7, payload);
        let mut wire = encode_message(&msg);
        let back = decode_message(&mut wire).expect("decode");
        assert!(wire.is_empty(), "no trailing bytes");
        assert_eq!(msg, back);
        back
    }

    #[test]
    fn ping_roundtrip() {
        let m = roundtrip(Payload::Ping(Ping));
        assert_eq!(m.header.payload_len, 0);
    }

    #[test]
    fn pong_roundtrip() {
        roundtrip(Payload::Pong(Pong {
            addr: PeerAddr::from_node_index(77),
            shared_files: 10,
            shared_kb: 2048,
        }));
    }

    #[test]
    fn bye_roundtrip() {
        roundtrip(Payload::Bye(Bye {
            code: Bye::CODE_DDOS_SUSPECT,
            reason: "general indicator exceeded cut threshold".into(),
        }));
    }

    #[test]
    fn query_roundtrip() {
        roundtrip(Payload::Query(Query { min_speed: 0, criteria: "object-4242".into() }));
    }

    #[test]
    fn query_hit_roundtrip() {
        roundtrip(Payload::QueryHit(QueryHit {
            addr: PeerAddr::from_node_index(3),
            speed_kbps: 1000,
            results: vec![
                QueryHitResult { file_index: 1, file_size: 100, file_name: "a.mp3".into() },
                QueryHitResult { file_index: 2, file_size: 200, file_name: "b.mp3".into() },
            ],
            servent_id: [7u8; 16],
        }));
    }

    #[test]
    fn neighbor_traffic_roundtrip() {
        roundtrip(Payload::NeighborTraffic(NeighborTraffic {
            source_ip: Ipv4Addr::new(10, 0, 0, 1),
            suspect_ip: Ipv4Addr::new(10, 0, 0, 2),
            timestamp: 123_456,
            outgoing_queries: 400,
            incoming_queries: 5_000,
        }));
    }

    #[test]
    fn neighbor_list_roundtrip() {
        roundtrip(Payload::NeighborList(NeighborList {
            neighbors: (0..6).map(PeerAddr::from_node_index).collect(),
        }));
    }

    /// Table 1 of the paper fixes the Neighbor_Traffic body layout: byte
    /// offsets 0, 4, 8, 12, 16 for the five 4-byte fields.
    #[test]
    fn neighbor_traffic_table1_byte_layout() {
        let nt = NeighborTraffic {
            source_ip: Ipv4Addr::new(1, 2, 3, 4),
            suspect_ip: Ipv4Addr::new(5, 6, 7, 8),
            timestamp: 0x11223344,
            outgoing_queries: 0xAABBCCDD,
            incoming_queries: 0x01020304,
        };
        let msg = Message::new(Guid::ZERO, 1, Payload::NeighborTraffic(nt));
        let wire = encode_message(&msg);
        let body = &wire[crate::header::HEADER_LEN..];
        assert_eq!(body.len(), NEIGHBOR_TRAFFIC_LEN);
        assert_eq!(&body[0..4], &[1, 2, 3, 4], "source ip at offset 0");
        assert_eq!(&body[4..8], &[5, 6, 7, 8], "suspect ip at offset 4");
        assert_eq!(&body[8..12], &0x11223344u32.to_le_bytes(), "timestamp at offset 8");
        assert_eq!(&body[12..16], &0xAABBCCDDu32.to_le_bytes(), "#outgoing at offset 12");
        assert_eq!(&body[16..20], &0x01020304u32.to_le_bytes(), "#incoming at offset 16");
    }

    #[test]
    fn truncated_payload_rejected() {
        let msg = Message::new(
            Guid::derived(1, 1),
            5,
            Payload::Query(Query { min_speed: 0, criteria: "x".into() }),
        );
        let wire = encode_message(&msg);
        let mut cut = wire.slice(..wire.len() - 2);
        assert!(matches!(decode_message(&mut cut), Err(ProtocolError::TruncatedPayload { .. })));
    }

    #[test]
    fn trailing_garbage_rejected() {
        // Claim a payload longer than the actual Ping body (0) and pad it.
        let msg = Message::new(Guid::derived(2, 2), 5, Payload::Ping(Ping));
        let mut wire = BytesMut::from(&encode_message(&msg)[..]);
        wire[19] = 3; // payload_len = 3 (little-endian at offset 19)
        wire.extend_from_slice(&[0, 0, 0]);
        let mut bytes = wire.freeze();
        assert_eq!(
            decode_message(&mut bytes),
            Err(ProtocolError::MalformedPayload("trailing bytes in payload"))
        );
    }

    #[test]
    fn wire_len_matches_encoding() {
        let msg = Message::new(
            Guid::derived(4, 4),
            7,
            Payload::Query(Query { min_speed: 0, criteria: "hello".into() }),
        );
        assert_eq!(msg.wire_len(), encode_message(&msg).len());
    }

    #[test]
    fn back_to_back_messages_decode_in_sequence() {
        let a = Message::new(Guid::derived(1, 0), 7, Payload::Ping(Ping));
        let b = Message::new(
            Guid::derived(1, 1),
            7,
            Payload::Query(Query { min_speed: 0, criteria: "q".into() }),
        );
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&encode_message(&a));
        stream.extend_from_slice(&encode_message(&b));
        let mut bytes = stream.freeze();
        assert_eq!(decode_message(&mut bytes).unwrap(), a);
        assert_eq!(decode_message(&mut bytes).unwrap(), b);
        assert!(bytes.is_empty());
    }
}
