//! Protocol decode errors.

use std::fmt;

/// Errors produced while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Fewer bytes available than the fixed 23-byte header.
    TruncatedHeader { have: usize },
    /// Payload length field exceeds the bytes actually available.
    TruncatedPayload { want: usize, have: usize },
    /// Unknown payload descriptor byte.
    UnknownPayloadKind(u8),
    /// A payload field was malformed (bad count, missing terminator, ...).
    MalformedPayload(&'static str),
    /// The payload length field exceeds the protocol's sanity cap.
    OversizedPayload { len: usize, cap: usize },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TruncatedHeader { have } => {
                write!(f, "truncated header: have {have} bytes, need 23")
            }
            ProtocolError::TruncatedPayload { want, have } => {
                write!(f, "truncated payload: header claims {want} bytes, have {have}")
            }
            ProtocolError::UnknownPayloadKind(b) => write!(f, "unknown payload kind 0x{b:02x}"),
            ProtocolError::MalformedPayload(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::OversizedPayload { len, cap } => {
                write!(f, "payload length {len} exceeds cap {cap}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}
