//! Payload types and their wire encodings.

use crate::error::ProtocolError;
use bytes::{Buf, BufMut};
use std::fmt;
use std::net::Ipv4Addr;

/// A peer's transport address as carried on the wire (IPv4 + port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeerAddr {
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl PeerAddr {
    /// Synthesize a stable fake address from a simulator node index.
    ///
    /// The simulator does not route real packets; addresses only serve as
    /// identifiers inside messages (the paper's Table 1 carries IPs).
    pub fn from_node_index(i: u32) -> Self {
        let octets = (0x0a00_0000u32 | (i & 0x00ff_ffff)).to_be_bytes(); // 10.x.y.z
        PeerAddr { ip: Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]), port: 6346 }
    }

    /// Recover the simulator node index a [`PeerAddr::from_node_index`]
    /// address encodes (the low 24 bits of the 10.x.y.z address).
    pub fn node_index(&self) -> u32 {
        u32::from_be_bytes(self.ip.octets()) & 0x00ff_ffff
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.ip.octets());
        buf.put_u16_le(self.port);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, ProtocolError> {
        if buf.remaining() < 6 {
            return Err(ProtocolError::MalformedPayload("truncated peer address"));
        }
        let mut oct = [0u8; 4];
        buf.copy_to_slice(&mut oct);
        let port = buf.get_u16_le();
        Ok(PeerAddr { ip: Ipv4Addr::from(oct), port })
    }
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// `0x00` — keep-alive probe (empty body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ping;

/// `0x01` — ping response with the responder's address and shared-content
/// advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pong {
    pub addr: PeerAddr,
    pub shared_files: u32,
    pub shared_kb: u32,
}

/// `0x02` — graceful disconnect with a reason code.
///
/// DD-POLICE sends a Bye when it disconnects a suspect so that "the good peer
/// in this pair could start to pay more attention to the other peer" (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bye {
    /// Reason code; [`Bye::CODE_DDOS_SUSPECT`] marks defensive cuts.
    pub code: u16,
    pub reason: String,
}

impl Bye {
    /// Reason code used when DD-POLICE disconnects a suspected DDoS agent.
    pub const CODE_DDOS_SUSPECT: u16 = 0x0bad;
    /// Reason code used when a neighbor-list consistency check fails.
    pub const CODE_LIST_INCONSISTENT: u16 = 0x0bae;
}

/// `0x80` — flooded search query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Minimum speed (kbps) a responder should have; legacy field.
    pub min_speed: u16,
    /// Search string (the simulator stores the object id in decimal).
    pub criteria: String,
}

/// One result inside a query hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHitResult {
    pub file_index: u32,
    pub file_size: u32,
    pub file_name: String,
}

/// `0x81` — query hit, routed back along the query's inverse path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHit {
    pub addr: PeerAddr,
    pub speed_kbps: u32,
    pub results: Vec<QueryHitResult>,
    /// Responder's servent id (16 bytes).
    pub servent_id: [u8; 16],
}

/// `0x83` — the paper's `Neighbor_Traffic` message body (Table 1).
///
/// "The first three fields contain the source IP address of the current peer,
/// the IP address of the suspicious neighbor, and the time the source sends
/// out the message. The last two fields are the number of queries sent out
/// from the source peer to the suspicious peer, and the number of queries
/// that came from the suspicious peer to the source in the past one minute."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborTraffic {
    /// Source IP address of the reporting peer.
    pub source_ip: Ipv4Addr,
    /// IP address of the suspected DDoS peer.
    pub suspect_ip: Ipv4Addr,
    /// Time (simulation seconds / UNIX-style) the report was generated.
    pub timestamp: u32,
    /// `Out_query(suspect)`: queries sent from source to suspect, last minute.
    pub outgoing_queries: u32,
    /// `In_query(suspect)`: queries received from suspect, last minute.
    pub incoming_queries: u32,
}

/// Byte length of the Table 1 body: 5 fields x 4 bytes.
pub const NEIGHBOR_TRAFFIC_LEN: usize = 20;

/// `0x85` — neighbor-list exchange body (§3.1): the sender's current logical
/// neighbors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NeighborList {
    pub neighbors: Vec<PeerAddr>,
}

/// `0x86` — per-link fresh-query receipt (extension; not in the paper).
///
/// "In the past minute I accepted `fresh_queries` *non-duplicate* queries
/// from you." Receiver-side duplicate-filtered counts are what Definitions
/// 2.1–2.3 implicitly assume (their §2.2 no-duplication model); at protocol
/// level, an attacker flooding *distinct* queries per link (Figure 1) gets
/// its own traffic echoed back into it along 2-hop paths, which inflates
/// sender-measured `Q_{m→j}` enough to exonerate it — receipts close that
/// hole for honest reporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// Whose traffic the receipt covers (the neighbor being told).
    pub subject_ip: Ipv4Addr,
    /// Fresh (non-duplicate) queries accepted from the subject, last minute.
    pub fresh_queries: u32,
}

/// A payload of any kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    Ping(Ping),
    Pong(Pong),
    Bye(Bye),
    Query(Query),
    QueryHit(QueryHit),
    NeighborTraffic(NeighborTraffic),
    NeighborList(NeighborList),
    Receipt(Receipt),
}

impl Payload {
    /// The descriptor byte for this payload.
    pub fn kind(&self) -> crate::header::PayloadKind {
        use crate::header::PayloadKind as K;
        match self {
            Payload::Ping(_) => K::Ping,
            Payload::Pong(_) => K::Pong,
            Payload::Bye(_) => K::Bye,
            Payload::Query(_) => K::Query,
            Payload::QueryHit(_) => K::QueryHit,
            Payload::NeighborTraffic(_) => K::NeighborTraffic,
            Payload::NeighborList(_) => K::NeighborList,
            Payload::Receipt(_) => K::Receipt,
        }
    }

    /// Encode just the payload body.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Payload::Ping(_) => {}
            Payload::Pong(p) => {
                p.addr.encode(buf);
                buf.put_u32_le(p.shared_files);
                buf.put_u32_le(p.shared_kb);
            }
            Payload::Bye(b) => {
                buf.put_u16_le(b.code);
                buf.put_slice(b.reason.as_bytes());
                buf.put_u8(0);
            }
            Payload::Query(q) => {
                buf.put_u16_le(q.min_speed);
                buf.put_slice(q.criteria.as_bytes());
                buf.put_u8(0);
            }
            Payload::QueryHit(qh) => {
                buf.put_u8(qh.results.len() as u8);
                qh.addr.encode(buf);
                buf.put_u32_le(qh.speed_kbps);
                for r in &qh.results {
                    buf.put_u32_le(r.file_index);
                    buf.put_u32_le(r.file_size);
                    buf.put_slice(r.file_name.as_bytes());
                    buf.put_u8(0);
                    buf.put_u8(0);
                }
                buf.put_slice(&qh.servent_id);
            }
            Payload::NeighborTraffic(nt) => {
                buf.put_slice(&nt.source_ip.octets());
                buf.put_slice(&nt.suspect_ip.octets());
                buf.put_u32_le(nt.timestamp);
                buf.put_u32_le(nt.outgoing_queries);
                buf.put_u32_le(nt.incoming_queries);
            }
            Payload::NeighborList(nl) => {
                buf.put_u16_le(nl.neighbors.len() as u16);
                for a in &nl.neighbors {
                    a.encode(buf);
                }
            }
            Payload::Receipt(r) => {
                buf.put_slice(&r.subject_ip.octets());
                buf.put_u32_le(r.fresh_queries);
            }
        }
    }

    /// Decode a payload body of the given kind from exactly `buf`.
    pub fn decode<B: Buf>(
        kind: crate::header::PayloadKind,
        buf: &mut B,
    ) -> Result<Self, ProtocolError> {
        use crate::header::PayloadKind as K;
        Ok(match kind {
            K::Ping => Payload::Ping(Ping),
            K::Pong => {
                let addr = PeerAddr::decode(buf)?;
                if buf.remaining() < 8 {
                    return Err(ProtocolError::MalformedPayload("truncated pong"));
                }
                Payload::Pong(Pong {
                    addr,
                    shared_files: buf.get_u32_le(),
                    shared_kb: buf.get_u32_le(),
                })
            }
            K::Bye => {
                if buf.remaining() < 2 {
                    return Err(ProtocolError::MalformedPayload("truncated bye"));
                }
                let code = buf.get_u16_le();
                let reason = read_cstring(buf)?;
                Payload::Bye(Bye { code, reason })
            }
            K::Query => {
                if buf.remaining() < 2 {
                    return Err(ProtocolError::MalformedPayload("truncated query"));
                }
                let min_speed = buf.get_u16_le();
                let criteria = read_cstring(buf)?;
                Payload::Query(Query { min_speed, criteria })
            }
            K::QueryHit => {
                if buf.remaining() < 1 {
                    return Err(ProtocolError::MalformedPayload("truncated query hit"));
                }
                let n = buf.get_u8() as usize;
                let addr = PeerAddr::decode(buf)?;
                if buf.remaining() < 4 {
                    return Err(ProtocolError::MalformedPayload("truncated query hit speed"));
                }
                let speed_kbps = buf.get_u32_le();
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    if buf.remaining() < 8 {
                        return Err(ProtocolError::MalformedPayload("truncated hit result"));
                    }
                    let file_index = buf.get_u32_le();
                    let file_size = buf.get_u32_le();
                    let file_name = read_cstring(buf)?;
                    if buf.remaining() < 1 || buf.get_u8() != 0 {
                        return Err(ProtocolError::MalformedPayload(
                            "missing double-null after file name",
                        ));
                    }
                    results.push(QueryHitResult { file_index, file_size, file_name });
                }
                if buf.remaining() < 16 {
                    return Err(ProtocolError::MalformedPayload("truncated servent id"));
                }
                let mut servent_id = [0u8; 16];
                buf.copy_to_slice(&mut servent_id);
                Payload::QueryHit(QueryHit { addr, speed_kbps, results, servent_id })
            }
            K::NeighborTraffic => {
                if buf.remaining() < NEIGHBOR_TRAFFIC_LEN {
                    return Err(ProtocolError::MalformedPayload("truncated neighbor traffic"));
                }
                let mut src = [0u8; 4];
                buf.copy_to_slice(&mut src);
                let mut sus = [0u8; 4];
                buf.copy_to_slice(&mut sus);
                Payload::NeighborTraffic(NeighborTraffic {
                    source_ip: Ipv4Addr::from(src),
                    suspect_ip: Ipv4Addr::from(sus),
                    timestamp: buf.get_u32_le(),
                    outgoing_queries: buf.get_u32_le(),
                    incoming_queries: buf.get_u32_le(),
                })
            }
            K::NeighborList => {
                if buf.remaining() < 2 {
                    return Err(ProtocolError::MalformedPayload("truncated neighbor list"));
                }
                let n = buf.get_u16_le() as usize;
                let mut neighbors = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    neighbors.push(PeerAddr::decode(buf)?);
                }
                Payload::NeighborList(NeighborList { neighbors })
            }
            K::Receipt => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::MalformedPayload("truncated receipt"));
                }
                let mut oct = [0u8; 4];
                buf.copy_to_slice(&mut oct);
                Payload::Receipt(Receipt {
                    subject_ip: Ipv4Addr::from(oct),
                    fresh_queries: buf.get_u32_le(),
                })
            }
        })
    }
}

fn read_cstring<B: Buf>(buf: &mut B) -> Result<String, ProtocolError> {
    let mut out = Vec::new();
    loop {
        if buf.remaining() == 0 {
            return Err(ProtocolError::MalformedPayload("unterminated string"));
        }
        let b = buf.get_u8();
        if b == 0 {
            break;
        }
        out.push(b);
    }
    String::from_utf8(out).map_err(|_| ProtocolError::MalformedPayload("non-utf8 string"))
}

/// A complete message: header plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    pub header: crate::header::Header,
    pub payload: Payload,
}

impl Message {
    /// Build a message with a fresh header for the given payload.
    pub fn new(guid: crate::guid::Guid, ttl: u8, payload: Payload) -> Self {
        let mut tmp = bytes::BytesMut::new();
        payload.encode(&mut tmp);
        Message {
            header: crate::header::Header {
                guid,
                kind: payload.kind(),
                ttl,
                hops: 0,
                payload_len: tmp.len() as u32,
            },
            payload,
        }
    }

    /// Total encoded size (header + payload) in bytes.
    pub fn wire_len(&self) -> usize {
        crate::header::HEADER_LEN + self.header.payload_len as usize
    }
}

#[cfg(test)]
mod addr_tests {
    use super::*;

    #[test]
    fn node_index_roundtrips_through_the_address() {
        for i in [0u32, 1, 77, 65_535, 0x00ff_ffff] {
            assert_eq!(PeerAddr::from_node_index(i).node_index(), i);
        }
    }
}
