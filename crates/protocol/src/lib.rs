//! Gnutella 0.6-style wire protocol with the DD-POLICE extension.
//!
//! DD-POLICE is specified as a Gnutella 0.6 protocol extension (§3.3 of the
//! paper): every message carries the unified 23-byte Gnutella header
//! (16-byte GUID, payload type, TTL, hops, 4-byte payload length), and the
//! defense adds one new payload type, **`Neighbor_Traffic` = `0x83`**, whose
//! body is given in the paper's Table 1:
//!
//! | field | bytes |
//! |-------|-------|
//! | Source IP address   | 4 |
//! | Suspect IP address  | 4 |
//! | Source timestamp    | 4 |
//! | # outgoing queries  | 4 |
//! | # incoming queries  | 4 |
//!
//! Besides `Neighbor_Traffic`, this crate implements the classic descriptors
//! (Ping `0x00`, Pong `0x01`, Bye `0x02`, Query `0x80`, QueryHit `0x81`) and
//! a `NeighborList` (`0x85`) message used by DD-POLICE's neighbor-list
//! exchange step (§3.1; the paper does not pin a payload id for it, so we
//! allocate the next free vendor id).
//!
//! The [`routing`] module provides the GUID "seen" table that implements the
//! Gnutella rule "a query message will be dropped if \[it\] has visited the
//! peer before", plus reverse-path routing for query hits.

pub mod codec;
pub mod error;
pub mod guid;
pub mod header;
pub mod message;
pub mod routing;

pub use codec::{decode_message, encode_message};
pub use error::ProtocolError;
pub use guid::Guid;
pub use header::{Header, PayloadKind, HEADER_LEN, MAX_PAYLOAD_LEN};
pub use message::{
    Bye, Message, NeighborList, NeighborTraffic, Payload, PeerAddr, Ping, Pong, Query, QueryHit,
    QueryHitResult, Receipt,
};
pub use routing::SeenTable;
