//! The unified 23-byte Gnutella message header.

use crate::error::ProtocolError;
use crate::guid::Guid;
use bytes::{Buf, BufMut};

/// Length of the fixed Gnutella header: GUID(16) + kind(1) + TTL(1) +
/// hops(1) + payload length(4).
pub const HEADER_LEN: usize = 23;

/// Sanity cap on the payload length field; real servents drop anything
/// claiming more (protects the decoder from hostile length fields).
pub const MAX_PAYLOAD_LEN: usize = 64 * 1024;

/// Payload descriptor byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PayloadKind {
    /// `0x00` — keep-alive probe (also used for Buddy Group liveness pings,
    /// §3.1: "A peer pings members within the same BG periodically").
    Ping = 0x00,
    /// `0x01` — ping response.
    Pong = 0x01,
    /// `0x02` — graceful disconnect notice; DD-POLICE uses it to carry the
    /// reason for a defensive disconnection (§3.1).
    Bye = 0x02,
    /// `0x80` — flooded search query.
    Query = 0x80,
    /// `0x81` — query hit, routed back along the inverse query path.
    QueryHit = 0x81,
    /// `0x83` — DD-POLICE `Neighbor_Traffic` (the paper's Table 1).
    NeighborTraffic = 0x83,
    /// `0x85` — DD-POLICE neighbor-list exchange (id chosen by us; the paper
    /// leaves it unspecified).
    NeighborList = 0x85,
    /// `0x86` — per-link fresh-query receipt (our protocol-level extension:
    /// the receiver-measured, duplicate-filtered `Q_{u→v}` the indicators
    /// need; see `ddp-servent` docs).
    Receipt = 0x86,
}

impl PayloadKind {
    /// Parse a descriptor byte.
    pub fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        Ok(match b {
            0x00 => PayloadKind::Ping,
            0x01 => PayloadKind::Pong,
            0x02 => PayloadKind::Bye,
            0x80 => PayloadKind::Query,
            0x81 => PayloadKind::QueryHit,
            0x83 => PayloadKind::NeighborTraffic,
            0x85 => PayloadKind::NeighborList,
            0x86 => PayloadKind::Receipt,
            other => return Err(ProtocolError::UnknownPayloadKind(other)),
        })
    }
}

/// The fixed header preceding every payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Descriptor ID for duplicate suppression / reverse routing.
    pub guid: Guid,
    /// Payload descriptor.
    pub kind: PayloadKind,
    /// Remaining times this message may be forwarded.
    pub ttl: u8,
    /// Times this message has been forwarded so far.
    pub hops: u8,
    /// Length in bytes of the payload that follows.
    pub payload_len: u32,
}

impl Header {
    /// Encode into a buffer (exactly [`HEADER_LEN`] bytes).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(self.guid.as_bytes());
        buf.put_u8(self.kind as u8);
        buf.put_u8(self.ttl);
        buf.put_u8(self.hops);
        buf.put_u32_le(self.payload_len);
    }

    /// Decode from a buffer.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ProtocolError> {
        if buf.remaining() < HEADER_LEN {
            return Err(ProtocolError::TruncatedHeader { have: buf.remaining() });
        }
        let mut guid = [0u8; 16];
        buf.copy_to_slice(&mut guid);
        let kind = PayloadKind::from_byte(buf.get_u8())?;
        let ttl = buf.get_u8();
        let hops = buf.get_u8();
        let payload_len = buf.get_u32_le();
        if payload_len as usize > MAX_PAYLOAD_LEN {
            return Err(ProtocolError::OversizedPayload {
                len: payload_len as usize,
                cap: MAX_PAYLOAD_LEN,
            });
        }
        Ok(Header { guid: Guid(guid), kind, ttl, hops, payload_len })
    }

    /// The standard forwarding transformation: decrement TTL, increment hops.
    ///
    /// Returns `None` when the TTL is exhausted and the message must not be
    /// forwarded further.
    pub fn forwarded(mut self) -> Option<Self> {
        if self.ttl <= 1 {
            return None;
        }
        self.ttl -= 1;
        self.hops = self.hops.saturating_add(1);
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> Header {
        Header {
            guid: Guid::derived(1, 2),
            kind: PayloadKind::Query,
            ttl: 7,
            hops: 0,
            payload_len: 42,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let mut bytes = buf.freeze();
        let h2 = Header::decode(&mut bytes).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn header_is_23_bytes_as_paper_states() {
        // §3.3: "In addition to the Gnutella's unified 23-byte header..."
        assert_eq!(HEADER_LEN, 23);
    }

    #[test]
    fn truncated_header_rejected() {
        let mut short: &[u8] = &[0u8; 10];
        assert!(matches!(
            Header::decode(&mut short),
            Err(ProtocolError::TruncatedHeader { have: 10 })
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        buf[16] = 0x7f; // bogus descriptor
        let mut bytes = buf.freeze();
        assert_eq!(Header::decode(&mut bytes), Err(ProtocolError::UnknownPayloadKind(0x7f)));
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut h = sample();
        h.payload_len = (MAX_PAYLOAD_LEN + 1) as u32;
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(Header::decode(&mut bytes), Err(ProtocolError::OversizedPayload { .. })));
    }

    #[test]
    fn neighbor_traffic_kind_is_0x83() {
        // §3.3: "The payload type of this message can be defined as 0x83."
        assert_eq!(PayloadKind::NeighborTraffic as u8, 0x83);
        assert_eq!(PayloadKind::from_byte(0x83).unwrap(), PayloadKind::NeighborTraffic);
    }

    #[test]
    fn forwarding_decrements_ttl() {
        let h = sample();
        let f = h.forwarded().unwrap();
        assert_eq!(f.ttl, 6);
        assert_eq!(f.hops, 1);
        let mut last = Header { ttl: 1, ..sample() };
        assert!(last.forwarded().is_none());
        last.ttl = 0;
        assert!(last.forwarded().is_none());
    }
}
