//! 16-byte Gnutella descriptor IDs (GUIDs).

use rand::Rng;
use std::fmt;

/// A Gnutella descriptor ID: 16 opaque bytes identifying a message for
/// duplicate suppression and reverse-path routing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Guid(pub [u8; 16]);

impl Guid {
    /// The all-zero GUID (used by some servents as a "none" marker).
    pub const ZERO: Guid = Guid([0; 16]);

    /// Generate a fresh random GUID.
    ///
    /// Per the Gnutella 0.6 conventions, byte 8 is `0xff` (modern servent
    /// marker) and byte 15 is `0x00` (reserved).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut b = [0u8; 16];
        rng.fill(&mut b[..]);
        b[8] = 0xff;
        b[15] = 0x00;
        Guid(b)
    }

    /// Deterministically derive a GUID from a (source, sequence) pair.
    ///
    /// The simulator uses this to give reproducible yet unique ids to the
    /// queries it floods, without carrying an RNG through the hot path.
    /// Uses the SplitMix64 finalizer for dispersion.
    pub fn derived(source: u32, sequence: u64) -> Self {
        let mut b = [0u8; 16];
        let mut x = ((source as u64) << 32) ^ sequence ^ 0x9e37_79b9_7f4a_7c15;
        for chunk in b.chunks_mut(8) {
            x = splitmix64(x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        b[8] = 0xff;
        b[15] = 0x00;
        Guid(b)
    }

    /// Raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl fmt::Debug for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Guid(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_guid_has_marker_bytes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Guid::random(&mut rng);
        assert_eq!(g.0[8], 0xff);
        assert_eq!(g.0[15], 0x00);
    }

    #[test]
    fn derived_guids_are_unique_per_sequence() {
        let a = Guid::derived(7, 0);
        let b = Guid::derived(7, 1);
        let c = Guid::derived(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn derived_is_deterministic() {
        assert_eq!(Guid::derived(123, 456), Guid::derived(123, 456));
    }

    #[test]
    fn display_is_hex() {
        let g = Guid::ZERO;
        assert_eq!(g.to_string(), "0".repeat(32));
    }
}
