//! Duplicate suppression and reverse-path routing.
//!
//! Gnutella's forwarding rule (cited in §2.2 of the paper): "a query message
//! will be dropped if the query message has visited the peer before", and
//! query hits are "only delivered to the neighbor along the inverse path of
//! the search path". Both behaviours hang off a per-peer table of recently
//! seen GUIDs.

use crate::guid::Guid;
use std::collections::HashMap;

/// Per-peer table of recently seen message GUIDs.
///
/// Each entry remembers which neighbor the message first arrived from (for
/// reverse-path routing) and when it was seen (for expiry). Entries older
/// than `horizon` time units are evicted lazily by [`SeenTable::sweep`].
///
/// ```
/// use ddp_protocol::{Guid, SeenTable};
/// use ddp_protocol::routing::Offer;
///
/// let mut seen = SeenTable::new(600);
/// let guid = Guid::derived(7, 1);
/// assert_eq!(seen.offer(guid, 3, 0), Offer::Fresh);     // process & forward
/// assert_eq!(seen.offer(guid, 9, 1), Offer::Duplicate); // "visited before"
/// assert_eq!(seen.reverse_route(&guid), Some(3));       // hits go back via 3
/// ```
#[derive(Debug, Clone)]
pub struct SeenTable {
    entries: HashMap<Guid, SeenEntry>,
    horizon: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SeenEntry {
    from: u32,
    seen_at: u64,
}

/// Outcome of offering a message to the seen table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// First sighting: the message should be processed and forwarded.
    Fresh,
    /// Already seen: the message must be dropped (duplicate suppression).
    Duplicate,
}

impl SeenTable {
    /// Create a table that remembers GUIDs for `horizon` time units.
    pub fn new(horizon: u64) -> Self {
        SeenTable { entries: HashMap::new(), horizon }
    }

    /// Offer a message GUID arriving from neighbor `from` at time `now`.
    pub fn offer(&mut self, guid: Guid, from: u32, now: u64) -> Offer {
        use std::collections::hash_map::Entry;
        match self.entries.entry(guid) {
            Entry::Occupied(_) => Offer::Duplicate,
            Entry::Vacant(v) => {
                v.insert(SeenEntry { from, seen_at: now });
                Offer::Fresh
            }
        }
    }

    /// The neighbor a hit for `guid` must be routed back to, if the query
    /// was seen and has not expired.
    pub fn reverse_route(&self, guid: &Guid) -> Option<u32> {
        self.entries.get(guid).map(|e| e.from)
    }

    /// Drop entries older than the horizon.
    pub fn sweep(&mut self, now: u64) {
        let horizon = self.horizon;
        self.entries.retain(|_, e| now.saturating_sub(e.seen_at) <= horizon);
    }

    /// The expiry horizon this table was built with.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Checkpoint view: every live entry as `(guid, from, seen_at)`, sorted
    /// by GUID so the serialization is deterministic regardless of HashMap
    /// iteration order.
    pub fn snapshot_entries(&self) -> Vec<(Guid, u32, u64)> {
        let mut v: Vec<(Guid, u32, u64)> =
            self.entries.iter().map(|(&g, e)| (g, e.from, e.seen_at)).collect();
        v.sort_unstable_by_key(|&(g, ..)| g);
        v
    }

    /// Rebuild a table from a checkpoint produced by
    /// [`SeenTable::snapshot_entries`]. Later duplicates of the same GUID are
    /// ignored, matching [`SeenTable::offer`] semantics.
    pub fn from_entries(horizon: u64, entries: impl IntoIterator<Item = (Guid, u32, u64)>) -> Self {
        let mut t = SeenTable::new(horizon);
        for (guid, from, seen_at) in entries {
            t.entries.entry(guid).or_insert(SeenEntry { from, seen_at });
        }
        t
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_offer_is_fresh_then_duplicate() {
        let mut t = SeenTable::new(10);
        let g = Guid::derived(1, 1);
        assert_eq!(t.offer(g, 5, 0), Offer::Fresh);
        assert_eq!(t.offer(g, 6, 1), Offer::Duplicate);
        assert_eq!(t.offer(g, 5, 2), Offer::Duplicate);
    }

    #[test]
    fn reverse_route_points_to_first_sender() {
        let mut t = SeenTable::new(10);
        let g = Guid::derived(2, 2);
        t.offer(g, 7, 0);
        t.offer(g, 9, 0); // duplicate via another neighbor: route unchanged
        assert_eq!(t.reverse_route(&g), Some(7));
        assert_eq!(t.reverse_route(&Guid::derived(3, 3)), None);
    }

    #[test]
    fn sweep_expires_old_entries() {
        let mut t = SeenTable::new(5);
        let old = Guid::derived(1, 0);
        let new = Guid::derived(1, 1);
        t.offer(old, 1, 0);
        t.offer(new, 2, 4);
        t.sweep(7);
        assert_eq!(t.reverse_route(&old), None, "entry from t=0 expired at t=7");
        assert_eq!(t.reverse_route(&new), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn swept_guid_can_be_offered_fresh_again() {
        let mut t = SeenTable::new(1);
        let g = Guid::derived(4, 4);
        t.offer(g, 1, 0);
        t.sweep(10);
        assert_eq!(t.offer(g, 2, 10), Offer::Fresh);
        assert_eq!(t.reverse_route(&g), Some(2));
    }

    #[test]
    fn empty_table() {
        let t = SeenTable::new(3);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
