//! Adversarial-input hardening for the wire codec: hostile bytes must come
//! back as a typed [`ProtocolError`] — never a panic, never an allocation
//! sized by an attacker-controlled length field.
//!
//! Complements `proptest_codec.rs` (roundtrip properties) with targeted
//! attacks: lying length fields, oversized claims, bit-flipped valid frames,
//! and header-field extremes.

use bytes::Bytes;
use ddp_protocol::*;
use proptest::prelude::*;

/// A syntactically perfect header whose fields we control, followed by
/// `body` bytes.
fn frame(kind: u8, ttl: u8, hops: u8, payload_len: u32, body: &[u8]) -> Bytes {
    let mut raw = Vec::with_capacity(23 + body.len());
    raw.extend_from_slice(&[0xAAu8; 16]); // GUID
    raw.push(kind);
    raw.push(ttl);
    raw.push(hops);
    raw.extend_from_slice(&payload_len.to_le_bytes());
    raw.extend_from_slice(body);
    Bytes::from(raw)
}

#[test]
fn oversized_length_claim_is_rejected_without_allocating() {
    // u32::MAX length claim: the decoder must reject from the header alone.
    // If it tried to allocate or wait for 4 GiB this test would OOM/hang.
    let mut wire = frame(0x80, 5, 0, u32::MAX, b"");
    match decode_message(&mut wire) {
        Err(ProtocolError::OversizedPayload { len, cap }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(cap, MAX_PAYLOAD_LEN);
        }
        other => panic!("expected OversizedPayload, got {other:?}"),
    }
}

#[test]
fn length_just_over_the_cap_is_rejected_and_at_the_cap_is_not_oversized() {
    let over = frame(0x80, 5, 0, (MAX_PAYLOAD_LEN + 1) as u32, b"");
    assert!(matches!(
        decode_message(&mut over.clone()),
        Err(ProtocolError::OversizedPayload { .. })
    ));
    // Exactly at the cap the length field is legal; with no body present the
    // error must be TruncatedPayload (the length passed the sanity check).
    let mut at = frame(0x80, 5, 0, MAX_PAYLOAD_LEN as u32, b"");
    assert!(matches!(
        decode_message(&mut at),
        Err(ProtocolError::TruncatedPayload { want, .. }) if want == MAX_PAYLOAD_LEN
    ));
}

#[test]
fn lying_length_field_is_a_typed_truncation_error() {
    // Header claims 100 bytes, only 3 arrive.
    let mut wire = frame(0x00, 1, 0, 100, b"abc");
    assert!(matches!(
        decode_message(&mut wire),
        Err(ProtocolError::TruncatedPayload { want: 100, have: 3 })
    ));
}

#[test]
fn unknown_kind_bytes_are_typed_errors() {
    for kind in [0x03u8, 0x40, 0x7f, 0x82, 0x84, 0x87, 0xff] {
        let mut wire = frame(kind, 1, 0, 0, b"");
        assert!(
            matches!(decode_message(&mut wire), Err(ProtocolError::UnknownPayloadKind(k)) if k == kind),
            "kind 0x{kind:02x} must be rejected as unknown"
        );
    }
}

#[test]
fn ttl_and_hops_extremes_decode_and_forwarding_saturates() {
    // 255/255 is hostile but syntactically fine — the codec accepts it and
    // the forwarding rule saturates instead of wrapping.
    let mut wire = frame(0x00, 255, 255, 0, b"");
    let msg = decode_message(&mut wire).expect("extreme TTL/hops still decode");
    assert_eq!((msg.header.ttl, msg.header.hops), (255, 255));
    let fwd = msg.header.forwarded().expect("ttl 255 forwards");
    assert_eq!((fwd.ttl, fwd.hops), (254, 255), "hops must saturate, not wrap");
}

proptest! {
    /// Any header field combination with a lying length yields a typed error,
    /// never a panic.
    #[test]
    fn arbitrary_headers_with_lying_lengths_never_panic(
        kind in any::<u8>(),
        ttl in any::<u8>(),
        hops in any::<u8>(),
        claimed in 1u32..u32::MAX,
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(body.len() < claimed as usize);
        let mut wire = frame(kind, ttl, hops, claimed, &body);
        prop_assert!(decode_message(&mut wire).is_err());
    }

    /// Flipping any single bit of a valid frame is either rejected with a
    /// typed error or decodes into a message that re-encodes cleanly — the
    /// decoder never panics and never tears.
    #[test]
    fn single_bit_flips_never_panic(bit in 0usize..((23 + 10) * 8), seq in any::<u64>()) {
        let msg = Message::new(
            Guid::derived(9, seq),
            5,
            Payload::Query(Query { min_speed: 0, criteria: "flipme".into() }),
        );
        let wire = encode_message(&msg);
        prop_assume!(bit / 8 < wire.len());
        let mut raw = wire.to_vec();
        raw[bit / 8] ^= 1 << (bit % 8);
        let mut mutated = Bytes::from(raw);
        if let Ok(decoded) = decode_message(&mut mutated) {
            let mut rewire = encode_message(&decoded);
            prop_assert!(decode_message(&mut rewire).is_ok());
        }
    }

    /// Byte soup prefixed with a valid-looking kind byte still never panics
    /// or over-allocates (capacity is bounded by the input, not the header).
    #[test]
    fn byte_soup_with_plausible_kind_never_panics(
        kind in prop_oneof![Just(0x00u8), Just(0x01), Just(0x02), Just(0x80),
                            Just(0x81), Just(0x83), Just(0x85), Just(0x86)],
        soup in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut raw = vec![0u8; 16];
        raw.push(kind);
        raw.extend_from_slice(&soup);
        let mut wire = Bytes::from(raw);
        let _ = decode_message(&mut wire); // must return, Ok or Err
    }
}
