//! Property-based roundtrip tests for the wire codec.

use bytes::Bytes;
use ddp_protocol::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = PeerAddr> {
    (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| PeerAddr { ip: Ipv4Addr::from(ip), port })
}

fn arb_name() -> impl Strategy<Value = String> {
    // Wire strings are null-terminated: no interior NULs.
    "[a-zA-Z0-9 ._-]{0,40}"
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Ping(Ping)),
        (arb_addr(), any::<u32>(), any::<u32>()).prop_map(|(addr, f, kb)| Payload::Pong(Pong {
            addr,
            shared_files: f,
            shared_kb: kb
        })),
        (any::<u16>(), arb_name()).prop_map(|(code, reason)| Payload::Bye(Bye { code, reason })),
        (any::<u16>(), arb_name())
            .prop_map(|(min_speed, criteria)| Payload::Query(Query { min_speed, criteria })),
        (
            arb_addr(),
            any::<u32>(),
            proptest::collection::vec(
                (any::<u32>(), any::<u32>(), arb_name()).prop_map(|(i, s, n)| QueryHitResult {
                    file_index: i,
                    file_size: s,
                    file_name: n
                }),
                0..5
            ),
            any::<[u8; 16]>()
        )
            .prop_map(|(addr, speed, results, sid)| Payload::QueryHit(QueryHit {
                addr,
                speed_kbps: speed,
                results,
                servent_id: sid
            })),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(s, x, t, o, i)| Payload::NeighborTraffic(NeighborTraffic {
                source_ip: Ipv4Addr::from(s),
                suspect_ip: Ipv4Addr::from(x),
                timestamp: t,
                outgoing_queries: o,
                incoming_queries: i
            })
        ),
        proptest::collection::vec(arb_addr(), 0..20)
            .prop_map(|neighbors| Payload::NeighborList(NeighborList { neighbors })),
    ]
}

proptest! {
    /// encode → decode is the identity for every payload type.
    #[test]
    fn codec_roundtrip(payload in arb_payload(), ttl in 1u8..16, seq in any::<u64>()) {
        let msg = Message::new(Guid::derived(1, seq), ttl, payload);
        let mut wire = encode_message(&msg);
        let back = decode_message(&mut wire).unwrap();
        prop_assert!(wire.is_empty());
        prop_assert_eq!(msg, back);
    }

    /// The decoder never panics on arbitrary bytes — it returns an error or
    /// a message whose re-encoding parses again.
    #[test]
    fn decoder_is_total(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = Bytes::from(raw);
        // Rejection is fine; panics are not.
        if let Ok(msg) = decode_message(&mut bytes) {
            let mut rewire = encode_message(&msg);
            prop_assert!(decode_message(&mut rewire).is_ok());
        }
    }

    /// Truncating a valid frame anywhere yields an error, never a panic or a
    /// silently different message.
    #[test]
    fn truncation_always_detected(payload in arb_payload(), cut in 0usize..64) {
        let msg = Message::new(Guid::derived(2, 7), 5, payload);
        let wire = encode_message(&msg);
        if cut < wire.len() {
            let mut sliced = wire.slice(..cut);
            // A shorter prefix either fails or (if cut lands past a smaller
            // valid frame) cannot happen since lengths are explicit.
            prop_assert!(decode_message(&mut sliced).is_err());
        }
    }
}
