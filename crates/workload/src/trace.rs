//! Synthetic query-trace generation.
//!
//! §2.3 of the paper collects a 24-hour trace through a LimeWire monitoring
//! super-node: 13,750,339 queries, 112 MB. The trace itself is not available;
//! this generator produces a statistically equivalent stream — Zipf-popular
//! query strings arriving at a configurable aggregate rate — used by the
//! testbed (as the DDoS agent's replay source, mirroring the paper's modified
//! LimeWire client that "reads queries from the log file ... and issues these
//! queries") and by examples.

use crate::zipf::Zipf;
use rand::Rng;

/// One trace record: arrival offset (seconds from trace start) and query.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub at_secs: u64,
    pub query: String,
}

/// Generator of synthetic query traces.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    vocabulary: Zipf,
    /// Mean queries per second of the aggregate stream.
    rate_qps: f64,
}

impl TraceGenerator {
    /// The paper's observed aggregate rate: 13,750,339 queries / 24 h ≈ 159/s.
    pub const PAPER_RATE_QPS: f64 = 13_750_339.0 / 86_400.0;

    /// Create a generator over `vocabulary_size` distinct query strings with
    /// Zipf exponent `alpha`, arriving at `rate_qps` queries per second.
    pub fn new(vocabulary_size: usize, alpha: f64, rate_qps: f64) -> Self {
        assert!(rate_qps > 0.0);
        TraceGenerator { vocabulary: Zipf::new(vocabulary_size, alpha), rate_qps }
    }

    /// Paper-calibrated defaults.
    pub fn paper_defaults() -> Self {
        TraceGenerator::new(100_000, 0.9, Self::PAPER_RATE_QPS)
    }

    /// Generate `duration_secs` worth of trace.
    pub fn generate<R: Rng + ?Sized>(&self, duration_secs: u64, rng: &mut R) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival times.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            t += -u.ln() / self.rate_qps;
            if t >= duration_secs as f64 {
                break;
            }
            let rank = self.vocabulary.sample(rng);
            out.push(TraceRecord { at_secs: t as u64, query: format!("q{rank:06}") });
        }
        out
    }

    /// Mean queries per second.
    pub fn rate_qps(&self) -> f64 {
        self.rate_qps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_rate_is_respected() {
        let g = TraceGenerator::new(1000, 1.0, 50.0);
        let mut rng = StdRng::seed_from_u64(77);
        let trace = g.generate(600, &mut rng);
        let per_sec = trace.len() as f64 / 600.0;
        assert!((47.0..53.0).contains(&per_sec), "rate {per_sec} ~ 50/s");
    }

    #[test]
    fn trace_is_time_ordered() {
        let g = TraceGenerator::new(100, 1.0, 20.0);
        let mut rng = StdRng::seed_from_u64(78);
        let trace = g.generate(120, &mut rng);
        assert!(trace.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
    }

    #[test]
    fn popular_queries_repeat() {
        let g = TraceGenerator::new(10_000, 1.0, 100.0);
        let mut rng = StdRng::seed_from_u64(79);
        let trace = g.generate(300, &mut rng);
        let top = trace.iter().filter(|r| r.query == "q000000").count();
        assert!(top > trace.len() / 100, "rank-0 query should recur: {top}");
    }

    #[test]
    fn paper_rate_constant() {
        assert!((TraceGenerator::PAPER_RATE_QPS - 159.1).abs() < 0.5);
    }
}
