//! Workload models for the DD-POLICE evaluation (§3.5 of the paper).
//!
//! The paper parameterizes its simulation from measurement studies we do not
//! have raw data for; this crate rebuilds each model from the published
//! aggregates (documented per-module, and in DESIGN.md §5):
//!
//! * [`arrivals`] — Poisson query issue at 0.3 queries/min/peer (derived in
//!   the paper from Sripanidkulchai's Gnutella trace: 12,805 unique IPs,
//!   1,146,782 queries in 5 hours).
//! * [`content`] — Zipf object popularity and replication (KaZaA-workload
//!   substitute, Gummadi et al. SOSP'03).
//! * [`lifetime`] — session lifetime distribution, mean 10 minutes, variance
//!   half the mean (Sen & Wang / Saroiu et al., as §3.5 prescribes).
//! * [`bandwidth`] — peer bottleneck-bandwidth classes from Saroiu et al.:
//!   "78% of the participating peers have downstream bottleneck bandwidths of
//!   at least 100 Kbps, and 22% ... upstream ... of 100 Kbps or less".
//! * [`trace`] — a synthetic query-string trace standing in for the paper's
//!   24-hour LimeWire monitoring-node log (13,750,339 queries / 112 MB).

pub mod arrivals;
pub mod bandwidth;
pub mod content;
pub mod lifetime;
pub mod trace;
pub mod zipf;

pub use arrivals::QueryArrivals;
pub use bandwidth::{BandwidthClass, BandwidthModel};
pub use content::{ContentCatalog, ObjectId};
pub use lifetime::LifetimeModel;
pub use trace::TraceGenerator;
pub use zipf::Zipf;
