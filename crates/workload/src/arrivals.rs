//! Query arrival process.
//!
//! §3.5: "every node issues 0.3 queries per minute, which is calculated from
//! the observation data shown in \[16\], i.e., 12,805 unique IP addresses
//! issued 1,146,782 queries in 5 hours." (1,146,782 / 12,805 / 300 min ≈ 0.3.)
//!
//! Arrivals are Poisson per peer per tick. For large populations the
//! per-peer draws are the hot path of workload generation, so a small
//! inverse-CDF Poisson sampler (Knuth) is implemented directly; `rand`'s
//! distribution machinery would work too, but this keeps the dependency
//! surface to `Rng` alone.

use rand::Rng;

/// Rate constant the paper derives from the Gnutella trace.
pub const PAPER_QUERIES_PER_MIN: f64 = 0.3;

/// Good-peer upper bound: "a good peer will not issue more than 10 queries
/// per minute" (§2.2; humans cannot type faster than ~1 query/second).
pub const GOOD_PEER_MAX_QPM: u32 = 10;

/// Poisson query arrivals with a per-peer rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryArrivals {
    /// Mean queries per peer per minute.
    pub rate_qpm: f64,
}

impl Default for QueryArrivals {
    fn default() -> Self {
        QueryArrivals { rate_qpm: PAPER_QUERIES_PER_MIN }
    }
}

impl QueryArrivals {
    /// New arrival process with the given per-minute rate.
    pub fn new(rate_qpm: f64) -> Self {
        assert!(rate_qpm >= 0.0 && rate_qpm.is_finite());
        QueryArrivals { rate_qpm }
    }

    /// Number of queries one peer issues in one tick (minute).
    ///
    /// Clamped to [`GOOD_PEER_MAX_QPM`]: by the paper's Definition 2.x a good
    /// peer never exceeds `q = 10` queries/minute, so the workload generator
    /// must respect the same bound.
    #[inline]
    pub fn sample_tick<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        poisson(self.rate_qpm, rng).min(GOOD_PEER_MAX_QPM)
    }

    /// Total queries issued by `n` peers in one tick, drawn as a single
    /// Poisson with rate `n * rate` (exact by Poisson additivity; used when
    /// individual attribution is sampled separately).
    pub fn sample_aggregate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> u32 {
        poisson(self.rate_qpm * n as f64, rng)
    }
}

/// Draw from Poisson(lambda).
///
/// Knuth's product method for small lambda; for large lambda, a normal
/// approximation with continuity correction (error negligible above ~30).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u32;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Box-Muller normal approximation.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + lambda.sqrt() * z + 0.5).max(0.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_yields_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = QueryArrivals::new(0.0);
        for _ in 0..100 {
            assert_eq!(a.sample_tick(&mut rng), 0);
        }
    }

    #[test]
    fn small_lambda_mean_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = QueryArrivals::default();
        let draws = 100_000;
        let total: u64 = (0..draws).map(|_| a.sample_tick(&mut rng) as u64).sum();
        let mean = total as f64 / draws as f64;
        assert!((0.28..0.32).contains(&mean), "mean {mean} should be ~0.3");
    }

    #[test]
    fn large_lambda_mean_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 20_000;
        let total: u64 = (0..draws).map(|_| poisson(200.0, &mut rng) as u64).sum();
        let mean = total as f64 / draws as f64;
        assert!((197.0..203.0).contains(&mean), "mean {mean} should be ~200");
    }

    #[test]
    fn good_peer_bound_enforced() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = QueryArrivals::new(50.0); // absurd rate still clamps
        for _ in 0..1000 {
            assert!(a.sample_tick(&mut rng) <= GOOD_PEER_MAX_QPM);
        }
    }

    #[test]
    fn aggregate_matches_sum_of_rates() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = QueryArrivals::default();
        let draws = 5_000;
        let total: u64 = (0..draws).map(|_| a.sample_aggregate(1000, &mut rng) as u64).sum();
        let mean = total as f64 / draws as f64;
        assert!((295.0..305.0).contains(&mean), "aggregate mean {mean} ~300");
    }
}
