//! Zipf-distributed sampling over ranked items.
//!
//! P2P query popularity is classically Zipf-like (Sripanidkulchai 2001, which
//! the paper cites as \[16\]). The sampler precomputes the CDF once and draws
//! in O(log n) by binary search; construction is O(n).

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 most popular).
///
/// ```
/// use ddp_workload::Zipf;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(1_000, 0.8);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1_000);
/// assert!(z.pmf(0) > z.pmf(999)); // head beats tail
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` items with exponent `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite and positive.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.0);
        for k in 1..50 {
            assert!(z.pmf(0) >= z.pmf(k));
        }
    }

    #[test]
    fn empirical_frequencies_follow_zipf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should occur ~1/H_10 ≈ 34% of the time.
        let f0 = counts[0] as f64 / draws as f64;
        assert!((0.32..0.36).contains(&f0), "rank-0 frequency {f0}");
        // Monotone-ish decrease (allow sampling noise on the tail).
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
