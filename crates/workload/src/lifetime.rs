//! Peer session lifetimes (churn model).
//!
//! §3.5: "When a peer joins, a lifetime in seconds will be assigned to the
//! peer. ... The lifetime is generated according to the distribution observed
//! in \[19\]. The mean of the distribution is chosen to be 10 minutes \[18\]. The
//! value of the variance is chosen to be half of the value of the mean."
//!
//! Saroiu et al. \[19\] observed heavy-tailed session times; we model them
//! log-normally, parameterized to the paper's mean/variance, with an
//! exponential alternative as a control.

use rand::Rng;

/// Lifetime distribution family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifetimeModel {
    /// Log-normal with the given mean and variance, in minutes
    /// (heavy-tailed, per Saroiu's measurements).
    LogNormal { mean_min: f64, var_min: f64 },
    /// Exponential with the given mean, in minutes (memoryless control).
    Exponential { mean_min: f64 },
    /// Every peer lives forever (disables churn).
    Immortal,
}

impl Default for LifetimeModel {
    fn default() -> Self {
        // Paper: mean 10 minutes, variance = mean / 2.
        LifetimeModel::LogNormal { mean_min: 10.0, var_min: 5.0 }
    }
}

impl LifetimeModel {
    /// Draw a session lifetime, in whole minutes (at least 1).
    pub fn sample_minutes<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match *self {
            LifetimeModel::LogNormal { mean_min, var_min } => {
                // Solve for (mu, sigma) of the underlying normal from the
                // target mean m and variance v of the log-normal:
                //   sigma^2 = ln(1 + v/m^2),  mu = ln(m) - sigma^2/2.
                let m = mean_min.max(1e-9);
                let v = var_min.max(0.0);
                let sigma2 = (1.0 + v / (m * m)).ln();
                let mu = m.ln() - sigma2 / 2.0;
                let z = standard_normal(rng);
                let x = (mu + sigma2.sqrt() * z).exp();
                x.round().max(1.0) as u32
            }
            LifetimeModel::Exponential { mean_min } => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                (-mean_min * u.ln()).round().max(1.0) as u32
            }
            LifetimeModel::Immortal => u32::MAX,
        }
    }
}

/// One standard normal draw (Box–Muller).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_matches_paper_mean() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = LifetimeModel::default();
        let draws = 200_000;
        let total: u64 = (0..draws).map(|_| m.sample_minutes(&mut rng) as u64).sum();
        let mean = total as f64 / draws as f64;
        assert!((9.5..10.5).contains(&mean), "mean lifetime {mean} should be ~10 min");
    }

    #[test]
    fn lognormal_variance_close_to_paper() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = LifetimeModel::default();
        let draws = 200_000;
        let samples: Vec<f64> = (0..draws).map(|_| m.sample_minutes(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws as f64;
        // Rounding to whole minutes adds ~1/12 variance; allow slack.
        assert!((4.0..6.5).contains(&var), "variance {var} should be ~5");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = LifetimeModel::Exponential { mean_min: 10.0 };
        let draws = 100_000;
        let total: u64 = (0..draws).map(|_| m.sample_minutes(&mut rng) as u64).sum();
        let mean = total as f64 / draws as f64;
        assert!((9.5..10.8).contains(&mean), "mean {mean}");
    }

    #[test]
    fn lifetimes_are_at_least_one_minute() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = LifetimeModel::LogNormal { mean_min: 1.0, var_min: 0.5 };
        for _ in 0..1000 {
            assert!(m.sample_minutes(&mut rng) >= 1);
        }
    }

    #[test]
    fn immortal_never_dies() {
        let mut rng = StdRng::seed_from_u64(14);
        assert_eq!(LifetimeModel::Immortal.sample_minutes(&mut rng), u32::MAX);
    }
}
