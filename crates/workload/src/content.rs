//! Shared-content catalog: which peer holds which objects.
//!
//! Substitute for the KaZaA file-sharing workload the paper draws its
//! settings from (Gummadi et al., SOSP'03): object popularity is Zipf, and a
//! peer's shared library is a Zipf sample of the catalog, so popular objects
//! end up replicated on many peers and unpopular ones on few — exactly the
//! property that makes flooding search succeed quickly for popular content
//! and makes success rate sensitive to message drops for the tail.

use crate::zipf::Zipf;
use ddp_topology::NodeId;
use rand::Rng;

/// Identifier of a shared object (rank in the catalog; 0 = most popular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

/// The catalog: per-peer sorted object lists plus the query popularity law.
#[derive(Debug, Clone)]
pub struct ContentCatalog {
    /// Per-node sorted list of held object ids.
    libraries: Vec<Vec<u32>>,
    /// Popularity law used to draw query targets.
    query_popularity: Zipf,
    num_objects: usize,
}

/// Configuration for catalog generation.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentConfig {
    /// Total distinct objects in the system.
    pub num_objects: usize,
    /// Objects held per peer (library size).
    pub objects_per_peer: usize,
    /// Zipf exponent for both replication and query popularity.
    pub alpha: f64,
}

impl Default for ContentConfig {
    fn default() -> Self {
        // 10k distinct objects, 50 per peer, alpha 0.8 (classic P2P fit).
        ContentConfig { num_objects: 10_000, objects_per_peer: 50, alpha: 0.8 }
    }
}

impl ContentCatalog {
    /// Generate libraries for `n` peers.
    pub fn generate<R: Rng + ?Sized>(n: usize, cfg: &ContentConfig, rng: &mut R) -> Self {
        let pop = Zipf::new(cfg.num_objects, cfg.alpha);
        let mut libraries = Vec::with_capacity(n);
        for _ in 0..n {
            libraries.push(Self::sample_library(&pop, cfg.objects_per_peer, rng));
        }
        ContentCatalog { libraries, query_popularity: pop, num_objects: cfg.num_objects }
    }

    fn sample_library<R: Rng + ?Sized>(pop: &Zipf, size: usize, rng: &mut R) -> Vec<u32> {
        let mut lib: Vec<u32> = Vec::with_capacity(size);
        // Rejection-sample distinct objects; libraries are tiny relative to
        // the catalog so rejection is rare.
        while lib.len() < size {
            let o = pop.sample(rng) as u32;
            if !lib.contains(&o) {
                lib.push(o);
            }
        }
        lib.sort_unstable();
        lib
    }

    /// Rebuild a catalog from explicit per-peer libraries — the
    /// snapshot-restore constructor. The popularity law carries no mutable
    /// state (queries draw from the engine's RNG streams), so it is
    /// reconstructed from `cfg` exactly as [`ContentCatalog::generate`]
    /// builds it.
    pub fn from_libraries(libraries: Vec<Vec<u32>>, cfg: &ContentConfig) -> Self {
        ContentCatalog {
            libraries,
            query_popularity: Zipf::new(cfg.num_objects, cfg.alpha),
            num_objects: cfg.num_objects,
        }
    }

    /// Per-peer libraries, indexed by node — the snapshot-save accessor.
    pub fn libraries(&self) -> &[Vec<u32>] {
        &self.libraries
    }

    /// Generate the library for one newly joined peer, replacing `node`'s.
    pub fn regenerate_library<R: Rng + ?Sized>(&mut self, node: NodeId, size: usize, rng: &mut R) {
        let lib = Self::sample_library(&self.query_popularity, size, rng);
        if node.index() >= self.libraries.len() {
            self.libraries.resize(node.index() + 1, Vec::new());
        }
        self.libraries[node.index()] = lib;
    }

    /// Does `node` hold `object`? O(log library size).
    #[inline]
    pub fn holds(&self, node: NodeId, object: ObjectId) -> bool {
        self.libraries.get(node.index()).is_some_and(|lib| lib.binary_search(&object.0).is_ok())
    }

    /// Draw a query target according to the popularity law.
    pub fn sample_query_target<R: Rng + ?Sized>(&self, rng: &mut R) -> ObjectId {
        ObjectId(self.query_popularity.sample(rng) as u32)
    }

    /// Number of distinct objects.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of peers with libraries.
    pub fn num_peers(&self) -> usize {
        self.libraries.len()
    }

    /// How many peers hold `object` (O(total library size); diagnostics only).
    pub fn replication_count(&self, object: ObjectId) -> usize {
        self.libraries.iter().filter(|lib| lib.binary_search(&object.0).is_ok()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog(n: usize) -> ContentCatalog {
        let mut rng = StdRng::seed_from_u64(42);
        ContentCatalog::generate(n, &ContentConfig::default(), &mut rng)
    }

    #[test]
    fn libraries_have_requested_size_and_are_sorted() {
        let c = catalog(20);
        for i in 0..20 {
            let node = NodeId::from_index(i);
            let mut count = 0;
            for o in 0..c.num_objects() {
                if c.holds(node, ObjectId(o as u32)) {
                    count += 1;
                }
            }
            assert_eq!(count, 50);
        }
    }

    #[test]
    fn popular_objects_are_replicated_more() {
        let c = catalog(500);
        let head: usize = (0..10).map(|o| c.replication_count(ObjectId(o))).sum();
        let tail: usize = (9000..9010).map(|o| c.replication_count(ObjectId(o))).sum();
        assert!(head > tail * 3, "head replication {head} should dominate tail {tail}");
    }

    #[test]
    fn query_targets_follow_popularity() {
        let c = catalog(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0;
        let draws = 20_000;
        for _ in 0..draws {
            if c.sample_query_target(&mut rng).0 < 100 {
                head += 1;
            }
        }
        // With alpha=0.8 over 10k objects the top-100 should carry a sizable
        // fraction of queries (far more than the uniform 1%).
        assert!(head as f64 / draws as f64 > 0.10, "head share {head}/{draws}");
    }

    #[test]
    fn regenerate_library_replaces_content() {
        let mut c = catalog(5);
        let node = NodeId(2);
        let before: Vec<u32> = (0..c.num_objects())
            .filter(|&o| c.holds(node, ObjectId(o as u32)))
            .map(|o| o as u32)
            .collect();
        let mut rng = StdRng::seed_from_u64(999);
        c.regenerate_library(node, 10, &mut rng);
        let after: Vec<u32> = (0..c.num_objects())
            .filter(|&o| c.holds(node, ObjectId(o as u32)))
            .map(|o| o as u32)
            .collect();
        assert_eq!(after.len(), 10);
        assert_ne!(before, after);
    }

    #[test]
    fn holds_out_of_range_node_is_false() {
        let c = catalog(3);
        assert!(!c.holds(NodeId(99), ObjectId(0)));
    }
}
