//! Peer bottleneck-bandwidth classes and link capacities.
//!
//! §3.5: "We assign bandwidth to each link based on the observations in \[19\],
//! which show that 78% of the participating peers have downstream bottleneck
//! bandwidths of at least 100 Kbps, and 22% of the participating peers have
//! upstream bottleneck bandwidths of 100 Kbps or less." The attack rate is
//! then "Q_d = min{20,000, the capacity of the link}" queries per minute.
//!
//! To convert bits/s into queries/min we need a per-query wire size; a
//! Gnutella query is the 23-byte header plus a search string, plus TCP/IP
//! framing, acknowledgements, and the keep-alive/overhead share of the
//! connection — we budget 500 bytes per query, making 100 Kbps ≈ 1,500
//! queries/min. Low-bandwidth attackers are then link-capped well below
//! 20,000 (the regime `Q_d = min{20000, link}` is written for), and a
//! dial-up agent's observable rate lands in the ambiguous zone that makes
//! the paper's cut-threshold tradeoff real (Figure 13's rising false
//! positives are exactly these marginal agents escaping at high CT).

use rand::Rng;

/// Effective wire budget of one query message (header + criteria + TCP/IP
/// framing + connection overhead share).
pub const QUERY_WIRE_BYTES: u32 = 500;

/// A peer's bottleneck bandwidth class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandwidthClass {
    /// Dial-up / modem-class: 56 Kbps down, 56 Kbps up.
    Dialup,
    /// Asymmetric broadband: 768 Kbps down, 128 Kbps up.
    Dsl,
    /// Cable-class: 3 Mbps down, 400 Kbps up.
    Cable,
    /// Campus / office Ethernet: 10 Mbps symmetric.
    Ethernet,
}

impl BandwidthClass {
    /// Downstream bottleneck in Kbps.
    pub fn down_kbps(self) -> u32 {
        match self {
            BandwidthClass::Dialup => 56,
            BandwidthClass::Dsl => 768,
            BandwidthClass::Cable => 3_000,
            BandwidthClass::Ethernet => 10_000,
        }
    }

    /// Upstream bottleneck in Kbps.
    pub fn up_kbps(self) -> u32 {
        match self {
            BandwidthClass::Dialup => 56,
            BandwidthClass::Dsl => 128,
            BandwidthClass::Cable => 400,
            BandwidthClass::Ethernet => 10_000,
        }
    }
}

/// Converts Kbps to whole queries per minute at [`QUERY_WIRE_BYTES`].
pub fn kbps_to_qpm(kbps: u32) -> u32 {
    // kbps * 1000 bits/s * 60 s / 8 bits-per-byte / bytes-per-query
    ((kbps as u64) * 1000 * 60 / 8 / QUERY_WIRE_BYTES as u64) as u32
}

/// Population model assigning bandwidth classes to peers.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthModel {
    /// `(class, weight)` pairs; weights need not sum to 1.
    pub mix: Vec<(BandwidthClass, f64)>,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        // Saroiu-style population: 22% of peers are upstream-constrained
        // (dial-up), the rest broadband of increasing quality.
        BandwidthModel {
            mix: vec![
                (BandwidthClass::Dialup, 0.22),
                (BandwidthClass::Dsl, 0.35),
                (BandwidthClass::Cable, 0.28),
                (BandwidthClass::Ethernet, 0.15),
            ],
        }
    }
}

impl BandwidthModel {
    /// Sample one peer's class.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BandwidthClass {
        let total: f64 = self.mix.iter().map(|(_, w)| w).sum();
        let mut u = rng.gen::<f64>() * total;
        for &(class, w) in &self.mix {
            if u < w {
                return class;
            }
            u -= w;
        }
        self.mix.last().expect("non-empty mix").0
    }

    /// Capacity in queries/min of the directed link `sender -> receiver`:
    /// the minimum of the sender's upstream and the receiver's downstream.
    pub fn link_capacity_qpm(sender: BandwidthClass, receiver: BandwidthClass) -> u32 {
        kbps_to_qpm(sender.up_kbps().min(receiver.down_kbps()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kbps_conversion() {
        // 100 Kbps = 100_000 bits/s = 12_500 B/s = 25 queries/s = 1_500/min.
        assert_eq!(kbps_to_qpm(100), 1_500);
        assert_eq!(kbps_to_qpm(0), 0);
    }

    #[test]
    fn dialup_agents_are_ct_marginal() {
        // 56 Kbps uplink = 840 q/min: above the 500 q/min warning threshold
        // (so still investigated) but with a single-indicator magnitude of
        // ~8 at q = 100 — inside the paper's CT grid, which is what makes
        // Figure 13's false-positive curve rise with CT.
        let qpm = kbps_to_qpm(BandwidthClass::Dialup.up_kbps());
        assert_eq!(qpm, 840);
        assert!(qpm > 500 && qpm < 1_200);
    }

    #[test]
    fn dialup_caps_the_attack_rate() {
        // A dial-up attacker cannot push 20,000 q/min: Q_d = min(20000, link).
        let cap =
            BandwidthModel::link_capacity_qpm(BandwidthClass::Dialup, BandwidthClass::Ethernet);
        assert!(cap < 20_000, "dialup uplink {cap} must be below 20k");
        let fast =
            BandwidthModel::link_capacity_qpm(BandwidthClass::Ethernet, BandwidthClass::Ethernet);
        assert!(fast > 20_000, "ethernet link {fast} must exceed 20k");
    }

    #[test]
    fn link_capacity_is_min_of_endpoints() {
        let c = BandwidthModel::link_capacity_qpm(BandwidthClass::Cable, BandwidthClass::Dialup);
        assert_eq!(c, kbps_to_qpm(56)); // receiver's 56 Kbps downstream binds
        let c2 = BandwidthModel::link_capacity_qpm(BandwidthClass::Dsl, BandwidthClass::Cable);
        assert_eq!(c2, kbps_to_qpm(128)); // sender's 128 Kbps upstream binds
    }

    #[test]
    fn population_mix_roughly_matches_weights() {
        let m = BandwidthModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        let draws = 100_000;
        let dialups = (0..draws).filter(|_| m.sample(&mut rng) == BandwidthClass::Dialup).count();
        let frac = dialups as f64 / draws as f64;
        assert!((0.21..0.23).contains(&frac), "dialup fraction {frac} ~ 0.22");
    }

    #[test]
    fn class_tables_are_monotone() {
        use BandwidthClass::*;
        assert!(Dialup.up_kbps() <= Dsl.up_kbps());
        assert!(Dsl.up_kbps() <= Cable.up_kbps());
        assert!(Cable.up_kbps() <= Ethernet.up_kbps());
        assert!(Dialup.down_kbps() <= Dsl.down_kbps());
    }
}
