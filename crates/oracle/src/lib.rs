//! Reference oracle and differential fuzz harness for the DD-POLICE engine.
//!
//! The optimized [`DdPolice`](ddp_police::DdPolice) engine has accumulated
//! fast paths: CSR adjacency walks, shared-judgment memoization, bitmask
//! hysteresis, bulk fault-plane accounting. Each is an *optimization*, and
//! each carries an implicit claim of observational equivalence to the
//! paper's plain protocol. This crate makes that claim testable:
//!
//! * [`model::OracleDdPolice`] is a deliberately naive, allocation-happy
//!   transcription of one DD-POLICE tick straight from the paper — HashMaps,
//!   Vecs, no caches, no fast paths.
//! * [`spec::ScenarioSpec`] is a flat, JSON-serializable description of one
//!   fuzz scenario (topology, attack, faults, churn, protocol knobs) that
//!   can instantiate twin simulations from the same seed.
//! * [`harness`] drives the engine and the oracle in lockstep and compares
//!   their observable state after every tick: judgment traces (1-ulp),
//!   verdict entries, exchange views, overlay edges, cut/verdict logs, and
//!   output series.
//! * [`shrink`] minimizes a diverging scenario to a small replayable
//!   reproducer, committed under `tests/repro/`.

pub mod harness;
pub mod model;
pub mod shrink;
pub mod spec;

pub use harness::{
    run_lockstep, run_lockstep_with_restore, run_parallel_lockstep, Divergence, LockstepStats,
};
pub use model::OracleDdPolice;
pub use shrink::{shrink, ShrunkRepro};
pub use spec::{scenario_matrix, ScenarioSpec};
