//! [`OracleDdPolice`] — a deliberately naive transcription of one full
//! DD-POLICE tick, straight from the paper's prose.
//!
//! Every step is written the obvious way: neighbor-list exchange into a
//! `HashMap` of views (§3.1), per-minute `Out_query`/`In_query` counters read
//! from the overlay (§3.2), warning-threshold triggering (§3.3),
//! `Neighbor_Traffic` exchange with the 50-second re-send suppression and the
//! assume-zero timeout (§3.3–3.4), and the `g(j,t)` / `s(j,t,i)` indicators
//! as the literal Definition 2.1/2.2 expressions (§2). There are **no fast
//! paths**: no per-suspect caches, no report memos, no shared judgments, no
//! bitmask tricks — the hysteresis history is a `Vec<bool>`, the views and
//! verdicts live in `HashMap`s, and every report is resolved independently
//! per observer.
//!
//! The point is *differential testing*: the optimized
//! [`DdPolice`](ddp_police::DdPolice) engine must be observationally
//! equivalent to this model on every scenario the harness can generate. The
//! only intentional equivalences (rather than identities) are:
//!
//! * the hysteresis history is canonicalized to the engine's `u8` bitmask
//!   before comparison (leading `false`s vanish, exactly as the mask's
//!   shifted-out bits do), and
//! * the reliable-exchange branch is transcribed as the engine's
//!   copy-per-neighbor loop, whose fault-plane accounting the engine mirrors
//!   in bulk.
//!
//! Iteration order everywhere matches the engine's (observers `0..n`,
//! neighbor slots in adjacency order, members in announced order, retry
//! attempts ascending) so that the fault plane's mailboxes and dice see the
//! identical call sequence — the transport is deterministic per
//! `(tick, sender, receiver, attempt)`, but late-mail pickup is stateful.

use ddp_metrics::{PeerVerdict, VerdictTransition};
use ddp_police::exchange::ExchangePolicy;
use ddp_police::{DdPoliceConfig, JudgmentTrace, SuspectEntry, SuspectState};
use ddp_sim::{
    Actions, Defense, ReportDelivery, ReportOutcome, Tick, TickObservation, TrafficReport,
};
use ddp_topology::NodeId;
use std::collections::HashMap;

/// One peer's remembered copy of a neighbor's announced list.
#[derive(Debug, Clone, PartialEq)]
struct OracleSnapshot {
    members: Vec<NodeId>,
    taken_at: Tick,
}

/// The naive per-suspect lifecycle state: like the engine's
/// [`SuspectState`] but with the hysteresis history kept as an explicit
/// oldest-first `Vec<bool>` instead of a bitmask.
#[derive(Debug, Clone, PartialEq)]
enum OracleState {
    Watching { history: Vec<bool> },
    Quarantined { until: Tick, backoff: u32 },
    Probation { until: Tick, backoff: u32 },
}

#[derive(Debug, Clone, PartialEq)]
struct OracleEntry {
    state: OracleState,
    list_streak: u8,
}

impl OracleEntry {
    fn fresh() -> Self {
        OracleEntry { state: OracleState::Watching { history: Vec::new() }, list_streak: 0 }
    }
}

/// Fold an oldest-first window of over-`CT` bools into the engine's `u8`
/// bitmask (bit 0 = newest). Leading `false`s vanish, exactly as bits
/// shifted out of the engine's mask do.
fn fold_history(history: &[bool]) -> u8 {
    let mut acc = 0u8;
    for &b in history {
        acc = (acc << 1) | u8::from(b);
    }
    acc
}

fn ledger_state(state: &OracleState) -> PeerVerdict {
    match state {
        OracleState::Watching { history } => {
            if fold_history(history) == 0 {
                PeerVerdict::Normal
            } else {
                PeerVerdict::Suspicious
            }
        }
        OracleState::Quarantined { .. } => PeerVerdict::Quarantined,
        OracleState::Probation { .. } => PeerVerdict::Probation,
    }
}

/// The reference model. Same [`Defense`] interface as the optimized
/// [`DdPolice`](ddp_police::DdPolice), so the two can drive twin simulations
/// in lockstep from identical seeds.
#[derive(Debug)]
pub struct OracleDdPolice {
    cfg: DdPoliceConfig,
    /// `(viewer, announcer)` → the viewer's snapshot of the announcer's list.
    views: HashMap<(u32, u32), OracleSnapshot>,
    /// Event-driven announcements charged since the last tick.
    pending_event_msgs: u64,
    /// `(observer, suspect)` → suspicion lifecycle entry.
    entries: HashMap<(u32, u32), OracleEntry>,
    /// suspect → tick of its group's last `Neighbor_Traffic` exchange (the
    /// paper's 50-second suppression; ticks start at 1, absent = never).
    exchanged_stamp: HashMap<u32, Tick>,
    /// Every `(g, s)` judgment computed, drained by the harness per tick.
    trace: Vec<JudgmentTrace>,
}

impl OracleDdPolice {
    /// A fresh model with the given protocol parameters.
    pub fn new(cfg: DdPoliceConfig) -> Self {
        OracleDdPolice {
            cfg,
            views: HashMap::new(),
            pending_event_msgs: 0,
            entries: HashMap::new(),
            exchanged_stamp: HashMap::new(),
            trace: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DdPoliceConfig {
        &self.cfg
    }

    /// Drain the judgments recorded since the last call.
    pub fn take_trace(&mut self) -> Vec<JudgmentTrace> {
        std::mem::take(&mut self.trace)
    }

    /// Every snapshot held, as `(viewer, announcer, members, taken_at)`
    /// sorted by `(viewer, announcer)` — the canonical form the harness
    /// compares against [`ExchangeState::all_snapshots`](ddp_police::exchange::ExchangeState::all_snapshots).
    pub fn snapshots_canonical(&self) -> Vec<(u32, u32, Vec<NodeId>, Tick)> {
        let mut out: Vec<(u32, u32, Vec<NodeId>, Tick)> =
            self.views.iter().map(|(&(i, j), s)| (i, j, s.members.clone(), s.taken_at)).collect();
        out.sort_unstable_by_key(|&(i, j, _, _)| (i, j));
        out
    }

    /// `observer`'s entries in the engine's [`SuspectEntry`] vocabulary,
    /// sorted by suspect id — canonical form for comparison against
    /// [`VerdictMachine::entries_of`](ddp_police::VerdictMachine::entries_of).
    pub fn entries_of(&self, observer: NodeId) -> Vec<(u32, SuspectEntry)> {
        let mut out: Vec<(u32, SuspectEntry)> = self
            .entries
            .iter()
            .filter(|(&(o, _), _)| o == observer.0)
            .map(|(&(_, s), e)| {
                let state = match &e.state {
                    OracleState::Watching { history } => {
                        SuspectState::Watching { history: fold_history(history) }
                    }
                    OracleState::Quarantined { until, backoff } => {
                        SuspectState::Quarantined { until: *until, backoff: *backoff }
                    }
                    OracleState::Probation { until, backoff } => {
                        SuspectState::Probation { until: *until, backoff: *backoff }
                    }
                };
                (s, SuspectEntry { state, list_streak: e.list_streak })
            })
            .collect();
        out.sort_unstable_by_key(|&(s, _)| s);
        out
    }

    /// Total live `(views, entries)` — the bounded-memory footprint.
    pub fn state_footprint(&self) -> (usize, usize) {
        (self.entries.len(), self.views.len())
    }

    // ----- §3.1: neighbor-list exchanging -------------------------------

    fn exchange_tick(&mut self, obs: &TickObservation<'_>) -> u64 {
        let mut msgs = std::mem::take(&mut self.pending_event_msgs);

        let reliable = obs.faults.is_none_or(|f| f.config().is_inert());

        // Late announcements that matured this tick arrive before any new
        // exchange, and only ever move a view forward in time.
        if !reliable {
            for i_idx in 0..obs.overlay.node_count() {
                let i = NodeId::from_index(i_idx);
                for (announcer, members, sent_at) in obs.matured_lists(i) {
                    if !obs.online[i_idx] || !obs.overlay.contains_edge(i, announcer) {
                        continue;
                    }
                    let newer =
                        self.views.get(&(i.0, announcer.0)).is_none_or(|s| s.taken_at < sent_at);
                    if newer {
                        self.views.insert(
                            (i.0, announcer.0),
                            OracleSnapshot { members, taken_at: sent_at },
                        );
                        obs.note_late_list_applied();
                    }
                }
            }
        }

        let refresh = match self.cfg.exchange {
            // Phase-aligned schedule: exchanges at ticks 1, 1+s, 1+2s, ...
            ExchangePolicy::Periodic { minutes } => {
                obs.tick.wrapping_sub(1).is_multiple_of(minutes.max(1))
            }
            ExchangePolicy::EventDriven => true,
        };
        if !refresh {
            return msgs;
        }
        let periodic = matches!(self.cfg.exchange, ExchangePolicy::Periodic { .. });
        for j_idx in 0..obs.overlay.node_count() {
            if !obs.online[j_idx] {
                continue;
            }
            let j = NodeId::from_index(j_idx);
            if matches!(obs.report_behavior[j_idx], ddp_sim::ReportBehavior::Silent) {
                continue;
            }
            let Some(members) = obs.announced_list(j) else { continue };
            for slot in 0..obs.overlay.degree(j) {
                let i = obs.overlay.neighbors(j)[slot].peer;
                // The announcer pays for the copy whether or not it arrives.
                if periodic {
                    msgs += 1;
                }
                if let Some(delivered) = obs.transmit_list(j, i, &members) {
                    self.views.insert(
                        (i.0, j.0),
                        OracleSnapshot { members: delivered, taken_at: obs.tick },
                    );
                }
            }
        }
        msgs
    }

    // ----- §3.1: Buddy-Group membership ---------------------------------

    /// Assemble `BGr-suspect` from the observer's snapshot. `None` means no
    /// snapshot (no exchange completed yet).
    fn assemble(
        &self,
        observer: NodeId,
        suspect: NodeId,
        obs: &TickObservation<'_>,
    ) -> Option<Vec<NodeId>> {
        let snap = self.views.get(&(observer.0, suspect.0))?.clone();
        obs.note_snapshot_age(obs.tick.saturating_sub(snap.taken_at));
        let mut members = snap.members;
        if self.cfg.verify_lists {
            // §3.1's consistency check, observer exempt (it polices the
            // suspect because they share a live link).
            members.retain(|&m| m == observer || obs.confirm_membership(m, suspect));
        }
        if self.cfg.radius >= 2 {
            let current: Vec<NodeId> =
                obs.overlay.neighbors(suspect).iter().map(|h| h.peer).collect();
            for m in current {
                if !members.contains(&m) {
                    members.push(m);
                }
            }
            members.retain(|&m| obs.overlay.contains_edge(m, suspect) || m == observer);
        }
        if !members.contains(&observer) {
            members.push(observer);
        }
        Some(members)
    }

    // ----- §3.3–3.4: Neighbor_Traffic resolution ------------------------

    /// One member's report over the (possibly faulty) transport: bounded
    /// retries, then a late reply within the timeout window, then §3.4's
    /// assume-zero. Refusals are final.
    fn resolve_report(
        &self,
        observer: NodeId,
        reporter: NodeId,
        suspect: NodeId,
        obs: &TickObservation<'_>,
        retry_msgs: &mut u64,
    ) -> Option<TrafficReport> {
        let answer = obs.request_report(reporter, suspect);
        let mut attempt = 0u32;
        loop {
            match obs.deliver_prepared_report(observer, reporter, suspect, answer, attempt) {
                ReportDelivery::Fresh(r) => {
                    obs.note_report_outcome(ReportOutcome::Fresh);
                    return Some(r);
                }
                ReportDelivery::Refused => {
                    obs.note_report_outcome(ReportOutcome::Refused);
                    return None;
                }
                ReportDelivery::Faulted => {
                    if attempt < self.cfg.max_report_retries {
                        attempt += 1;
                        *retry_msgs += 1;
                        obs.note_retries(1);
                        continue;
                    }
                    if let Some((r, sent_at)) = obs.stale_report(observer, reporter, suspect) {
                        if obs.tick.saturating_sub(sent_at) <= self.cfg.report_timeout_ticks {
                            obs.note_report_outcome(ReportOutcome::Stale);
                            return Some(r);
                        }
                    }
                    obs.note_report_outcome(ReportOutcome::AssumedZero);
                    return None;
                }
            }
        }
    }

    // ----- §2 + §3.4: indicators and aggregation ------------------------

    /// Combine the group's claims under the configured aggregation policy:
    /// `(Σ_m Q_{j→m}, Σ_m Q_{m→j})`, with missing reports assumed zero.
    fn aggregate(
        &self,
        own: TrafficReport,
        member_reports: &[Option<TrafficReport>],
    ) -> (f64, f64) {
        match self.cfg.aggregation {
            ddp_police::AggregationPolicy::Sum => {
                let mut out_of_suspect = own.received_from_suspect as f64;
                let mut into_suspect = own.sent_to_suspect as f64;
                for r in member_reports.iter().flatten() {
                    out_of_suspect += r.received_from_suspect as f64;
                    into_suspect += r.sent_to_suspect as f64;
                }
                (out_of_suspect, into_suspect)
            }
            ddp_police::AggregationPolicy::Median
            | ddp_police::AggregationPolicy::TrimmedMean { .. } => {
                let mut into_suspect = own.sent_to_suspect as f64;
                for r in member_reports.iter().flatten() {
                    into_suspect += r.sent_to_suspect as f64;
                }
                let mut claims: Vec<f64> = Vec::with_capacity(member_reports.len() + 1);
                claims.push(own.received_from_suspect as f64);
                for r in member_reports {
                    claims.push(r.map_or(0.0, |r| r.received_from_suspect as f64));
                }
                claims.sort_by(|a, b| a.partial_cmp(b).expect("claims are finite"));
                let k = claims.len();
                let center = match self.cfg.aggregation {
                    ddp_police::AggregationPolicy::Median => median_sorted(&claims),
                    ddp_police::AggregationPolicy::TrimmedMean { trim } => {
                        trimmed_mean_sorted(&claims, trim)
                    }
                    ddp_police::AggregationPolicy::Sum => unreachable!(),
                };
                (center * k as f64, into_suspect)
            }
        }
    }

    /// Definition 2.1, transcribed:
    /// `g(j,t) = (Σ_m Q_{j→m} − (k−1)·Σ_m Q_{m→j}) / (k·q)`.
    fn general_indicator(&self, sum_out_of_suspect: f64, sum_into_suspect: f64, k: usize) -> f64 {
        let q = self.cfg.q_qpm;
        if k == 0 || q == 0 {
            return 0.0;
        }
        (sum_out_of_suspect - (k as f64 - 1.0) * sum_into_suspect) / (k as f64 * q as f64)
    }

    /// Definition 2.2, transcribed:
    /// `s(j,t,i) = (Q_{j→i} − Σ_{m≠i} Q_{m→j}) / q`.
    fn single_indicator(&self, q_suspect_to_observer: f64, sum_into_except_observer: f64) -> f64 {
        let q = self.cfg.q_qpm;
        if q == 0 {
            return 0.0;
        }
        (q_suspect_to_observer - sum_into_except_observer) / q as f64
    }

    // ----- verdict lifecycle (naive HashMap transcription) --------------

    fn below_warning(&mut self, observer: NodeId, suspect: NodeId) {
        if let Some(e) = self.entries.get(&(observer.0, suspect.0)) {
            if matches!(e.state, OracleState::Watching { .. }) {
                self.entries.remove(&(observer.0, suspect.0));
            }
        }
    }

    fn note_list_missing(&mut self, observer: NodeId, suspect: NodeId) -> u8 {
        let entry = self.entries.entry((observer.0, suspect.0)).or_insert_with(OracleEntry::fresh);
        entry.list_streak = entry.list_streak.saturating_add(1);
        entry.list_streak
    }

    fn note_list_ok(&mut self, observer: NodeId, suspect: NodeId) {
        if let Some(e) = self.entries.get_mut(&(observer.0, suspect.0)) {
            e.list_streak = 0;
        }
    }

    /// Feed one judged window into the lifecycle. Mirrors
    /// [`VerdictMachine::judged`](ddp_police::VerdictMachine::judged) with
    /// the history as an explicit window of bools.
    fn judged(
        &mut self,
        observer: NodeId,
        suspect: NodeId,
        over_ct: bool,
        tick: Tick,
        actions: &mut Actions,
    ) -> bool {
        let key = (observer.0, suspect.0);
        let entry = self.entries.entry(key).or_insert_with(OracleEntry::fresh).clone();
        let (cut, from, next_backoff) = match &entry.state {
            OracleState::Watching { history } => {
                let window = usize::from(self.cfg.hysteresis.window.clamp(1, 8));
                let required = u32::from(self.cfg.hysteresis.required.max(1)).min(window as u32);
                let mut new_history = history.clone();
                new_history.push(over_ct);
                while new_history.len() > window {
                    new_history.remove(0);
                }
                let over_count = new_history.iter().filter(|&&b| b).count() as u32;
                if over_count >= required {
                    (true, ledger_state(&entry.state), None)
                } else {
                    let was_normal = fold_history(history) == 0;
                    let now_suspicious = fold_history(&new_history) != 0;
                    if now_suspicious && was_normal {
                        actions.transition(VerdictTransition {
                            tick,
                            observer: observer.0,
                            suspect: suspect.0,
                            from: PeerVerdict::Normal,
                            to: PeerVerdict::Suspicious,
                        });
                    }
                    if !now_suspicious && entry.list_streak == 0 {
                        self.entries.remove(&key);
                    } else {
                        self.entries.insert(
                            key,
                            OracleEntry {
                                state: OracleState::Watching { history: new_history },
                                list_streak: entry.list_streak,
                            },
                        );
                    }
                    (false, PeerVerdict::Normal, None)
                }
            }
            OracleState::Probation { backoff, .. } => {
                if over_ct {
                    (
                        true,
                        PeerVerdict::Probation,
                        Some(backoff.saturating_mul(2).min(self.cfg.readmission.max_backoff_ticks)),
                    )
                } else {
                    (false, PeerVerdict::Probation, None)
                }
            }
            OracleState::Quarantined { .. } => (false, PeerVerdict::Quarantined, None),
        };
        if !cut {
            return false;
        }
        actions.transition(VerdictTransition {
            tick,
            observer: observer.0,
            suspect: suspect.0,
            from,
            to: PeerVerdict::Cut,
        });
        actions.transition(VerdictTransition {
            tick,
            observer: observer.0,
            suspect: suspect.0,
            from: PeerVerdict::Cut,
            to: PeerVerdict::Quarantined,
        });
        if self.cfg.readmission.enabled {
            let backoff = next_backoff.unwrap_or(self.cfg.readmission.base_backoff_ticks).max(1);
            self.entries.insert(
                key,
                OracleEntry {
                    state: OracleState::Quarantined {
                        until: tick.saturating_add(backoff),
                        backoff,
                    },
                    list_streak: 0,
                },
            );
        } else {
            self.entries.remove(&key);
        }
        true
    }

    fn fire_probes(&mut self, observer: NodeId, tick: Tick, actions: &mut Actions) {
        let mut due: Vec<u32> = self
            .entries
            .iter()
            .filter_map(|(&(o, s), e)| match e.state {
                OracleState::Quarantined { until, .. } if o == observer.0 && tick >= until => {
                    Some(s)
                }
                _ => None,
            })
            .collect();
        due.sort_unstable();
        for s in due {
            let entry = self.entries.get_mut(&(observer.0, s)).expect("just listed");
            let OracleState::Quarantined { backoff, .. } = entry.state else { unreachable!() };
            entry.state = OracleState::Probation {
                until: tick.saturating_add(self.cfg.readmission.probation_ticks),
                backoff,
            };
            actions.reconnect(observer, NodeId(s));
            actions.transition(VerdictTransition {
                tick,
                observer: observer.0,
                suspect: s,
                from: PeerVerdict::Quarantined,
                to: PeerVerdict::Probation,
            });
        }
    }

    fn expire_probations(&mut self, observer: NodeId, tick: Tick, actions: &mut Actions) {
        let mut done: Vec<u32> = self
            .entries
            .iter()
            .filter_map(|(&(o, s), e)| match e.state {
                OracleState::Probation { until, .. } if o == observer.0 && tick >= until => Some(s),
                _ => None,
            })
            .collect();
        done.sort_unstable();
        for s in done {
            self.entries.remove(&(observer.0, s));
            actions.transition(VerdictTransition {
                tick,
                observer: observer.0,
                suspect: s,
                from: PeerVerdict::Probation,
                to: PeerVerdict::Readmitted,
            });
        }
    }

    fn expire_stale(&mut self, observer: NodeId, tick: Tick, online: &[bool]) {
        let ttl = self.cfg.suspect_ttl_ticks;
        let keys: Vec<u32> =
            self.entries.keys().filter(|&&(o, _)| o == observer.0).map(|&(_, s)| s).collect();
        for s in keys {
            let e = &self.entries[&(observer.0, s)];
            let gone = !online.get(s as usize).copied().unwrap_or(false);
            let keep = match e.state {
                OracleState::Watching { .. } => !gone,
                OracleState::Quarantined { until, .. } | OracleState::Probation { until, .. } => {
                    if gone {
                        tick < until
                    } else {
                        tick <= until.saturating_add(ttl)
                    }
                }
            };
            if !keep {
                self.entries.remove(&(observer.0, s));
            }
        }
    }

    fn blocks_link(&self, observer: NodeId, suspect: NodeId) -> bool {
        matches!(
            self.entries.get(&(observer.0, suspect.0)),
            Some(OracleEntry {
                state: OracleState::Quarantined { .. } | OracleState::Probation { .. },
                ..
            })
        )
    }
}

fn median_sorted(sorted: &[f64]) -> f64 {
    let k = sorted.len();
    if k == 0 {
        return 0.0;
    }
    if k % 2 == 1 {
        sorted[k / 2]
    } else {
        (sorted[k / 2 - 1] + sorted[k / 2]) / 2.0
    }
}

fn trimmed_mean_sorted(sorted: &[f64], trim: f64) -> f64 {
    let k = sorted.len();
    if k == 0 {
        return 0.0;
    }
    let drop = ((k as f64) * trim.clamp(0.0, 0.5)).floor() as usize;
    let kept = &sorted[drop.min(k / 2)..k - drop.min((k - 1) / 2)];
    if kept.is_empty() {
        return median_sorted(sorted);
    }
    kept.iter().sum::<f64>() / kept.len() as f64
}

impl Defense for OracleDdPolice {
    fn name(&self) -> &'static str {
        "dd-police-oracle"
    }

    fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
        actions.control_msgs += self.exchange_tick(obs);

        let n = obs.overlay.node_count();
        for i in 0..n {
            if !obs.runs_defense[i] {
                continue;
            }
            let observer = NodeId::from_index(i);
            if self.cfg.suspect_ttl_ticks != u32::MAX {
                self.expire_stale(observer, obs.tick, obs.online);
            }
            if self.cfg.readmission.enabled {
                self.expire_probations(observer, obs.tick, actions);
                let before = actions.reconnects.len();
                self.fire_probes(observer, obs.tick, actions);
                actions.control_msgs += (actions.reconnects.len() - before) as u64;
            }
            for slot in 0..obs.overlay.degree(observer) {
                let half = obs.overlay.neighbors(observer)[slot];
                let suspect = half.peer;
                // In_query(suspect): what the observer accepted from it.
                let q_ji = obs.overlay.accepted_via(suspect, half.ridx as usize);
                if q_ji <= self.cfg.warning_threshold_qpm {
                    self.below_warning(observer, suspect);
                    continue;
                }
                // §3.3: over the warning threshold — assemble the group.
                let members = match self.assemble(observer, suspect, obs) {
                    Some(members) => {
                        self.note_list_ok(observer, suspect);
                        members
                    }
                    None => {
                        let streak = self.note_list_missing(observer, suspect);
                        if streak < self.cfg.missing_list_grace {
                            continue;
                        }
                        // Never announced a list: judged from the observer's
                        // own counters alone.
                        vec![observer]
                    }
                };
                // The 50-second suppression: one k(k−1)-message
                // Neighbor_Traffic round per suspect per tick across all of
                // its observers.
                let k = members.len();
                if self.exchanged_stamp.get(&suspect.0) != Some(&obs.tick) {
                    self.exchanged_stamp.insert(suspect.0, obs.tick);
                    let ku = k as u64;
                    actions.control_msgs += ku * ku.saturating_sub(1);
                }
                let own = TrafficReport {
                    sent_to_suspect: obs.overlay.accepted_via(observer, slot),
                    received_from_suspect: q_ji,
                };
                let mut retry_msgs = 0u64;
                let mut member_reports: Vec<Option<TrafficReport>> =
                    Vec::with_capacity(members.len());
                for &m in &members {
                    if m == observer {
                        continue; // own counters are summed directly
                    }
                    let report = self
                        .resolve_report(observer, m, suspect, obs, &mut retry_msgs)
                        .map(|mut r| {
                            if self.cfg.clamp_reports_to_link {
                                r.sent_to_suspect =
                                    r.sent_to_suspect.min(obs.overlay.link_capacity(m, suspect));
                            }
                            r
                        });
                    member_reports.push(report);
                }
                actions.control_msgs += retry_msgs;
                let (sum_out, sum_in) = self.aggregate(own, &member_reports);
                let g = self.general_indicator(sum_out, sum_in, k);
                let s = self.single_indicator(q_ji as f64, sum_in - own.sent_to_suspect as f64);
                self.trace.push(JudgmentTrace { tick: obs.tick, observer, suspect, g, s });
                let over_ct = g > self.cfg.cut_threshold || s > self.cfg.cut_threshold;
                if self.judged(observer, suspect, over_ct, obs.tick, actions) {
                    actions.cut(observer, suspect);
                }
            }
        }
    }

    fn on_peer_reset(&mut self, node: NodeId) {
        self.views.retain(|&(viewer, _), _| viewer != node.0);
        self.entries.retain(|&(observer, _), _| observer != node.0);
    }

    fn on_peer_departed(&mut self, node: NodeId) {
        self.views.retain(|&(viewer, announcer), _| viewer != node.0 && announcer != node.0);
        self.entries.retain(|&(observer, suspect), _| observer != node.0 && suspect != node.0);
    }

    fn forbids_link(&self, u: NodeId, v: NodeId) -> bool {
        self.blocks_link(u, v) || self.blocks_link(v, u)
    }

    fn on_edge_added(&mut self, _u: NodeId, _v: NodeId, deg_u: usize, deg_v: usize) {
        if self.cfg.exchange == ExchangePolicy::EventDriven {
            self.pending_event_msgs += (deg_u + deg_v) as u64;
        }
    }

    fn on_edge_removed(&mut self, u: NodeId, v: NodeId, deg_u: usize, deg_v: usize) {
        if self.cfg.exchange == ExchangePolicy::EventDriven {
            self.pending_event_msgs += (deg_u + deg_v) as u64;
        }
        self.views.remove(&(u.0, v.0));
        self.views.remove(&(v.0, u.0));
        // Watching/Probation state dies with the edge; quarantine owns the
        // readmission clock and survives its own cut.
        for (a, b) in [(u, v), (v, u)] {
            if let Some(e) = self.entries.get(&(a.0, b.0)) {
                if !matches!(e.state, OracleState::Quarantined { .. }) {
                    self.entries.remove(&(a.0, b.0));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_folds_to_the_engines_bitmask() {
        assert_eq!(fold_history(&[]), 0);
        assert_eq!(fold_history(&[true]), 0b1);
        assert_eq!(fold_history(&[true, false]), 0b10);
        assert_eq!(fold_history(&[false, true, true]), 0b011);
        // Leading falses vanish, like bits shifted out of the engine's mask.
        assert_eq!(fold_history(&[false, false, true]), fold_history(&[true]));
    }

    #[test]
    fn naive_indicators_match_the_engines_expressions() {
        let oracle = OracleDdPolice::new(DdPoliceConfig::default());
        let q = DdPoliceConfig::default().q_qpm;
        for (out, into, k) in [(400.0, 30.0, 3usize), (20_000.0, 0.0, 1), (0.0, 900.0, 5)] {
            let want = ddp_police::indicator::general_indicator(out, into, k, q);
            assert_eq!(oracle.general_indicator(out, into, k).to_bits(), want.to_bits());
        }
        for (qji, rest) in [(700.0, 30.0), (20_000.0, 0.0), (10.0, 900.0)] {
            let want = ddp_police::indicator::single_indicator(qji, rest, q);
            assert_eq!(oracle.single_indicator(qji, rest).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn degenerate_indicator_inputs_are_zero() {
        let cfg = DdPoliceConfig { q_qpm: 0, ..DdPoliceConfig::default() };
        let oracle = OracleDdPolice::new(cfg);
        assert_eq!(oracle.general_indicator(100.0, 50.0, 3), 0.0);
        assert_eq!(oracle.single_indicator(100.0, 50.0), 0.0);
        let oracle = OracleDdPolice::new(DdPoliceConfig::default());
        assert_eq!(oracle.general_indicator(100.0, 50.0, 0), 0.0);
    }
}
