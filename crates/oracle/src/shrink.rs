//! Scenario shrinking: reduce a diverging [`ScenarioSpec`] to a minimal
//! replayable reproducer.
//!
//! Greedy descent: each round proposes a fixed set of simplifying mutations
//! (truncate ticks to the divergence point, halve the population, drop the
//! attack, disable churn / sessions / whitewash / collusion, make the fault
//! plane inert, reset protocol knobs to paper defaults) and keeps any
//! mutation under which the twins *still diverge*. The loop re-runs until a
//! full round changes nothing, so the result is locally minimal: every
//! remaining deviation from the default spec is necessary to reproduce the
//! bug. Determinism of [`run_lockstep`] makes the reproducer exact — same
//! spec, same divergence, forever.

use crate::harness::run_lockstep;
use crate::spec::ScenarioSpec;

/// A shrunk reproducer: the minimal spec plus the divergence it still
/// triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrunkRepro {
    /// The minimized scenario.
    pub spec: ScenarioSpec,
    /// The divergence the minimized scenario reproduces.
    pub divergence: crate::harness::Divergence,
    /// Lockstep runs spent shrinking (the search budget actually used).
    pub runs: usize,
}

/// All single-step simplifications of `spec`, most aggressive first.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let defaults = ScenarioSpec::default();
    let mut out = Vec::new();
    let mut push = |mutated: ScenarioSpec| {
        if mutated != *spec {
            out.push(mutated);
        }
    };
    if spec.ticks > 1 {
        push(ScenarioSpec { ticks: spec.ticks / 2, ..spec.clone() });
        push(ScenarioSpec { ticks: spec.ticks - 1, ..spec.clone() });
    }
    if spec.peers > 8 {
        push(ScenarioSpec { peers: (spec.peers / 2).max(8), ..spec.clone() });
        push(ScenarioSpec { peers: spec.peers - 1, ..spec.clone() });
    }
    if spec.agents > 0 {
        push(ScenarioSpec { agents: spec.agents / 2, ..spec.clone() });
    }
    push(ScenarioSpec { cheat: 0, ..spec.clone() });
    push(ScenarioSpec { lists: 0, ..spec.clone() });
    push(ScenarioSpec {
        loss: 0.0,
        delay_prob: 0.0,
        delay_ticks: defaults.delay_ticks,
        crash_prob: 0.0,
        ..spec.clone()
    });
    push(ScenarioSpec { collusion: 0, ..spec.clone() });
    push(ScenarioSpec { churn: false, ..spec.clone() });
    push(ScenarioSpec { session_mean: 0.0, ..spec.clone() });
    push(ScenarioSpec { whitewash_dwell: 0, whitewash_quiet: 0, ..spec.clone() });
    push(ScenarioSpec { cut_threshold: defaults.cut_threshold, ..spec.clone() });
    push(ScenarioSpec { exchange_minutes: defaults.exchange_minutes, ..spec.clone() });
    push(ScenarioSpec { radius: defaults.radius, ..spec.clone() });
    push(ScenarioSpec { verify_lists: defaults.verify_lists, ..spec.clone() });
    push(ScenarioSpec { clamp_reports: false, ..spec.clone() });
    push(ScenarioSpec { aggregation: 0, trim: defaults.trim, ..spec.clone() });
    push(ScenarioSpec { hys_required: 1, hys_window: 1, ..spec.clone() });
    push(ScenarioSpec { readmission: false, ..spec.clone() });
    push(ScenarioSpec { suspect_ttl: u32::MAX, ..spec.clone() });
    out
}

/// Shrink a diverging scenario. `spec` must diverge (the caller has already
/// seen it fail); if it unexpectedly passes, `None`.
///
/// `max_runs` bounds the total number of lockstep executions spent searching
/// — shrinking is best-effort and the pre-shrink spec is always a valid
/// reproducer, so running out of budget just yields a bigger one.
pub fn shrink(spec: &ScenarioSpec, max_runs: usize) -> Option<ShrunkRepro> {
    let mut runs = 0usize;
    fn rerun(candidate: &ScenarioSpec, runs: &mut usize) -> Option<crate::harness::Divergence> {
        *runs += 1;
        run_lockstep(candidate).err()
    }

    let mut divergence = rerun(spec, &mut runs)?;
    let mut best = spec.clone();
    // The scenario past the first divergence is dead weight.
    best.ticks = best.ticks.min(divergence.tick);

    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if runs >= max_runs {
                return Some(ShrunkRepro { spec: best, divergence, runs });
            }
            if let Some(d) = rerun(&candidate, &mut runs) {
                best = candidate;
                best.ticks = best.ticks.min(d.tick);
                divergence = d;
                improved = true;
                break; // restart the round from the new, smaller spec
            }
        }
        if !improved {
            return Some(ShrunkRepro { spec: best, divergence, runs });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_spec_yields_none() {
        assert!(shrink(&ScenarioSpec::default(), 50).is_none());
    }

    #[test]
    fn candidates_always_simplify_something() {
        let spec = ScenarioSpec::random(3);
        for c in candidates(&spec) {
            assert_ne!(c, spec, "a candidate must differ from its parent");
        }
        // A fully minimal spec generates no self-candidates that re-expand.
        let minimal = ScenarioSpec { peers: 8, ticks: 1, agents: 0, ..ScenarioSpec::default() };
        for c in candidates(&minimal) {
            assert!(c.peers <= minimal.peers && c.ticks <= minimal.ticks);
        }
    }
}
