//! [`ScenarioSpec`] — a flat, replayable description of one differential
//! fuzz scenario.
//!
//! Every knob the harness varies is a scalar, so a spec serializes to a
//! single flat JSON object (hand-rolled — the workspace has no JSON
//! dependency) and shrinks by mutating one field at a time. The same spec
//! instantiates the optimized engine and the naive oracle from the same
//! seed, so any observable difference between the twins is the defense's
//! fault, not the scenario's.

use ddp_attack::{AttackPlan, CheatFactors, CheatStrategy, CollusionPlan, WhitewashPlan};
use ddp_police::exchange::ExchangePolicy;
use ddp_police::{AggregationPolicy, DdPoliceConfig, Hysteresis, ReadmissionPolicy};
use ddp_sim::{Defense, FaultConfig, ListBehavior, SessionConfig, SimConfig, Simulation};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One fuzz scenario: topology + attack wiring + fault plane + protocol
/// knobs, all scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Peers in the Barabási–Albert (m = 3) starting overlay.
    pub peers: usize,
    /// Ticks to run in lockstep.
    pub ticks: u32,
    /// Master seed: engine RNG, oracle RNG, and attack selection all derive
    /// from it identically.
    pub seed: u64,
    /// Plain flooding agents (ignored when a collusion mode is set).
    pub agents: usize,
    /// Cheat strategy for plain agents: 0 Honest, 1 InflateSent,
    /// 2 DeflateSent, 3 Silent.
    pub cheat: u8,
    /// Inflation factor for `cheat == 1`.
    pub inflate: f64,
    /// Deflation factor for `cheat == 2`.
    pub deflate: f64,
    /// List behavior applied to every agent: 0 Truthful, 1 Omit, 2 Refuse,
    /// 3 PadFake.
    pub lists: u8,
    /// Phantom members per announcement for `lists == 3`.
    pub pad_extra: u8,
    /// Control-plane loss probability.
    pub loss: f64,
    /// Control-plane delay probability.
    pub delay_prob: f64,
    /// Delay length in ticks when a message is delayed.
    pub delay_ticks: u32,
    /// Per-node crash-restart probability per tick.
    pub crash_prob: f64,
    /// Collusion mode: 0 none, 1 shield (adjacent cluster), 2 frame.
    pub collusion: u8,
    /// Shield mode: fellow-colluder deflation factor.
    pub shield_deflate: f64,
    /// Frame mode: fraction of the victim's neighbors compromised.
    pub frame_fraction: f64,
    /// Frame mode: inflation factor against the victim.
    pub frame_inflate: f64,
    /// Legacy fixed-slot churn on/off.
    pub churn: bool,
    /// Session model mean lifetime in minutes; `0.0` disables the session
    /// model.
    pub session_mean: f64,
    /// Whitewashing: rebirth dwell in ticks; `0` disables whitewashing.
    pub whitewash_dwell: u32,
    /// Whitewashing: post-rejoin quiet period in ticks.
    pub whitewash_quiet: u32,
    /// Protocol `CT`.
    pub cut_threshold: f64,
    /// Exchange period in minutes; `0` selects the event-driven policy.
    pub exchange_minutes: u32,
    /// Buddy-Group radius.
    pub radius: u8,
    /// §3.1 membership verification on/off.
    pub verify_lists: bool,
    /// Clamp claimed traffic at link capacity on/off.
    pub clamp_reports: bool,
    /// Aggregation: 0 Sum, 1 Median, 2 TrimmedMean.
    pub aggregation: u8,
    /// Trim fraction for `aggregation == 2`.
    pub trim: f64,
    /// Hysteresis: required over-CT windows.
    pub hys_required: u8,
    /// Hysteresis: window length.
    pub hys_window: u8,
    /// Readmission lifecycle on/off (engine defaults for the clocks).
    pub readmission: bool,
    /// Verdict-state TTL in ticks; `u32::MAX` disables the sweep.
    pub suspect_ttl: u32,
    /// Force the engine down its fast path even when the gate says no —
    /// the mutation-check lever; always `false` for honest fuzzing.
    pub force_fast_path: bool,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            peers: 48,
            ticks: 10,
            seed: 1,
            agents: 3,
            cheat: 0,
            inflate: 50.0,
            deflate: 0.02,
            lists: 0,
            pad_extra: 4,
            loss: 0.0,
            delay_prob: 0.0,
            delay_ticks: 1,
            crash_prob: 0.0,
            collusion: 0,
            shield_deflate: 0.02,
            frame_fraction: 0.6,
            frame_inflate: 50.0,
            churn: false,
            session_mean: 0.0,
            whitewash_dwell: 0,
            whitewash_quiet: 0,
            cut_threshold: 5.0,
            exchange_minutes: 2,
            radius: 1,
            verify_lists: true,
            clamp_reports: false,
            aggregation: 0,
            trim: 0.2,
            hys_required: 1,
            hys_window: 1,
            readmission: false,
            suspect_ttl: u32::MAX,
            force_fast_path: false,
        }
    }
}

/// SplitMix64 step — the spec generator's only entropy source (`Date::now`
/// has no place in a replayable fuzzer).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, lo: u64, hi: u64) -> u64 {
    lo + splitmix64(state) % (hi - lo + 1)
}

fn chance(state: &mut u64, prob_percent: u64) -> bool {
    pick(state, 0, 99) < prob_percent
}

impl ScenarioSpec {
    /// A random scenario derived deterministically from `fuzz_seed`. Biased
    /// toward the paper's defaults (most knobs stay put per scenario) so
    /// single-feature interactions stay likely while the tail still covers
    /// feature products.
    pub fn random(fuzz_seed: u64) -> Self {
        let mut st = fuzz_seed ^ 0x0dd5_ca1e_0dd5_ca1e;
        // Warm the stream so consecutive seeds decorrelate.
        let _ = splitmix64(&mut st);
        let mut spec = ScenarioSpec {
            peers: pick(&mut st, 24, 80) as usize,
            ticks: pick(&mut st, 6, 16) as u32,
            seed: splitmix64(&mut st),
            agents: pick(&mut st, 0, 6) as usize,
            ..ScenarioSpec::default()
        };
        spec.cheat = pick(&mut st, 0, 3) as u8;
        if chance(&mut st, 40) {
            spec.lists = pick(&mut st, 0, 3) as u8;
        }
        if chance(&mut st, 40) {
            spec.loss = pick(&mut st, 1, 30) as f64 / 100.0;
            spec.delay_prob = pick(&mut st, 0, 30) as f64 / 100.0;
            spec.delay_ticks = pick(&mut st, 1, 3) as u32;
        }
        if chance(&mut st, 20) {
            spec.crash_prob = pick(&mut st, 1, 5) as f64 / 100.0;
        }
        if chance(&mut st, 25) {
            spec.collusion = pick(&mut st, 1, 2) as u8;
        }
        spec.churn = chance(&mut st, 30);
        if chance(&mut st, 20) {
            spec.session_mean = pick(&mut st, 4, 20) as f64;
        }
        if chance(&mut st, 15) {
            spec.whitewash_dwell = pick(&mut st, 1, 3) as u32;
            spec.whitewash_quiet = pick(&mut st, 0, 2) as u32;
        }
        if chance(&mut st, 30) {
            spec.cut_threshold = pick(&mut st, 1, 12) as f64;
        }
        if chance(&mut st, 25) {
            spec.exchange_minutes = pick(&mut st, 0, 3) as u32;
        }
        if chance(&mut st, 20) {
            spec.radius = 2;
        }
        spec.verify_lists = chance(&mut st, 80);
        spec.clamp_reports = chance(&mut st, 25);
        if chance(&mut st, 25) {
            spec.aggregation = pick(&mut st, 1, 2) as u8;
            spec.trim = pick(&mut st, 0, 40) as f64 / 100.0;
        }
        if chance(&mut st, 25) {
            spec.hys_window = pick(&mut st, 1, 4) as u8;
            spec.hys_required = pick(&mut st, 1, spec.hys_window as u64) as u8;
        }
        spec.readmission = chance(&mut st, 25);
        if chance(&mut st, 20) {
            spec.suspect_ttl = pick(&mut st, 2, 8) as u32;
        }
        spec
    }

    /// The simulation configuration both twins share.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            topology: TopologyConfig {
                n: self.peers,
                model: TopologyModel::BarabasiAlbert { m: 3 },
            },
            churn: self.churn,
            faults: FaultConfig {
                loss: self.loss,
                delay_prob: self.delay_prob,
                delay_ticks: self.delay_ticks,
                crash_prob: self.crash_prob,
            },
            session: if self.session_mean > 0.0 {
                Some(SessionConfig::steady_state(self.peers, self.session_mean))
            } else {
                None
            },
            ..SimConfig::default()
        }
    }

    /// The protocol configuration both twins share.
    pub fn police_config(&self) -> DdPoliceConfig {
        DdPoliceConfig {
            cut_threshold: self.cut_threshold,
            exchange: if self.exchange_minutes == 0 {
                ExchangePolicy::EventDriven
            } else {
                ExchangePolicy::Periodic { minutes: self.exchange_minutes }
            },
            radius: self.radius,
            verify_lists: self.verify_lists,
            clamp_reports_to_link: self.clamp_reports,
            aggregation: match self.aggregation {
                0 => AggregationPolicy::Sum,
                1 => AggregationPolicy::Median,
                _ => AggregationPolicy::TrimmedMean { trim: self.trim },
            },
            hysteresis: Hysteresis { required: self.hys_required, window: self.hys_window },
            readmission: ReadmissionPolicy {
                enabled: self.readmission,
                ..ReadmissionPolicy::default()
            },
            suspect_ttl_ticks: self.suspect_ttl,
            ..DdPoliceConfig::default()
        }
    }

    fn cheat_strategy(&self) -> CheatStrategy {
        match self.cheat {
            0 => CheatStrategy::Honest,
            1 => CheatStrategy::InflateSent,
            2 => CheatStrategy::DeflateSent,
            _ => CheatStrategy::Silent,
        }
    }

    fn list_behavior(&self) -> ListBehavior {
        match self.lists {
            0 => ListBehavior::Truthful,
            1 => ListBehavior::Omit,
            2 => ListBehavior::Refuse,
            _ => ListBehavior::PadFake { extra: self.pad_extra },
        }
    }

    /// Build one simulation around `defense` with the attack fully wired.
    /// Called once per twin with the same spec, so both receive identical
    /// agent selections, collusion clusters, and whitewash arming.
    pub fn instantiate<D: Defense>(&self, defense: D) -> Simulation<D> {
        let mut sim = Simulation::new(self.sim_config(), defense, self.seed);
        let agents: Vec<NodeId> = if self.whitewash_dwell > 0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xdd05_ee1f);
            WhitewashPlan::new(self.agents, self.whitewash_dwell)
                .with_quiet(self.whitewash_quiet)
                .with_cheat(self.cheat_strategy())
                .apply(&mut sim, &mut rng)
        } else if self.collusion == 1 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0c01_10de);
            CollusionPlan::shield(self.agents.max(1), self.shield_deflate)
                .apply(&mut sim, &mut rng)
                .colluders
        } else if self.collusion == 2 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0c01_10de);
            CollusionPlan::frame(self.frame_fraction, self.frame_inflate)
                .apply(&mut sim, &mut rng)
                .colluders
        } else if self.agents > 0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xdd05_ee1f);
            AttackPlan::new(self.agents)
                .with_cheat(self.cheat_strategy())
                .with_factors(CheatFactors { inflate: self.inflate, deflate: self.deflate })
                .apply(&mut sim, &mut rng)
        } else {
            Vec::new()
        };
        let behavior = self.list_behavior();
        if behavior != ListBehavior::Truthful {
            for &a in &agents {
                sim.set_list_behavior(a, behavior);
            }
        }
        sim
    }

    // ----- flat JSON (hand-rolled; the workspace carries no JSON dep) ----

    /// Serialize to a flat JSON object, one key per field.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |key: &str, value: String| {
            s.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field("peers", self.peers.to_string());
        field("ticks", self.ticks.to_string());
        field("seed", self.seed.to_string());
        field("agents", self.agents.to_string());
        field("cheat", self.cheat.to_string());
        field("inflate", fmt_f64(self.inflate));
        field("deflate", fmt_f64(self.deflate));
        field("lists", self.lists.to_string());
        field("pad_extra", self.pad_extra.to_string());
        field("loss", fmt_f64(self.loss));
        field("delay_prob", fmt_f64(self.delay_prob));
        field("delay_ticks", self.delay_ticks.to_string());
        field("crash_prob", fmt_f64(self.crash_prob));
        field("collusion", self.collusion.to_string());
        field("shield_deflate", fmt_f64(self.shield_deflate));
        field("frame_fraction", fmt_f64(self.frame_fraction));
        field("frame_inflate", fmt_f64(self.frame_inflate));
        field("churn", self.churn.to_string());
        field("session_mean", fmt_f64(self.session_mean));
        field("whitewash_dwell", self.whitewash_dwell.to_string());
        field("whitewash_quiet", self.whitewash_quiet.to_string());
        field("cut_threshold", fmt_f64(self.cut_threshold));
        field("exchange_minutes", self.exchange_minutes.to_string());
        field("radius", self.radius.to_string());
        field("verify_lists", self.verify_lists.to_string());
        field("clamp_reports", self.clamp_reports.to_string());
        field("aggregation", self.aggregation.to_string());
        field("trim", fmt_f64(self.trim));
        field("hys_required", self.hys_required.to_string());
        field("hys_window", self.hys_window.to_string());
        field("readmission", self.readmission.to_string());
        field("suspect_ttl", self.suspect_ttl.to_string());
        field("force_fast_path", self.force_fast_path.to_string());
        // Trim the trailing comma to stay valid JSON.
        let end = s.trim_end_matches([',', '\n']).len();
        s.truncate(end);
        s.push_str("\n}\n");
        s
    }

    /// Parse a flat JSON object produced by [`Self::to_json`] (or edited by
    /// hand — key order and whitespace are free; unknown keys are errors so
    /// a typo cannot silently replay a different scenario).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut spec = ScenarioSpec::default();
        let inner = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or("not a JSON object")?;
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once(':').ok_or_else(|| format!("bad pair {part:?}"))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            let as_u64 = || -> Result<u64, String> {
                value.parse::<u64>().map_err(|e| format!("{key}: {e}"))
            };
            let as_f64 = || -> Result<f64, String> {
                value.parse::<f64>().map_err(|e| format!("{key}: {e}"))
            };
            let as_bool = || -> Result<bool, String> {
                value.parse::<bool>().map_err(|e| format!("{key}: {e}"))
            };
            match key {
                "peers" => spec.peers = as_u64()? as usize,
                "ticks" => spec.ticks = as_u64()? as u32,
                "seed" => spec.seed = as_u64()?,
                "agents" => spec.agents = as_u64()? as usize,
                "cheat" => spec.cheat = as_u64()? as u8,
                "inflate" => spec.inflate = as_f64()?,
                "deflate" => spec.deflate = as_f64()?,
                "lists" => spec.lists = as_u64()? as u8,
                "pad_extra" => spec.pad_extra = as_u64()? as u8,
                "loss" => spec.loss = as_f64()?,
                "delay_prob" => spec.delay_prob = as_f64()?,
                "delay_ticks" => spec.delay_ticks = as_u64()? as u32,
                "crash_prob" => spec.crash_prob = as_f64()?,
                "collusion" => spec.collusion = as_u64()? as u8,
                "shield_deflate" => spec.shield_deflate = as_f64()?,
                "frame_fraction" => spec.frame_fraction = as_f64()?,
                "frame_inflate" => spec.frame_inflate = as_f64()?,
                "churn" => spec.churn = as_bool()?,
                "session_mean" => spec.session_mean = as_f64()?,
                "whitewash_dwell" => spec.whitewash_dwell = as_u64()? as u32,
                "whitewash_quiet" => spec.whitewash_quiet = as_u64()? as u32,
                "cut_threshold" => spec.cut_threshold = as_f64()?,
                "exchange_minutes" => spec.exchange_minutes = as_u64()? as u32,
                "radius" => spec.radius = as_u64()? as u8,
                "verify_lists" => spec.verify_lists = as_bool()?,
                "clamp_reports" => spec.clamp_reports = as_bool()?,
                "aggregation" => spec.aggregation = as_u64()? as u8,
                "trim" => spec.trim = as_f64()?,
                "hys_required" => spec.hys_required = as_u64()? as u8,
                "hys_window" => spec.hys_window = as_u64()? as u8,
                "readmission" => spec.readmission = as_bool()?,
                "suspect_ttl" => spec.suspect_ttl = as_u64()? as u32,
                "force_fast_path" => spec.force_fast_path = as_bool()?,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(spec)
    }
}

/// `f64` to JSON without losing bits: integers print plainly, everything
/// else via `{:?}` (shortest round-trip representation).
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// The named scenario matrix: one spec per engine subsystem, the same shapes
/// the engine-vs-oracle differential suite pins. Every differential harness
/// (oracle lockstep, serial-vs-parallel, snapshot-restore) sweeps this list
/// so a new subsystem added here is automatically covered by all of them.
pub fn scenario_matrix() -> Vec<(&'static str, ScenarioSpec)> {
    let base = ScenarioSpec::default;
    let mut m: Vec<(&'static str, ScenarioSpec)> = vec![
        ("default flooders", ScenarioSpec { agents: 4, ..base() }),
        ("quiet overlay", ScenarioSpec { agents: 0, ..base() }),
        (
            "faulty transport",
            ScenarioSpec {
                agents: 4,
                loss: 0.2,
                delay_prob: 0.2,
                delay_ticks: 2,
                ticks: 12,
                ..base()
            },
        ),
        ("crash restarts", ScenarioSpec { agents: 3, crash_prob: 0.05, ticks: 12, ..base() }),
        ("shield coalition", ScenarioSpec { agents: 4, collusion: 1, ..base() }),
        ("framing coalition", ScenarioSpec { collusion: 2, frame_fraction: 0.8, ..base() }),
        ("legacy churn", ScenarioSpec { agents: 4, churn: true, ticks: 14, ..base() }),
        ("session model", ScenarioSpec { agents: 4, session_mean: 6.0, ticks: 14, ..base() }),
        (
            "whitewashing",
            ScenarioSpec { agents: 4, whitewash_dwell: 2, whitewash_quiet: 1, ticks: 14, ..base() },
        ),
        ("hysteresis", ScenarioSpec { agents: 4, hys_window: 3, hys_required: 2, ..base() }),
        ("readmission", ScenarioSpec { agents: 4, readmission: true, ticks: 16, ..base() }),
        (
            "ttl sweep",
            ScenarioSpec { agents: 4, suspect_ttl: 3, session_mean: 6.0, ticks: 14, ..base() },
        ),
        (
            "event-driven exchange",
            ScenarioSpec { agents: 4, exchange_minutes: 0, churn: true, ..base() },
        ),
        ("radius 2", ScenarioSpec { agents: 4, radius: 2, ..base() }),
        (
            "clamp on (slow path)",
            ScenarioSpec { agents: 4, cheat: 1, clamp_reports: true, ..base() },
        ),
        (
            "kitchen sink",
            ScenarioSpec {
                agents: 5,
                cheat: 1,
                lists: 3,
                pad_extra: 3,
                loss: 0.15,
                delay_prob: 0.15,
                crash_prob: 0.03,
                churn: true,
                session_mean: 8.0,
                readmission: true,
                suspect_ttl: 5,
                hys_window: 2,
                hys_required: 2,
                aggregation: 2,
                trim: 0.25,
                ticks: 16,
                ..base()
            },
        ),
    ];
    for cheat in 1..=3u8 {
        m.push(("cheating reporters", ScenarioSpec { agents: 4, cheat, ..base() }));
    }
    for lists in 1..=3u8 {
        m.push(("lying announcers", ScenarioSpec { agents: 4, lists, pad_extra: 5, ..base() }));
    }
    for (aggregation, trim) in [(1u8, 0.0), (2, 0.2), (2, 0.45)] {
        m.push((
            "robust aggregation",
            ScenarioSpec { agents: 4, cheat: 1, aggregation, trim, ..base() },
        ));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_exactly() {
        for fuzz_seed in 0..50 {
            let spec = ScenarioSpec::random(fuzz_seed);
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json).expect("own output parses");
            assert_eq!(back, spec, "roundtrip drift for fuzz seed {fuzz_seed}:\n{json}");
        }
    }

    #[test]
    fn json_roundtrips_extreme_scalars() {
        let spec = ScenarioSpec {
            seed: u64::MAX,
            suspect_ttl: u32::MAX,
            loss: 0.1 + 0.2, // not exactly 0.3; must survive the round trip
            ..ScenarioSpec::default()
        };
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.loss.to_bits(), spec.loss.to_bits());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(ScenarioSpec::from_json("{\"peerz\": 10}").is_err());
        assert!(ScenarioSpec::from_json("nonsense").is_err());
    }

    #[test]
    fn random_specs_are_deterministic_and_varied() {
        assert_eq!(ScenarioSpec::random(7), ScenarioSpec::random(7));
        let distinct: std::collections::HashSet<String> =
            (0..50).map(|s| ScenarioSpec::random(s).to_json()).collect();
        assert!(distinct.len() >= 45, "only {} distinct specs in 50", distinct.len());
        for s in 0..50 {
            let spec = ScenarioSpec::random(s);
            assert!(!spec.force_fast_path, "honest fuzzing never forces the fast path");
            assert!(spec.sim_config().validate().is_ok(), "seed {s} generates invalid config");
        }
    }

    #[test]
    fn both_twins_receive_identical_attack_wiring() {
        let spec = ScenarioSpec { agents: 4, cheat: 1, ..ScenarioSpec::default() };
        let a = spec.instantiate(ddp_sim::NoDefense);
        let b = spec.instantiate(ddp_sim::NoDefense);
        assert_eq!(a.attackers(), b.attackers());
    }
}
