//! Lockstep differential runner: the optimized engine and the naive oracle
//! side by side, state-compared after **every** tick.
//!
//! Both twins are instantiated from the same [`ScenarioSpec`], so topology,
//! workload, attack wiring, churn, and fault dice are identical as long as
//! the two defenses take the same actions — which is exactly the property
//! under test. The first observable difference is reported as a
//! [`Divergence`] with the tick and a description of the mismatched facet;
//! the comparison stops there because the twins' RNG streams split the
//! moment their actions differ.

use crate::model::OracleDdPolice;
use crate::spec::ScenarioSpec;
use ddp_police::DdPolice;
use ddp_sim::{Simulation, Tick};
use ddp_topology::NodeId;

/// The first observable difference between the engine and the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Tick at which the twins first disagreed.
    pub tick: Tick,
    /// Human-readable description of the mismatched facet.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tick {}: {}", self.tick, self.what)
    }
}

/// Success statistics, for fuzz-run reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockstepStats {
    /// Ticks executed in lockstep.
    pub ticks: u32,
    /// `(g, s)` judgments compared (1-ulp).
    pub judgments: usize,
    /// Defensive cuts both twins agreed on.
    pub cuts: usize,
}

/// `a` and `b` equal within 1 unit in the last place. `±0` compare equal;
/// NaNs only match NaNs (a NaN disagreement is a real divergence).
fn ulp_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
    if (ia < 0) != (ib < 0) {
        return false;
    }
    ia.abs_diff(ib) <= 1
}

/// Sorted undirected edge list of a simulation's overlay.
fn edge_set<D: ddp_sim::Defense>(sim: &Simulation<D>) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = sim
        .overlay()
        .graph()
        .edges()
        .map(|(u, v)| if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) })
        .collect();
    edges.sort_unstable();
    edges
}

/// Run `spec` on the engine and the oracle in lockstep, comparing all
/// observable defense state after every tick. `Err` carries the first
/// divergence found.
pub fn run_lockstep(spec: &ScenarioSpec) -> Result<LockstepStats, Divergence> {
    let mut engine = spec.instantiate(DdPolice::new(spec.police_config(), spec.peers));
    engine.defense_mut().set_tracing(true);
    engine.defense_mut().set_force_fast_path(spec.force_fast_path);
    let mut oracle = spec.instantiate(OracleDdPolice::new(spec.police_config()));

    let mut stats = LockstepStats::default();
    for _ in 0..spec.ticks {
        engine.step();
        oracle.step();
        stats.ticks += 1;
        stats.judgments += compare_tick(&mut engine, &mut oracle)?;
    }
    stats.cuts = engine.cut_log().len();
    Ok(stats)
}

/// Run `spec` on two copies of the optimized engine — one serial, one
/// sharded over `threads` worker threads — and compare them tick for tick:
/// the per-tick state hash (FNV-1a over the complete snapshot payload, so
/// every serialized byte of overlay, workload, defense, metrics, and RNG
/// state is covered), the drained judgment traces (bit-exact, not 1-ulp:
/// same engine on both sides), and the final run results.
///
/// `sabotage_reduction` flips the parallel twin's unordered-reduction lever
/// (see `DdPolice::set_unordered_reduction`): the mutation check proving
/// this suite detects a real reduction-order race. No-op at `threads <= 1`.
pub fn run_parallel_lockstep(
    spec: &ScenarioSpec,
    threads: usize,
    sabotage_reduction: bool,
) -> Result<LockstepStats, Divergence> {
    let build = || {
        let mut sim = spec.instantiate(DdPolice::new(spec.police_config(), spec.peers));
        sim.defense_mut().set_tracing(true);
        sim.defense_mut().set_force_fast_path(spec.force_fast_path);
        sim.enable_hash_trace();
        sim
    };
    let mut serial = build();
    let mut parallel = build();
    parallel.set_threads(threads);
    parallel.defense_mut().set_unordered_reduction(sabotage_reduction);

    let mut stats = LockstepStats::default();
    for _ in 0..spec.ticks {
        serial.step();
        parallel.step();
        stats.ticks += 1;
        let tick = serial.tick();
        let diverged = |what: String| Divergence { tick, what };
        let (hs, hp) = (serial.state_hash(), parallel.state_hash());
        if hs != hp {
            return Err(diverged(format!(
                "state hash differs at {threads} threads: serial {hs:#018x} vs parallel {hp:#018x}"
            )));
        }
        let serial_trace = serial.defense_mut().take_trace();
        let parallel_trace = parallel.defense_mut().take_trace();
        if serial_trace != parallel_trace {
            return Err(diverged(format!(
                "judgment traces differ at {threads} threads: serial {} vs parallel {} entries",
                serial_trace.len(),
                parallel_trace.len()
            )));
        }
        stats.judgments += serial_trace.len();
    }
    if serial.hash_trace() != parallel.hash_trace() {
        return Err(Divergence {
            tick: serial.tick(),
            what: "recorded hash series differ despite per-tick equality".into(),
        });
    }
    stats.cuts = serial.cut_log().len();
    let (a, b) = (serial.finish(), parallel.finish());
    if a.summary != b.summary || a.series != b.series || a.cut_log != b.cut_log {
        return Err(Divergence {
            tick: spec.ticks,
            what: format!(
                "final results differ at {threads} threads: serial {:?} vs parallel {:?}",
                a.summary, b.summary
            ),
        });
    }
    Ok(stats)
}

/// Like [`run_lockstep`], but the engine twin is torn down mid-run: at the
/// start of tick `snapshot_tick + 1` it is serialized, a **fresh** engine is
/// built from the spec and restored from those bytes, and the lockstep
/// continues on the replacement. The oracle never notices — any state the
/// snapshot fails to carry (RNG positions, mailboxes, verdict clocks,
/// exchange views, quantile estimators) surfaces as an ordinary
/// [`Divergence`] on the very next compared tick. A snapshot/restore failure
/// is reported as a divergence at the snapshot tick.
pub fn run_lockstep_with_restore(
    spec: &ScenarioSpec,
    snapshot_tick: Tick,
) -> Result<LockstepStats, Divergence> {
    let build_engine = || {
        let mut e = spec.instantiate(DdPolice::new(spec.police_config(), spec.peers));
        e.defense_mut().set_tracing(true);
        e.defense_mut().set_force_fast_path(spec.force_fast_path);
        e
    };
    let mut engine = build_engine();
    let mut oracle = spec.instantiate(OracleDdPolice::new(spec.police_config()));

    let mut stats = LockstepStats::default();
    for _ in 0..spec.ticks {
        if engine.tick() == snapshot_tick {
            let snap = |what: String| Divergence { tick: snapshot_tick, what };
            let bytes =
                engine.save_snapshot().map_err(|e| snap(format!("snapshot save failed: {e}")))?;
            let mut fresh = build_engine();
            fresh
                .restore_snapshot(&bytes)
                .map_err(|e| snap(format!("snapshot restore failed: {e}")))?;
            engine = fresh;
        }
        engine.step();
        oracle.step();
        stats.ticks += 1;
        stats.judgments += compare_tick(&mut engine, &mut oracle)?;
    }
    stats.cuts = engine.cut_log().len();
    Ok(stats)
}

/// One post-tick comparison sweep. Returns the number of judgments checked.
fn compare_tick(
    engine: &mut Simulation<DdPolice>,
    oracle: &mut Simulation<OracleDdPolice>,
) -> Result<usize, Divergence> {
    let tick = engine.tick();
    let diverged = |what: String| Divergence { tick, what };

    if oracle.tick() != tick {
        return Err(diverged(format!("tick counters differ: oracle at {}", oracle.tick())));
    }

    // Judgment traces: the tentpole's 1-ulp indicator equivalence.
    let engine_trace = engine.defense_mut().take_trace();
    let oracle_trace = oracle.defense_mut().take_trace();
    if engine_trace.len() != oracle_trace.len() {
        return Err(diverged(format!(
            "judgment counts differ: engine {} vs oracle {} (engine {:?} / oracle {:?})",
            engine_trace.len(),
            oracle_trace.len(),
            engine_trace.iter().map(|t| (t.observer.0, t.suspect.0)).collect::<Vec<_>>(),
            oracle_trace.iter().map(|t| (t.observer.0, t.suspect.0)).collect::<Vec<_>>(),
        )));
    }
    for (e, o) in engine_trace.iter().zip(&oracle_trace) {
        if (e.tick, e.observer, e.suspect) != (o.tick, o.observer, o.suspect) {
            return Err(diverged(format!("judgment order differs: engine {e:?} vs oracle {o:?}")));
        }
        if !ulp_eq(e.g, o.g) || !ulp_eq(e.s, o.s) {
            return Err(diverged(format!(
                "indicators differ for observer {} judging {}: engine g={:?} s={:?} vs oracle g={:?} s={:?}",
                e.observer.0, e.suspect.0, e.g, e.s, o.g, o.s
            )));
        }
    }

    // Population and membership.
    let n = engine.node_count();
    if oracle.node_count() != n {
        return Err(diverged(format!(
            "node counts differ: engine {n} vs oracle {}",
            oracle.node_count()
        )));
    }
    for i in 0..n {
        let node = NodeId::from_index(i);
        if engine.is_online(node) != oracle.is_online(node) {
            return Err(diverged(format!(
                "online flag differs for node {i}: engine {} vs oracle {}",
                engine.is_online(node),
                oracle.is_online(node)
            )));
        }
    }

    // Overlay structure (cuts, churn rewires, probes — all defense-driven).
    let engine_edges = edge_set(engine);
    let oracle_edges = edge_set(oracle);
    if engine_edges != oracle_edges {
        let only_e: Vec<_> = engine_edges.iter().filter(|e| !oracle_edges.contains(e)).collect();
        let only_o: Vec<_> = oracle_edges.iter().filter(|e| !engine_edges.contains(e)).collect();
        return Err(diverged(format!(
            "edge sets differ: engine-only {only_e:?}, oracle-only {only_o:?}"
        )));
    }

    // Verdict lifecycle state, per observer, in the engine's vocabulary.
    for i in 0..n {
        let node = NodeId::from_index(i);
        let engine_entries = engine.defense().verdicts().entries_of(node);
        let oracle_entries = oracle.defense().entries_of(node);
        if engine_entries != oracle_entries {
            return Err(diverged(format!(
                "verdict entries differ for observer {i}: engine {engine_entries:?} vs oracle {oracle_entries:?}"
            )));
        }
    }

    // Exchange views.
    let engine_snaps: Vec<(u32, u32, Vec<NodeId>, Tick)> = engine
        .defense()
        .exchange()
        .all_snapshots()
        .into_iter()
        .map(|(i, j, s)| (i, j, s.members.clone(), s.taken_at))
        .collect();
    let oracle_snaps = oracle.defense().snapshots_canonical();
    if engine_snaps != oracle_snaps {
        let describe = |snaps: &[(u32, u32, Vec<NodeId>, Tick)]| -> Vec<(u32, u32, usize, Tick)> {
            snaps.iter().map(|(i, j, m, t)| (*i, *j, m.len(), *t)).collect()
        };
        return Err(diverged(format!(
            "exchange views differ: engine {:?} vs oracle {:?}",
            describe(&engine_snaps),
            describe(&oracle_snaps)
        )));
    }

    // Action ledgers.
    if engine.cut_log() != oracle.cut_log() {
        return Err(diverged(format!(
            "cut logs differ: engine {:?} vs oracle {:?}",
            engine.cut_log(),
            oracle.cut_log()
        )));
    }
    if engine.verdict_log() != oracle.verdict_log() {
        let engine_tail: Vec<_> = engine.verdict_log().iter().rev().take(6).collect();
        let oracle_tail: Vec<_> = oracle.verdict_log().iter().rev().take(6).collect();
        return Err(diverged(format!(
            "verdict ledgers differ: engine tail {engine_tail:?} vs oracle tail {oracle_tail:?}"
        )));
    }
    if engine.whitewash_log() != oracle.whitewash_log() {
        return Err(diverged(format!(
            "whitewash logs differ: engine {:?} vs oracle {:?}",
            engine.whitewash_log(),
            oracle.whitewash_log()
        )));
    }
    if engine.session_stats() != oracle.session_stats() {
        return Err(diverged(format!(
            "session stats differ: engine {:?} vs oracle {:?}",
            engine.session_stats(),
            oracle.session_stats()
        )));
    }

    // Output series, bit-for-bit (to_bits: NaN-safe, ±0-strict — an honest
    // superset of the 1-ulp indicator comparison because every series value
    // is either a count or a deterministic function of identical state).
    let series = [
        ("success_rate", &engine.series().success_rate, &oracle.series().success_rate),
        ("response_time", &engine.series().response_time, &oracle.series().response_time),
        ("traffic", &engine.series().traffic, &oracle.series().traffic),
        ("control_traffic", &engine.series().control_traffic, &oracle.series().control_traffic),
        ("drop_rate", &engine.series().drop_rate, &oracle.series().drop_rate),
    ];
    for (name, e, o) in series {
        if e.values.len() != o.values.len() {
            return Err(diverged(format!(
                "series {name} lengths differ: engine {} vs oracle {}",
                e.values.len(),
                o.values.len()
            )));
        }
        for (idx, (a, b)) in e.values.iter().zip(&o.values).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(diverged(format!(
                    "series {name}[{idx}] differs: engine {a:?} vs oracle {b:?}"
                )));
            }
        }
    }

    Ok(engine_trace.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_comparison_semantics() {
        assert!(ulp_eq(1.0, 1.0));
        assert!(ulp_eq(0.0, -0.0));
        assert!(ulp_eq(1.0, f64::from_bits(1.0f64.to_bits() + 1)));
        assert!(!ulp_eq(1.0, f64::from_bits(1.0f64.to_bits() + 2)));
        assert!(!ulp_eq(1e-300, -1e-300), "sign flip is never 1 ulp");
        assert!(ulp_eq(f64::NAN, f64::NAN));
        assert!(!ulp_eq(f64::NAN, 0.0));
    }

    #[test]
    fn default_scenario_runs_clean() {
        let spec = ScenarioSpec::default();
        let stats = run_lockstep(&spec).unwrap_or_else(|d| panic!("diverged: {d}"));
        assert_eq!(stats.ticks, spec.ticks);
        assert!(stats.judgments > 0, "a flooded overlay must produce judgments");
    }

    /// The nastiest spec the snapshot has to survive: faulty control plane
    /// (in-flight mail), churn + whitewashing (free lists, dwell counters,
    /// grown slots), readmission + TTL sweep (verdict clocks), and hysteresis
    /// (Watching histories) — all live at once.
    fn adversarial_spec() -> ScenarioSpec {
        ScenarioSpec {
            peers: 60,
            ticks: 14,
            seed: 7,
            agents: 5,
            loss: 0.1,
            delay_prob: 0.2,
            delay_ticks: 2,
            crash_prob: 0.02,
            churn: true,
            whitewash_dwell: 2,
            whitewash_quiet: 1,
            hys_required: 2,
            hys_window: 3,
            readmission: true,
            suspect_ttl: 6,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn restore_mid_lockstep_is_invisible_to_the_oracle() {
        let spec = adversarial_spec();
        // The reference run must be clean before the restore variant means
        // anything.
        run_lockstep(&spec).unwrap_or_else(|d| panic!("reference diverged: {d}"));
        // Adversarially chosen boundary: tick 5 sits after the first cuts
        // and whitewash dwells begin but before readmission probes fire, so
        // every clock is mid-flight. Sweep a few neighbors of it too.
        for snapshot_tick in [1, 5, spec.ticks - 1] {
            let stats = run_lockstep_with_restore(&spec, snapshot_tick)
                .unwrap_or_else(|d| panic!("diverged after restore at {snapshot_tick}: {d}"));
            assert_eq!(stats.ticks, spec.ticks);
        }
    }
}
