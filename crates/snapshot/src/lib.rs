//! Crash-safe snapshot container and codec for the DD-POLICE engine.
//!
//! Every stateful crate in the workspace implements [`Snapshottable`] for its
//! persistent types; this crate owns the three things they all share:
//!
//! * a tiny little-endian byte codec ([`Enc`] / [`Dec`]) whose decoder is
//!   fully bounds-checked and **never panics** — corrupt input surfaces as a
//!   typed [`SnapshotError`];
//! * a versioned, checksummed container format (magic + format version +
//!   context fingerprint + length-prefixed payload + FNV-1a-64 checksum) so
//!   truncated, bit-flipped, foreign, or configuration-mismatched files are
//!   rejected before a single payload byte is interpreted;
//! * crash-safe file I/O: [`write_snapshot`] stages into a temp file in the
//!   same directory, `fsync`s, then atomically renames over the target, so a
//!   `kill -9` mid-write leaves either the old checkpoint or the new one —
//!   never a torn file.
//!
//! The contract the differential oracle enforces: restoring a snapshot and
//! running to the end must be tick-for-tick *byte-identical* to the
//! uninterrupted run. The codec therefore has no canonicalization freedom —
//! implementors serialize observable state verbatim (adjacency slot order,
//! RNG stream words) and rebuild only state that is provably dead at a tick
//! boundary.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Leading magic of every snapshot file.
pub const MAGIC: [u8; 8] = *b"DDPSNAP1";

/// Current container format version. Bump on any payload layout change —
/// old files are rejected with [`SnapshotError::BadVersion`], never
/// misinterpreted.
pub const FORMAT_VERSION: u32 = 1;

/// Container header length: magic + version + context + payload length.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;
/// Trailing checksum length.
const CHECKSUM_LEN: usize = 8;

/// Why a snapshot could not be written, read, or decoded. Every file-level
/// variant names the offending path; decode-level variants name the field
/// that failed so fuzz reproducers point at the exact layout mismatch.
#[derive(Debug)]
pub enum SnapshotError {
    /// OS-level I/O failure on `path` during `op` (open/read/write/sync/
    /// rename/remove).
    Io {
        /// File the operation touched.
        path: PathBuf,
        /// Operation that failed.
        op: &'static str,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// The file ends before the header + declared payload + checksum do.
    Truncated {
        /// Offending file (`<memory>` for in-memory restores).
        path: PathBuf,
    },
    /// The leading bytes are not [`MAGIC`] — not a DD-POLICE snapshot.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// Written by an incompatible format version.
    BadVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// Header/payload bytes do not match the trailing checksum.
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
    },
    /// The snapshot was taken under a different engine configuration or
    /// seed; resuming it would silently diverge.
    ContextMismatch {
        /// Fingerprint this engine expects.
        expected: u64,
        /// Fingerprint stored in the snapshot.
        found: u64,
    },
    /// Payload decode ran off the end or met an impossible value at `what`.
    Corrupt {
        /// Field or structure that failed to decode.
        what: &'static str,
    },
    /// The engine holds state that cannot be checkpointed (e.g. a defense
    /// implementation without snapshot support).
    Unsupported {
        /// What lacks support.
        what: &'static str,
    },
}

impl SnapshotError {
    /// Stable variant name — the string surfaced in wire summaries and logs
    /// when a resume degrades to a cold start, so collectors can classify
    /// recovery failures without parsing the full message.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotError::Io { .. } => "Io",
            SnapshotError::Truncated { .. } => "Truncated",
            SnapshotError::BadMagic { .. } => "BadMagic",
            SnapshotError::BadVersion { .. } => "BadVersion",
            SnapshotError::ChecksumMismatch { .. } => "ChecksumMismatch",
            SnapshotError::ContextMismatch { .. } => "ContextMismatch",
            SnapshotError::Corrupt { .. } => "Corrupt",
            SnapshotError::Unsupported { .. } => "Unsupported",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, op, source } => {
                write!(f, "snapshot {op} failed for {}: {source}", path.display())
            }
            SnapshotError::Truncated { path } => {
                write!(f, "snapshot file {} is truncated", path.display())
            }
            SnapshotError::BadMagic { path } => {
                write!(f, "{} is not a DD-POLICE snapshot (bad magic)", path.display())
            }
            SnapshotError::BadVersion { path, found, expected } => write!(
                f,
                "snapshot {} has format version {found}, this build expects {expected}",
                path.display()
            ),
            SnapshotError::ChecksumMismatch { path } => {
                write!(f, "snapshot {} failed its checksum (corrupt)", path.display())
            }
            SnapshotError::ContextMismatch { expected, found } => write!(
                f,
                "snapshot was taken under a different configuration \
                 (context {found:#018x}, engine expects {expected:#018x})"
            ),
            SnapshotError::Corrupt { what } => {
                write!(f, "snapshot payload is corrupt at {what}")
            }
            SnapshotError::Unsupported { what } => {
                write!(f, "snapshotting is not supported: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit hash — the container checksum and the configuration
/// fingerprint. Not cryptographic; it detects truncation and bit rot, which
/// is the threat model for a local checkpoint file.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian payload encoder. Append-only; infallible.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the encoder, yielding the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` by bit pattern — restores bit-for-bit, NaNs included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append an `f32` by bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Append a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append any [`Snapshottable`] value.
    pub fn put<T: Snapshottable>(&mut self, v: &T) {
        v.save(self);
    }
}

/// Bounds-checked little-endian payload decoder over a borrowed buffer.
/// Every read returns `Result`; running off the end is
/// [`SnapshotError::Corrupt`], never a panic.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Corrupt { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a `usize` stored as `u64`, rejecting values this platform
    /// cannot index.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt { what: "usize overflow" })
    }

    /// Read an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an `f32` by bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read a `bool`, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { what: "bool" }),
        }
    }

    /// Read a collection length and sanity-check it against the bytes left
    /// (every element of every snapshot type encodes at least one byte, so a
    /// length beyond `remaining()` is unconditionally corrupt — this bounds
    /// allocations on hostile input).
    pub fn len(&mut self, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapshotError::Corrupt { what });
        }
        Ok(n)
    }

    /// Read any [`Snapshottable`] value.
    pub fn get<T: Snapshottable>(&mut self) -> Result<T, SnapshotError> {
        T::load(self)
    }

    /// Assert the payload was consumed exactly — trailing bytes mean the
    /// reader and writer disagree about the layout.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt { what: "trailing bytes" });
        }
        Ok(())
    }
}

/// A type that can serialize itself into a snapshot payload and rebuild
/// itself from one. `load` must validate everything it reads: the
/// differential oracle guarantees a *valid* snapshot restores bit-identical
/// state, and the corruption tests guarantee an *invalid* one is a typed
/// error, not a panic.
pub trait Snapshottable: Sized {
    /// Append this value to the payload.
    fn save(&self, enc: &mut Enc);
    /// Rebuild a value from the payload.
    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! snapshot_prim {
    ($t:ty, $enc:ident, $dec:ident) => {
        impl Snapshottable for $t {
            fn save(&self, enc: &mut Enc) {
                enc.$enc(*self);
            }
            fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
                dec.$dec()
            }
        }
    };
}

snapshot_prim!(u8, u8, u8);
snapshot_prim!(u16, u16, u16);
snapshot_prim!(u32, u32, u32);
snapshot_prim!(u64, u64, u64);
snapshot_prim!(usize, usize, usize);
snapshot_prim!(f32, f32, f32);
snapshot_prim!(f64, f64, f64);
snapshot_prim!(bool, bool, bool);

impl Snapshottable for String {
    fn save(&self, enc: &mut Enc) {
        enc.usize(self.len());
        enc.buf.extend_from_slice(self.as_bytes());
    }
    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let n = dec.len("string length")?;
        let bytes = dec.take(n, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt { what: "utf8" })
    }
}

impl<T: Snapshottable> Snapshottable for Vec<T> {
    fn save(&self, enc: &mut Enc) {
        enc.usize(self.len());
        for v in self {
            v.save(enc);
        }
    }
    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let n = dec.len("vec length")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snapshottable> Snapshottable for Option<T> {
    fn save(&self, enc: &mut Enc) {
        match self {
            None => enc.u8(0),
            Some(v) => {
                enc.u8(1);
                v.save(enc);
            }
        }
    }
    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(dec)?)),
            _ => Err(SnapshotError::Corrupt { what: "option tag" }),
        }
    }
}

impl<A: Snapshottable, B: Snapshottable> Snapshottable for (A, B) {
    fn save(&self, enc: &mut Enc) {
        self.0.save(enc);
        self.1.save(enc);
    }
    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(dec)?, B::load(dec)?))
    }
}

/// Wrap a payload into the on-disk container: magic, format version,
/// context fingerprint, length-prefixed payload, FNV-1a-64 checksum over
/// everything preceding it.
pub fn encode_container(context: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&context.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validate and unwrap a container, returning `(context, payload)`. `label`
/// names the source in errors (a real path, or `<memory>` for in-memory
/// restores).
pub fn decode_container(bytes: &[u8], label: &Path) -> Result<(u64, Vec<u8>), SnapshotError> {
    let path = || label.to_path_buf();
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::Truncated { path: path() });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic { path: path() });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion {
            path: path(),
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let context = u64::from_le_bytes(bytes[12..20].try_into().expect("fixed slice"));
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("fixed slice"));
    let payload_len =
        usize::try_from(payload_len).map_err(|_| SnapshotError::Truncated { path: path() })?;
    let expected_total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
        .ok_or_else(|| SnapshotError::Truncated { path: path() })?;
    if bytes.len() < expected_total {
        return Err(SnapshotError::Truncated { path: path() });
    }
    if bytes.len() > expected_total {
        // Trailing garbage: the checksum cannot vouch for it.
        return Err(SnapshotError::ChecksumMismatch { path: path() });
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("fixed slice"));
    if fnv1a64(&bytes[..body_end]) != stored {
        return Err(SnapshotError::ChecksumMismatch { path: path() });
    }
    Ok((context, bytes[HEADER_LEN..body_end].to_vec()))
}

/// Crash-safe write: stage the container into `<file>.tmp` in the target's
/// directory, `fsync`, then atomically rename over `path`. A `kill -9` at
/// any point leaves either the previous file or the complete new one.
pub fn write_snapshot(path: &Path, context: u64, payload: &[u8]) -> Result<(), SnapshotError> {
    let bytes = encode_container(context, payload);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = fs::File::create(&tmp).map_err(|source| SnapshotError::Io {
        path: tmp.clone(),
        op: "create",
        source,
    })?;
    f.write_all(&bytes).map_err(|source| SnapshotError::Io {
        path: tmp.clone(),
        op: "write",
        source,
    })?;
    f.sync_all().map_err(|source| SnapshotError::Io { path: tmp.clone(), op: "sync", source })?;
    drop(f);
    fs::rename(&tmp, path).map_err(|source| SnapshotError::Io {
        path: path.to_path_buf(),
        op: "rename",
        source,
    })
}

/// Read and validate a snapshot file, returning `(context, payload)`.
pub fn read_snapshot(path: &Path) -> Result<(u64, Vec<u8>), SnapshotError> {
    let bytes = fs::read(path).map_err(|source| SnapshotError::Io {
        path: path.to_path_buf(),
        op: "read",
        source,
    })?;
    decode_container(&bytes, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_path(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ddpsnap-test-{}-{seq}-{name}", std::process::id()))
    }

    #[test]
    fn primitive_roundtrip_is_exact() {
        let mut enc = Enc::new();
        enc.put(&0xdeadu16);
        enc.put(&u32::MAX);
        enc.put(&123_456_789_012_345u64);
        enc.put(&true);
        enc.put(&f64::NEG_INFINITY);
        enc.put(&(-0.0f64));
        enc.put(&f32::NAN);
        enc.put(&String::from("héllo"));
        enc.put(&vec![1u32, 2, 3]);
        enc.put(&Option::<u8>::None);
        enc.put(&Some(7u8));
        enc.put(&(3u32, 4u64));
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.get::<u16>().unwrap(), 0xdead);
        assert_eq!(dec.get::<u32>().unwrap(), u32::MAX);
        assert_eq!(dec.get::<u64>().unwrap(), 123_456_789_012_345);
        assert!(dec.get::<bool>().unwrap());
        assert_eq!(dec.get::<f64>().unwrap(), f64::NEG_INFINITY);
        assert_eq!(dec.get::<f64>().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.get::<f32>().unwrap().is_nan());
        assert_eq!(dec.get::<String>().unwrap(), "héllo");
        assert_eq!(dec.get::<Vec<u32>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.get::<Option<u8>>().unwrap(), None);
        assert_eq!(dec.get::<Option<u8>>().unwrap(), Some(7));
        assert_eq!(dec.get::<(u32, u64)>().unwrap(), (3, 4));
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_garbage_without_panicking() {
        // Any prefix of random bytes must decode to Err, never panic.
        let junk: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect();
        for cut in 0..junk.len() {
            let mut dec = Dec::new(&junk[..cut]);
            // Vec of vecs exercises nested length handling.
            let _ = dec.get::<Vec<Vec<u64>>>();
            let _ = dec.get::<String>();
            let _ = dec.get::<bool>();
        }
        // A length prefix far beyond the buffer is corrupt, not an OOM.
        let mut enc = Enc::new();
        enc.u64(u64::MAX);
        let bytes = enc.into_bytes();
        assert!(matches!(Dec::new(&bytes).get::<Vec<u8>>(), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn container_roundtrip() {
        let payload = b"engine state goes here".to_vec();
        let bytes = encode_container(0xabcd, &payload);
        let (ctx, got) = decode_container(&bytes, Path::new("<memory>")).unwrap();
        assert_eq!(ctx, 0xabcd);
        assert_eq!(got, payload);
    }

    #[test]
    fn container_rejects_truncation_bitflips_and_foreign_files() {
        let bytes = encode_container(7, b"payload");
        for cut in 0..bytes.len() {
            let err = decode_container(&bytes[..cut], Path::new("t")).unwrap_err();
            assert!(matches!(err, SnapshotError::Truncated { .. }), "cut at {cut} gave {err:?}");
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_container(&bad, Path::new("t")).is_err(),
                "bit flip at {i} must be rejected"
            );
        }
        let mut foreign = bytes.clone();
        foreign[..8].copy_from_slice(b"NOTASNAP");
        assert!(matches!(
            decode_container(&foreign, Path::new("t")),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut newer = bytes.clone();
        newer[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_container(&newer, Path::new("t")),
            Err(SnapshotError::BadVersion { found: 99, .. })
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_container(&padded, Path::new("t")).is_err());
    }

    #[test]
    fn file_roundtrip_is_atomic_and_validated() {
        let path = scratch_path("roundtrip.snap");
        write_snapshot(&path, 42, b"hello").unwrap();
        // No staging residue.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists(), "tmp file must be renamed away");
        let (ctx, payload) = read_snapshot(&path).unwrap();
        assert_eq!((ctx, payload.as_slice()), (42, &b"hello"[..]));
        // Overwrite goes through the same atomic path.
        write_snapshot(&path, 43, b"world").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().0, 43);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_typed_io_error_naming_the_path() {
        let path = scratch_path("never-written.snap");
        match read_snapshot(&path) {
            Err(SnapshotError::Io { path: p, op: "read", .. }) => assert_eq!(p, path),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_on_disk_is_rejected() {
        let path = scratch_path("truncated.snap");
        write_snapshot(&path, 1, &[9u8; 100]).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(read_snapshot(&path), Err(SnapshotError::Truncated { .. })));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
