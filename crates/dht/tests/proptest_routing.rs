//! Property-based tests of the DHT ring and greedy routing.

use ddp_dht::{Key, Ring, Router};
use ddp_topology::NodeId;
use proptest::prelude::*;

fn distinct_nodes() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0u32..500, 2..64)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

fn route_env(ids: &[u32], cap: u32) -> (Ring, Vec<u32>, Vec<u32>, Vec<u64>, Vec<u64>) {
    let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
    let max = ids.iter().copied().max().unwrap_or(0) as usize + 1;
    let ring = Ring::build(&nodes, max);
    (ring, vec![0; max], vec![cap; max], vec![0; max], vec![0; max])
}

proptest! {
    /// Every lookup from every live origin resolves when capacity is ample,
    /// within a logarithmic hop bound.
    #[test]
    fn lookups_always_resolve_with_ample_capacity(
        ids in distinct_nodes(),
        key_seed in any::<u64>(),
        origin_pick in any::<prop::sample::Index>(),
    ) {
        let (ring, mut used, cap, mut sent, mut recv) = route_env(&ids, u32::MAX);
        let origin = NodeId(ids[origin_pick.index(ids.len())]);
        let key = Key::from_object(key_seed);
        let mut router = Router {
            ring: &ring,
            node_used: &mut used,
            capacity: &cap,
            sent: &mut sent,
            received: &mut recv,
            hop_latency_secs: 0.05,
            max_hops: 128,
        };
        let out = router.route(origin, key, 1);
        prop_assert!(out.resolved, "lookup failed on a healthy ring");
        // Greedy finger routing: generous log bound.
        let bound = 4 * (64 - (ids.len() as u64).leading_zeros()) + 4;
        prop_assert!(out.hops <= bound, "hops {} > bound {bound}", out.hops);
    }

    /// The resolved owner is exactly the key's clockwise successor.
    #[test]
    fn responsibility_matches_sorted_order(
        ids in distinct_nodes(),
        key_seed in any::<u64>(),
    ) {
        let (ring, ..) = route_env(&ids, 1);
        let key = Key::from_object(key_seed);
        let owner = ring.responsible_for(key).unwrap();
        // Check against a brute-force scan.
        let brute = ids
            .iter()
            .map(|&i| (Key::from_node_index(i), NodeId(i)))
            .min_by_key(|&(k, _)| key.distance_to(k))
            .unwrap()
            .1;
        prop_assert_eq!(owner, brute);
    }

    /// Ring invariants: sorted member keys, full successor cycle, every
    /// finger points at a live member.
    #[test]
    fn ring_structural_invariants(ids in distinct_nodes()) {
        let (ring, ..) = route_env(&ids, 1);
        let ms = ring.members();
        prop_assert_eq!(ms.len(), ids.len());
        for w in ms.windows(2) {
            prop_assert!(w[0].key < w[1].key);
        }
        let live: std::collections::HashSet<u32> = ids.iter().copied().collect();
        for m in ms {
            prop_assert!(live.contains(&m.successor.0));
            for f in &m.fingers {
                prop_assert!(live.contains(&f.0), "finger {} not live", f);
            }
        }
    }

    /// Counters: each hop moves the surviving copies once — total sent
    /// equals total received, and both equal hops when capacity is ample.
    #[test]
    fn counter_conservation(
        ids in distinct_nodes(),
        key_seed in any::<u64>(),
        count in 1u32..1_000,
    ) {
        let (ring, mut used, cap, mut sent, mut recv) = route_env(&ids, u32::MAX);
        let origin = NodeId(ids[0]);
        let key = Key::from_object(key_seed);
        let mut router = Router {
            ring: &ring,
            node_used: &mut used,
            capacity: &cap,
            sent: &mut sent,
            received: &mut recv,
            hop_latency_secs: 0.05,
            max_hops: 128,
        };
        let out = router.route(origin, key, count);
        let total_sent: u64 = sent.iter().sum();
        let total_recv: u64 = recv.iter().sum();
        prop_assert_eq!(total_sent, total_recv);
        prop_assert_eq!(total_sent, out.hops as u64 * count as u64);
    }
}
