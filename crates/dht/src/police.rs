//! Origination detection on the structured overlay.
//!
//! On a unicast DHT the DD-POLICE ambiguity largely disappears: every lookup
//! a node forwards was first *received* by it, so the per-node difference
//! `sent − received` measures origination directly — no Buddy Group needed.
//! (On the flooding overlay the same difference is useless because one
//! received query becomes `degree − 1` sent copies.)

use ddp_topology::NodeId;

/// Per-tick origination detector for the DHT.
#[derive(Debug, Clone)]
pub struct DhtPolice {
    /// Origination threshold, lookups/min (analogous to `CT × q`).
    pub origination_threshold: u64,
}

impl Default for DhtPolice {
    fn default() -> Self {
        // CT(5) x q(100) — same operating point as the flooding defense.
        DhtPolice { origination_threshold: 500 }
    }
}

impl DhtPolice {
    /// Inspect one tick's counters and return the peers judged to be
    /// flooding originators.
    pub fn detect(&self, sent: &[u64], received: &[u64], online: &[bool]) -> Vec<NodeId> {
        let mut bad = Vec::new();
        for i in 0..sent.len() {
            if !online[i] {
                continue;
            }
            let originated = sent[i].saturating_sub(received[i]);
            if originated > self.origination_threshold {
                bad.push(NodeId::from_index(i));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarders_are_never_flagged() {
        // A pure forwarder has sent == received.
        let sent = vec![50_000u64, 10, 0];
        let received = vec![50_000u64, 10, 0];
        let online = vec![true; 3];
        assert!(DhtPolice::default().detect(&sent, &received, &online).is_empty());
    }

    #[test]
    fn originators_are_flagged() {
        let sent = vec![20_000u64, 700, 40];
        let received = vec![100u64, 650, 35];
        let online = vec![true; 3];
        let bad = DhtPolice::default().detect(&sent, &received, &online);
        assert_eq!(bad, vec![NodeId(0)]); // 19,900 > 500; 50 and 5 are not
    }

    #[test]
    fn offline_nodes_are_skipped() {
        let sent = vec![20_000u64];
        let received = vec![0u64];
        let online = vec![false];
        assert!(DhtPolice::default().detect(&sent, &received, &online).is_empty());
    }

    #[test]
    fn normal_issue_rates_stay_under_threshold() {
        // A good peer issues <= 10 lookups/min: far below 500.
        let sent = vec![400u64 + 10];
        let received = vec![400u64];
        let online = vec![true];
        assert!(DhtPolice::default().detect(&sent, &received, &online).is_empty());
    }
}
