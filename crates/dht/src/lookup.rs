//! Greedy finger routing with per-node capacity budgets.

use crate::id::Key;
use crate::ring::Ring;
use ddp_topology::NodeId;

/// Result of routing one lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupOutcome {
    /// Whether the lookup reached the key's responsible node.
    pub resolved: bool,
    /// Overlay hops taken (0 when the origin is responsible itself).
    pub hops: u32,
    /// One-way delay accumulated, seconds.
    pub delay_secs: f64,
}

/// The router: carries the per-tick budgets and counters shared with the
/// simulation.
pub struct Router<'a> {
    pub ring: &'a Ring,
    /// Per-node processed-lookup budget for this tick.
    pub node_used: &'a mut [u32],
    /// Per-node capacity, lookups/min.
    pub capacity: &'a [u32],
    /// Per-node counters: lookups sent (forwarded or issued) this tick.
    pub sent: &'a mut [u64],
    /// Per-node counters: lookups received this tick.
    pub received: &'a mut [u64],
    /// One-way per-hop latency, seconds.
    pub hop_latency_secs: f64,
    /// Safety bound on path length.
    pub max_hops: u32,
}

impl Router<'_> {
    /// Route `count` identical lookups for `key` from `origin`.
    ///
    /// All `count` copies take the same greedy path; intermediate nodes
    /// process up to their remaining budget and drop the rest, so the
    /// returned outcome reports how many *would* resolve via `resolved`
    /// (true iff at least one copy reached the owner). The counters see the
    /// surviving copies at each hop.
    pub fn route(&mut self, origin: NodeId, key: Key, count: u32) -> LookupOutcome {
        let mut outcome = LookupOutcome { resolved: false, hops: 0, delay_secs: 0.0 };
        let Some(owner) = self.ring.responsible_for(key) else { return outcome };
        let mut at = origin;
        let mut alive = count;
        if self.ring.member(at).is_none() {
            return outcome;
        }
        while at != owner {
            if outcome.hops >= self.max_hops || alive == 0 {
                return outcome;
            }
            let Some(member) = self.ring.member(at) else { return outcome };
            // Greedy step: the finger closest to (but not past) the key;
            // fall back to the successor, which always makes progress.
            let mut next = member.successor;
            let mut best = Key::from_node_index(next.0).distance_to(key);
            for &f in &member.fingers {
                let fk = Key::from_node_index(f.0);
                if fk.in_arc(member.key, key) {
                    let d = fk.distance_to(key);
                    if d < best {
                        best = d;
                        next = f;
                    }
                }
            }
            // Transmit to `next`: the receiver processes up to its budget.
            self.sent[at.index()] += alive as u64;
            self.received[next.index()] += alive as u64;
            let room = self.capacity[next.index()].saturating_sub(self.node_used[next.index()]);
            let processed = alive.min(room);
            self.node_used[next.index()] += processed;
            alive = processed;
            at = next;
            outcome.hops += 1;
            outcome.delay_secs += self.hop_latency_secs;
        }
        outcome.resolved = alive > 0;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fix {
        ring: Ring,
        node_used: Vec<u32>,
        capacity: Vec<u32>,
        sent: Vec<u64>,
        received: Vec<u64>,
    }

    fn fix(n: u32, cap: u32) -> Fix {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        Fix {
            ring: Ring::build(&nodes, n as usize),
            node_used: vec![0; n as usize],
            capacity: vec![cap; n as usize],
            sent: vec![0; n as usize],
            received: vec![0; n as usize],
        }
    }

    fn router(f: &mut Fix) -> Router<'_> {
        Router {
            ring: &f.ring,
            node_used: &mut f.node_used,
            capacity: &f.capacity,
            sent: &mut f.sent,
            received: &mut f.received,
            hop_latency_secs: 0.05,
            max_hops: 40,
        }
    }

    #[test]
    fn lookups_resolve_in_logarithmic_hops() {
        let mut f = fix(512, 1_000_000);
        let mut total_hops = 0u32;
        let trials = 200;
        for t in 0..trials {
            let key = Key::from_object(t as u64 * 37 + 1);
            let origin = NodeId((t * 13) % 512);
            let out = router(&mut f).route(origin, key, 1);
            assert!(out.resolved, "lookup {t} failed");
            assert!(out.hops <= 20, "hops {} too long", out.hops);
            total_hops += out.hops;
        }
        let mean = total_hops as f64 / trials as f64;
        // Chord's expected path length is ~log2(n)/2 = 4.5; greedy over a
        // compressed finger list stays in single digits.
        assert!((2.0..10.0).contains(&mean), "mean hops {mean}");
    }

    #[test]
    fn owner_lookup_is_zero_hops() {
        let mut f = fix(64, 1_000);
        let owner_key = f.ring.members()[7].key;
        let owner = f.ring.members()[7].node;
        let out = router(&mut f).route(owner, owner_key, 1);
        assert!(out.resolved);
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn saturated_nodes_drop_lookups() {
        let mut f = fix(64, 0); // zero capacity everywhere
        let key = Key::from_object(1234);
        let origin = f.ring.members()[0].node;
        let owner = f.ring.responsible_for(key).unwrap();
        if origin != owner {
            let out = router(&mut f).route(origin, key, 10);
            assert!(!out.resolved, "all copies must die at the first hop");
        }
    }

    #[test]
    fn counters_record_sent_and_received() {
        let mut f = fix(128, 1_000_000);
        let key = Key::from_object(42);
        let origin = f.ring.members()[0].node;
        let out = router(&mut f).route(origin, key, 5);
        if out.hops > 0 {
            assert_eq!(f.sent[origin.index()], 5);
            assert_eq!(f.sent.iter().sum::<u64>(), 5 * out.hops as u64);
            assert_eq!(f.received.iter().sum::<u64>(), 5 * out.hops as u64);
        }
    }

    #[test]
    fn unknown_origin_fails_cleanly() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let ring = Ring::build(&nodes, 16);
        let mut node_used = vec![0; 16];
        let capacity = vec![100; 16];
        let mut sent = vec![0; 16];
        let mut received = vec![0; 16];
        let mut r = Router {
            ring: &ring,
            node_used: &mut node_used,
            capacity: &capacity,
            sent: &mut sent,
            received: &mut received,
            hop_latency_secs: 0.05,
            max_hops: 40,
        };
        let out = r.route(NodeId(12), Key::from_object(7), 1);
        assert!(!out.resolved);
    }
}
