//! Structured-overlay (Chord-like DHT) substrate.
//!
//! The paper closes with: "Other future work includes ... studying overlay
//! DDoS in structured P2P systems \[40\]." This crate carries out that study:
//! a Chord-style ring with finger-table greedy routing, a lookup-flooding
//! attack model (including the keyspace *hotspot* variant \[40\] describes),
//! and a DD-POLICE-style origination detector adapted to unicast routing.
//!
//! The headline structural difference from the flooding overlay: a lookup
//! visits **O(log n)** nodes instead of fanning out to thousands, so the
//! per-query amplification that makes flooding overlays so fragile simply
//! is not there. The attack surface that remains is *concentration*: all
//! lookups for one key funnel through the key's successor and its
//! predecessor fingers, so a hotspot attack saturates a narrow column of
//! the ring. Detection is correspondingly easier — on unicast links the
//! "issued vs forwarded" ambiguity is resolved by in/out differencing on a
//! single node, no Buddy Group required ([`police::DhtPolice`]).

pub mod id;
pub mod lookup;
pub mod police;
pub mod ring;
pub mod sim;

pub use id::Key;
pub use lookup::{LookupOutcome, Router};
pub use police::DhtPolice;
pub use ring::Ring;
pub use sim::{DhtAttack, DhtConfig, DhtRunResult, DhtSimulation};
