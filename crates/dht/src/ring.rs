//! The ring membership and finger tables.

use crate::id::Key;
use ddp_topology::NodeId;

/// One member's routing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    pub node: NodeId,
    pub key: Key,
    /// `fingers[b]` = first live member at or after `key + 2^b`.
    pub fingers: Vec<NodeId>,
    /// Immediate clockwise successor.
    pub successor: NodeId,
}

/// The assembled ring: sorted members plus per-member finger tables.
///
/// Rebuilt from the live membership set (O(n log n)); the simulator rebuilds
/// after churn, which at the evaluated scales is far cheaper than the lookup
/// traffic itself.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// Sorted by key.
    members: Vec<Member>,
    /// `slot_of[node.index()]` = index into `members`, or `usize::MAX`.
    slot_of: Vec<usize>,
}

/// Number of finger bits maintained (64-bit ring).
pub const FINGER_BITS: u32 = 64;

impl Ring {
    /// Build the ring over the live nodes.
    pub fn build(nodes: &[NodeId], capacity_hint: usize) -> Ring {
        let mut keyed: Vec<(Key, NodeId)> =
            nodes.iter().map(|&n| (Key::from_node_index(n.0), n)).collect();
        keyed.sort_unstable();
        let n = keyed.len();
        let mut members: Vec<Member> = keyed
            .iter()
            .map(|&(key, node)| Member { node, key, fingers: Vec::new(), successor: node })
            .collect();

        // Fingers: for each member and bit, the first member at or after
        // key + 2^b (binary search over the sorted keys).
        let keys: Vec<Key> = keyed.iter().map(|&(k, _)| k).collect();
        let successor_of = |target: Key| -> usize {
            match keys.binary_search(&target) {
                Ok(i) => i,
                Err(i) => i % n.max(1),
            }
        };
        for i in 0..n {
            members[i].successor = members[(i + 1) % n].node;
            let mut fingers = Vec::with_capacity(24);
            let mut last = usize::MAX;
            for b in 0..FINGER_BITS {
                let idx = successor_of(keys[i].finger_target(b));
                if idx != last && idx != i {
                    fingers.push(members[idx].node);
                    last = idx;
                }
            }
            members[i].fingers = fingers;
        }

        let mut slot_of = vec![usize::MAX; capacity_hint];
        for (slot, m) in members.iter().enumerate() {
            let idx = m.node.index();
            if idx >= slot_of.len() {
                slot_of.resize(idx + 1, usize::MAX);
            }
            slot_of[idx] = slot;
        }
        Ring { members, slot_of }
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member state for `node`, if live.
    pub fn member(&self, node: NodeId) -> Option<&Member> {
        let slot = *self.slot_of.get(node.index())?;
        self.members.get(slot)
    }

    /// The node responsible for `key` (its clockwise successor).
    pub fn responsible_for(&self, key: Key) -> Option<NodeId> {
        if self.members.is_empty() {
            return None;
        }
        let idx = self
            .members
            .binary_search_by_key(&key, |m| m.key)
            .unwrap_or_else(|i| i % self.members.len());
        Some(self.members[idx].node)
    }

    /// All live members in ring order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> Ring {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        Ring::build(&nodes, n as usize)
    }

    #[test]
    fn members_are_sorted_and_linked() {
        let r = ring(50);
        assert_eq!(r.len(), 50);
        let ms = r.members();
        for w in ms.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        // Successor chain visits everyone exactly once.
        let mut seen = std::collections::HashSet::new();
        let mut cur = ms[0].node;
        for _ in 0..50 {
            assert!(seen.insert(cur));
            cur = r.member(cur).unwrap().successor;
        }
        assert_eq!(cur, ms[0].node, "successors form a single cycle");
    }

    #[test]
    fn responsibility_is_the_clockwise_successor() {
        let r = ring(20);
        let ms = r.members();
        // A key just past member i belongs to member i+1.
        for i in 0..ms.len() {
            let probe = Key(ms[i].key.0.wrapping_add(1));
            let owner = r.responsible_for(probe).unwrap();
            assert_eq!(owner, ms[(i + 1) % ms.len()].node);
        }
        // A member's own key belongs to itself.
        assert_eq!(r.responsible_for(ms[3].key), Some(ms[3].node));
    }

    #[test]
    fn finger_counts_are_logarithmic() {
        let r = ring(512);
        for m in r.members() {
            assert!(
                (4..=24).contains(&m.fingers.len()),
                "node {} has {} fingers",
                m.node,
                m.fingers.len()
            );
        }
    }

    #[test]
    fn missing_member_is_none() {
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let r = Ring::build(&nodes, 20);
        assert!(r.member(NodeId(15)).is_none());
        assert!(r.member(NodeId(3)).is_some());
    }

    #[test]
    fn empty_ring() {
        let r = Ring::build(&[], 0);
        assert!(r.is_empty());
        assert_eq!(r.responsible_for(Key(5)), None);
    }
}
