//! The structured-overlay simulation: tick loop, workload, attack, defense.

use crate::id::Key;
use crate::lookup::Router;
use crate::police::DhtPolice;
use crate::ring::Ring;
use ddp_metrics::summary::{RunSeries, RunSummary};
use ddp_metrics::{ResponseStats, SuccessStats};
use ddp_topology::NodeId;
use ddp_workload::arrivals::poisson;
use ddp_workload::LifetimeModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attack shape on the DHT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DhtAttack {
    /// Lookups for uniformly random keys — load spreads over the whole ring.
    Uniform,
    /// All attack lookups target keys owned by one victim region — the
    /// *hotspot* attack Naoumov & Ross (\[40\]) describe.
    Hotspot { victim_key: u64 },
}

/// Configuration of one DHT run.
#[derive(Debug, Clone)]
pub struct DhtConfig {
    /// Ring size (live peers).
    pub peers: usize,
    /// Good-peer lookup rate per minute.
    pub lookup_rate_qpm: f64,
    /// Per-node processing capacity, lookups/min.
    pub capacity_qpm: u32,
    /// Attacker emission rate, lookups/min.
    pub attacker_rate_qpm: u32,
    /// Attack shape.
    pub attack: DhtAttack,
    /// Whether the origination detector runs (isolating flagged peers).
    pub defense: Option<DhtPolice>,
    /// Churn model: `None` disables churn; otherwise session lifetimes are
    /// drawn from the model and departed slots rejoin one minute later with
    /// a fresh lifetime (the ring is rebuilt — i.e. perfect Chord
    /// stabilization between ticks).
    pub churn: Option<LifetimeModel>,
    /// One-way per-hop latency, seconds.
    pub hop_latency_secs: f64,
    /// Path-length safety bound.
    pub max_hops: u32,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            peers: 2_000,
            lookup_rate_qpm: 0.3,
            capacity_qpm: 1_000,
            attacker_rate_qpm: 20_000,
            attack: DhtAttack::Uniform,
            defense: None,
            churn: None,
            hop_latency_secs: 0.05,
            max_hops: 64,
        }
    }
}

/// Result of one DHT run.
#[derive(Debug, Clone, PartialEq)]
pub struct DhtRunResult {
    pub series: RunSeries,
    pub summary: RunSummary,
    /// Attackers isolated by the detector over the run.
    pub attackers_isolated: usize,
}

/// The structured-overlay simulation.
///
/// ```
/// use ddp_dht::{DhtConfig, DhtPolice, DhtSimulation};
///
/// let cfg = DhtConfig { peers: 300, defense: Some(DhtPolice::default()), ..DhtConfig::default() };
/// let mut sim = DhtSimulation::new(cfg, 42);
/// sim.compromise(10);
/// let result = sim.run(5);
/// assert_eq!(result.attackers_isolated, 10);
/// ```
pub struct DhtSimulation {
    cfg: DhtConfig,
    ring: Ring,
    online: Vec<bool>,
    is_attacker: Vec<bool>,
    /// Remaining session minutes (good peers under churn).
    lifetime_left: Vec<u32>,
    /// Tick at which an offline slot rejoins.
    rejoin_at: Vec<u32>,
    tick: u32,
    node_used: Vec<u32>,
    capacity: Vec<u32>,
    sent: Vec<u64>,
    received: Vec<u64>,
    rng: StdRng,
    series: RunSeries,
    attackers_isolated: usize,
    good_isolated: usize,
    ring_dirty: bool,
}

impl DhtSimulation {
    /// Build a ring of `cfg.peers` live nodes.
    pub fn new(cfg: DhtConfig, seed: u64) -> Self {
        let n = cfg.peers;
        let nodes: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let mut rng_init = StdRng::seed_from_u64(seed ^ 0x11fe);
        let lifetime_left = (0..n)
            .map(|_| cfg.churn.map_or(u32::MAX, |m| m.sample_minutes(&mut rng_init)))
            .collect();
        DhtSimulation {
            ring: Ring::build(&nodes, n),
            online: vec![true; n],
            is_attacker: vec![false; n],
            lifetime_left,
            rejoin_at: vec![u32::MAX; n],
            tick: 0,
            node_used: vec![0; n],
            capacity: vec![cfg.capacity_qpm; n],
            sent: vec![0; n],
            received: vec![0; n],
            rng: StdRng::seed_from_u64(seed),
            series: RunSeries::new(),
            attackers_isolated: 0,
            good_isolated: 0,
            ring_dirty: false,
            cfg,
        }
    }

    /// Compromise `k` random peers.
    pub fn compromise(&mut self, k: usize) {
        let n = self.cfg.peers;
        let mut made = 0;
        while made < k.min(n / 2) {
            let i = self.rng.gen_range(0..n);
            if !self.is_attacker[i] {
                self.is_attacker[i] = true;
                made += 1;
            }
        }
    }

    fn rebuild_ring_if_needed(&mut self) {
        if !self.ring_dirty {
            return;
        }
        let live: Vec<NodeId> =
            (0..self.cfg.peers).filter(|&i| self.online[i]).map(NodeId::from_index).collect();
        self.ring = Ring::build(&live, self.cfg.peers);
        self.ring_dirty = false;
    }

    fn churn_step(&mut self) {
        let Some(model) = self.cfg.churn else { return };
        for i in 0..self.cfg.peers {
            if self.is_attacker[i] {
                continue; // dedicated agents do not churn
            }
            if self.online[i] {
                self.lifetime_left[i] = self.lifetime_left[i].saturating_sub(1);
                if self.lifetime_left[i] == 0 {
                    self.online[i] = false;
                    self.rejoin_at[i] = self.tick + 1;
                    self.ring_dirty = true;
                }
            } else if self.tick >= self.rejoin_at[i] && self.rejoin_at[i] != u32::MAX {
                self.online[i] = true;
                self.rejoin_at[i] = u32::MAX;
                self.lifetime_left[i] = model.sample_minutes(&mut self.rng);
                self.ring_dirty = true;
            }
        }
    }

    /// One simulated minute.
    pub fn step(&mut self) {
        self.tick += 1;
        self.churn_step();
        self.rebuild_ring_if_needed();
        self.node_used.fill(0);
        self.sent.fill(0);
        self.received.fill(0);

        let mut success = SuccessStats::default();
        let mut response = ResponseStats::default();
        let mut traffic_hops = 0u64;

        // Collect the tick's emissions, then interleave them randomly: under
        // per-node budgets the arrival order decides who gets the capacity,
        // exactly as in the flooding engine.
        enum Em {
            Attack { origin: NodeId, key: Key, count: u32 },
            Good { origin: NodeId, key: Key },
        }
        let mut emissions: Vec<Em> = Vec::new();
        for i in 0..self.cfg.peers {
            if !self.online[i] {
                continue;
            }
            let origin = NodeId::from_index(i);
            if self.is_attacker[i] {
                let key = match self.cfg.attack {
                    DhtAttack::Uniform => Key(self.rng.gen::<u64>()),
                    DhtAttack::Hotspot { victim_key } => Key(victim_key),
                };
                emissions.push(Em::Attack { origin, key, count: self.cfg.attacker_rate_qpm });
            } else {
                let k = poisson(self.cfg.lookup_rate_qpm, &mut self.rng);
                for _ in 0..k {
                    let key = Key::from_object(self.rng.gen::<u64>());
                    emissions.push(Em::Good { origin, key });
                }
            }
        }
        use rand::seq::SliceRandom;
        emissions.shuffle(&mut self.rng);
        for em in emissions {
            match em {
                Em::Attack { origin, key, count } => {
                    let out = self.router().route(origin, key, count);
                    traffic_hops += out.hops as u64 * count as u64;
                }
                Em::Good { origin, key } => {
                    success.record_issued(1);
                    let out = self.router().route(origin, key, 1);
                    traffic_hops += out.hops as u64;
                    if out.resolved {
                        success.record_success();
                        response.record(2.0 * out.delay_secs);
                    }
                }
            }
        }

        // Detection: flag heavy originators and isolate them.
        let mut control = 0u64;
        if let Some(police) = self.cfg.defense.clone() {
            let flagged = police.detect(&self.sent, &self.received, &self.online);
            control += self.ring.len() as u64; // one report message per member
            for node in flagged {
                if self.online[node.index()] {
                    self.online[node.index()] = false;
                    self.ring_dirty = true;
                    if self.is_attacker[node.index()] {
                        self.attackers_isolated += 1;
                    } else {
                        self.good_isolated += 1;
                    }
                }
            }
        }

        self.series.success_rate.push(success.rate());
        self.series.response_time.push(response.mean());
        self.series.traffic.push(traffic_hops as f64);
        self.series.control_traffic.push(control as f64);
        self.series.drop_rate.push(0.0);
    }

    fn router(&mut self) -> Router<'_> {
        Router {
            ring: &self.ring,
            node_used: &mut self.node_used,
            capacity: &self.capacity,
            sent: &mut self.sent,
            received: &mut self.received,
            hop_latency_secs: self.cfg.hop_latency_secs,
            max_hops: self.cfg.max_hops,
        }
    }

    /// Run `ticks` minutes.
    pub fn run(mut self, ticks: usize) -> DhtRunResult {
        for _ in 0..ticks {
            self.step();
        }
        let mut errors = ddp_metrics::DetectionErrors::default();
        for i in 0..self.cfg.peers {
            if self.is_attacker[i] && self.online[i] {
                errors.record_bad_peer_missed();
            }
        }
        errors.false_negative = self.good_isolated as u64;
        let summary = self.series.summarize(
            errors,
            self.attackers_isolated as u64,
            self.good_isolated as u64,
        );
        DhtRunResult { series: self.series, summary, attackers_isolated: self.attackers_isolated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(peers: usize) -> DhtConfig {
        DhtConfig { peers, ..DhtConfig::default() }
    }

    #[test]
    fn clean_ring_resolves_nearly_everything() {
        let sim = DhtSimulation::new(cfg(500), 1);
        let res = sim.run(5);
        assert!(
            res.summary.success_rate_mean > 0.95,
            "unattacked DHT success {}",
            res.summary.success_rate_mean
        );
    }

    #[test]
    fn uniform_attack_degrades_much_less_than_flooding() {
        // The key structural claim: the same 5% attacker density that
        // collapses the flooding overlay leaves the DHT largely functional,
        // because lookups have no fan-out amplification.
        let mut sim = DhtSimulation::new(cfg(500), 2);
        sim.compromise(25);
        let res = sim.run(5);
        assert!(
            res.summary.success_rate_mean > 0.35,
            "uniform DHT attack too damaging: {}",
            res.summary.success_rate_mean
        );
    }

    #[test]
    fn hotspot_concentrates_damage_but_spares_global_service() {
        // A finding worth recording: the hotspot variant chokes the victim
        // key's column of the ring, but *because* the damage concentrates
        // there, the rest of the ring keeps resolving — global success under
        // a hotspot is at least as high as under the uniform spray. The
        // uniform attack is the system-wide DoS; the hotspot is censorship
        // of one key region.
        let mut uni = DhtSimulation::new(cfg(500), 3);
        uni.compromise(25);
        let uni_res = uni.run(5);

        let mut hot = DhtSimulation::new(
            DhtConfig { attack: DhtAttack::Hotspot { victim_key: 42 }, ..cfg(500) },
            3,
        );
        hot.compromise(25);
        let hot_res = hot.run(5);
        assert!(
            hot_res.summary.success_rate_mean >= uni_res.summary.success_rate_mean - 0.02,
            "hotspot {} vs uniform {}",
            hot_res.summary.success_rate_mean,
            uni_res.summary.success_rate_mean
        );
    }

    #[test]
    fn origination_detector_isolates_attackers() {
        let mut sim =
            DhtSimulation::new(DhtConfig { defense: Some(DhtPolice::default()), ..cfg(500) }, 4);
        sim.compromise(25);
        let res = sim.run(6);
        assert_eq!(res.attackers_isolated, 25, "every agent must be flagged");
        assert_eq!(res.summary.errors.false_negative, 0, "and no good peer");
        assert!(
            res.summary.success_rate_stable > 0.9,
            "post-isolation success {}",
            res.summary.success_rate_stable
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mk = || {
            let mut s = DhtSimulation::new(cfg(300), 9);
            s.compromise(10);
            s.run(4)
        };
        assert_eq!(mk().series.success_rate, mk().series.success_rate);
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use ddp_workload::LifetimeModel;

    #[test]
    fn lookups_survive_churn() {
        let cfg = DhtConfig {
            peers: 400,
            churn: Some(LifetimeModel::Exponential { mean_min: 4.0 }),
            ..DhtConfig::default()
        };
        let res = DhtSimulation::new(cfg, 8).run(10);
        // With perfect stabilization between ticks, churn costs nothing but
        // the occasional lookup issued by a peer that just went offline.
        assert!(
            res.summary.success_rate_mean > 0.9,
            "churned DHT success {}",
            res.summary.success_rate_mean
        );
    }

    #[test]
    fn churned_runs_are_deterministic() {
        let mk = || {
            let cfg = DhtConfig {
                peers: 200,
                churn: Some(LifetimeModel::Exponential { mean_min: 3.0 }),
                ..DhtConfig::default()
            };
            DhtSimulation::new(cfg, 5).run(6)
        };
        assert_eq!(mk().series.success_rate, mk().series.success_rate);
    }

    #[test]
    fn detector_still_works_under_churn() {
        let cfg = DhtConfig {
            peers: 400,
            churn: Some(LifetimeModel::default()),
            defense: Some(DhtPolice::default()),
            ..DhtConfig::default()
        };
        let mut sim = DhtSimulation::new(cfg, 6);
        sim.compromise(20);
        let res = sim.run(8);
        assert_eq!(res.attackers_isolated, 20);
        assert_eq!(res.summary.errors.false_negative, 0);
    }
}
