//! The identifier ring.

/// A position on the 64-bit identifier ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl Key {
    /// Hash a node index onto the ring (SplitMix64 — uniform and stable).
    pub fn from_node_index(i: u32) -> Self {
        Key(mix(0x6e0d_e5ee_u64 ^ (i as u64)))
    }

    /// Hash an object id onto the ring.
    pub fn from_object(o: u64) -> Self {
        Key(mix(0x000b_1ec7 ^ o))
    }

    /// Clockwise distance from `self` to `other` (0 when equal).
    #[inline]
    pub fn distance_to(self, other: Key) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Whether `self` lies in the half-open clockwise arc `(from, to]`.
    #[inline]
    pub fn in_arc(self, from: Key, to: Key) -> bool {
        let arc = from.distance_to(to);
        let pos = from.distance_to(self);
        pos != 0 && pos <= arc || (arc == 0 && pos == 0)
    }

    /// The point `2^bit` clockwise from `self` (finger targets).
    #[inline]
    pub fn finger_target(self, bit: u32) -> Key {
        Key(self.0.wrapping_add(1u64 << bit))
    }
}

#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_clockwise_and_wraps() {
        let a = Key(10);
        let b = Key(4);
        assert_eq!(a.distance_to(b), u64::MAX - 5); // wraps the ring
        assert_eq!(b.distance_to(a), 6);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn arc_membership() {
        let from = Key(100);
        let to = Key(200);
        assert!(Key(150).in_arc(from, to));
        assert!(Key(200).in_arc(from, to), "arc is closed at `to`");
        assert!(!Key(100).in_arc(from, to), "arc is open at `from`");
        assert!(!Key(250).in_arc(from, to));
        // Wrapping arc.
        let from = Key(u64::MAX - 10);
        let to = Key(10);
        assert!(Key(5).in_arc(from, to));
        assert!(Key(u64::MAX).in_arc(from, to));
        assert!(!Key(20).in_arc(from, to));
    }

    #[test]
    fn node_hashing_spreads() {
        let a = Key::from_node_index(1);
        let b = Key::from_node_index(2);
        assert_ne!(a, b);
        // Consecutive indices should not be adjacent on the ring.
        assert!(a.distance_to(b).min(b.distance_to(a)) > 1 << 32);
    }

    #[test]
    fn finger_targets_double() {
        let k = Key(0);
        assert_eq!(k.finger_target(0), Key(1));
        assert_eq!(k.finger_target(10), Key(1024));
        assert_eq!(Key(u64::MAX).finger_target(0), Key(0), "wraps");
    }
}
