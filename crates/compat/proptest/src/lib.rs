//! Offline mini property-testing harness with a `proptest`-compatible API.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset its test suites use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range / tuple / `Just` / boxed strategies, weighted
//! [`prop_oneof!`], [`collection::vec`] and [`collection::btree_set`],
//! `any::<T>()` for primitives, byte arrays and [`sample::Index`], a tiny
//! `[class]{m,n}` regex-string strategy, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: no shrinking (failures print the full input
//! via the assertion message instead of a minimized one), and cases are
//! generated from a fixed per-test seed so runs are fully deterministic.

pub use rand;

use rand::{Rng, StdRng};

/// Strategy combinators and the core [`Strategy`](strategy::Strategy) trait.
pub mod strategy {
    use super::*;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy built from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between same-typed strategies ([`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms. Panics when empty or all
        /// weights are zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0, "empty prop_oneof");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strings from a `[class]{m,n}` regex literal (tiny supported subset).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (alphabet, lo, hi) = super::parse_class_regex(self);
            let len = rng.gen_range(lo..hi + 1);
            (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
        }
    }
}

/// Parse the supported regex subset: a single `[...]{m,n}` char-class
/// repetition (ranges and literal chars; `-` last is literal), or a literal
/// string with no metacharacters. Panics on anything else.
fn parse_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    macro_rules! unsupported {
        () => {
            panic!("unsupported regex strategy in offline proptest shim: {pattern:?}")
        };
    }
    if !pattern.starts_with('[') {
        if pattern.contains(['[', ']', '{', '}', '*', '+', '?', '|', '(', ')', '\\', '.']) {
            unsupported!();
        }
        let n = pattern.chars().count();
        return (pattern.chars().collect(), n, n);
    }
    let Some(class_end) = pattern.find(']') else { unsupported!() };
    let class = &pattern[1..class_end];
    let rest = &pattern[class_end + 1..];
    let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        unsupported!()
    };
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (l.trim().parse().unwrap(), h.trim().parse().unwrap()),
        None => {
            let n = counts.trim().parse().unwrap();
            (n, n)
        }
    };
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class: {pattern:?}");
    (alphabet, lo, hi)
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by collection strategies (upstream's
    /// `Into<SizeRange>`): an exact length, a half-open range, or an
    /// inclusive range.
    pub trait IntoSizeRange {
        /// Convert to the half-open range of permitted lengths.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, size: size.into_size_range() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Ordered sets of distinct elements drawn from `element`. When the
    /// element domain is too small to reach the drawn size, the set is as
    /// large as the domain allows (mirrors upstream's bounded retries).
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into_size_range() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 10 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Positional sampling helpers.
pub mod sample {
    use super::*;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..len`. Panics when `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl crate::arbitrary::Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen())
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// FNV-1a over the test path: a stable, distinct seed per property.
#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::sample::Index`, `prop::collection`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` (the attribute is written explicitly, as with upstream) running
/// the body over `cases` generated inputs from a per-test deterministic seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::__fnv(concat!(module_path!(), "::", stringify!($name)));
                let mut __rng = <$crate::rand::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
                for __case in 0..__config.cases {
                    let ($($arg,)*) = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )* );
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the case when an assumption fails. Upstream retries the case;
/// skipping keeps determinism and is sufficient at this suite's scale.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_parses() {
        let (alphabet, lo, hi) = crate::parse_class_regex("[a-c._-]{0,5}");
        assert_eq!(alphabet, vec!['a', 'b', 'c', '.', '_', '-']);
        assert_eq!((lo, hi), (0, 5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuples, maps, ranges, and collections compose.
        #[test]
        fn shim_composes(
            v in prop::collection::vec((0u32..10, any::<bool>()), 1..8),
            s in "[a-z0-9]{1,6}",
            pick in any::<prop::sample::Index>(),
            x in prop_oneof![2 => 0u32..5, 1 => (10u32..20).prop_map(|v| v)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, _) in &v {
                prop_assert!(*n < 10);
            }
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            prop_assert!(pick.index(v.len()) < v.len());
            prop_assert!(x < 5 || (10..20).contains(&x));
        }

        /// Flat-mapped strategies see the outer draw.
        #[test]
        fn flat_map_dependent_draws(pair in (2usize..10).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }
}
