//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! Nothing in this workspace actually serializes (there is no `serde_json`
//! or similar); the derives exist so metric types stay annotated for a
//! future wire format. Expanding to nothing keeps every annotated type —
//! generic or not, struct or enum — compiling without the real `serde`.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
