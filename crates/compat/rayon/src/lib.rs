//! Offline stand-in for the `rayon` API subset this workspace uses.
//!
//! `par_iter()` / `into_par_iter()` here return ordinary sequential
//! iterators: every adapter chain (`map`, `enumerate`, `collect`, …) then
//! just works through `std::iter::Iterator`. Results are identical to
//! rayon's (the experiment runners only use order-preserving collects);
//! only wall-clock parallelism is lost, which matters little at the
//! experiment scales exercised in CI. Swap for upstream `rayon` when the
//! build environment regains registry access.

/// Sequential `prelude` matching the names experiment runners import.
pub mod prelude {
    /// `into_par_iter()` — sequential stand-in.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Consume `self` into a (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` — sequential stand-in for by-reference iteration.
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator type produced.
        type Iter: Iterator;

        /// Iterate `self` by reference (sequentially).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squared: Vec<usize> = (0..4usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squared, vec![0, 1, 4, 9]);
    }
}
