//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no network access and no
//! vendored registry, so the real `rand` crate cannot be fetched. This crate
//! implements exactly the surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool, fill}`,
//! `seq::SliceRandom::{choose, shuffle}`, and `seq::index::sample` — on top
//! of a xoshiro256** generator seeded through SplitMix64.
//!
//! Streams are deterministic and stable across runs and platforms, which is
//! all the simulation needs (it never compares against the upstream `rand`
//! byte streams, only against itself).

/// The core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sampling `T` uniformly over its whole domain (the `Standard` distribution).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits: uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias over a 64-bit stream is irrelevant here.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256** — fast, high-quality, tiny state.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut x = state;
        StdRng {
            s: [splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x)],
        }
    }
}

impl StdRng {
    /// The raw xoshiro256** state words — the checkpointing hook. Together
    /// with [`StdRng::from_state`] this captures and resumes a stream at its
    /// exact position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator mid-stream from words captured by
    /// [`StdRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// `rand::seq`: slice and index sampling helpers.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Random-selection extensions on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }

    /// `rand::seq::index`.
    pub mod index {
        use crate::{Rng, RngCore};

        /// Distinct indices sampled without replacement.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether nothing was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates). Panics when `amount > length`, like upstream.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{index::sample, SliceRandom};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear: {seen:?}");
    }

    #[test]
    fn sample_returns_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(5);
        let picked = sample(&mut rng, 100, 30).into_vec();
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(picked.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: &[u32] = &[];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn state_capture_resumes_mid_stream() {
        let mut a = StdRng::seed_from_u64(21);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "restored stream must continue at the exact position");
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
