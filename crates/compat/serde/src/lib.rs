//! Offline facade for `serde`.
//!
//! The workspace annotates metric types with `#[derive(Serialize,
//! Deserialize)]` but never serializes them (no `serde_json` in the tree).
//! With no network access the real `serde` cannot be fetched, so this shim
//! re-exports no-op derives that accept the annotations and expand to
//! nothing. When a real serialization consumer lands, swap this crate for
//! upstream `serde` in the workspace `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};
