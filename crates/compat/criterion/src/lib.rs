//! Offline minimal benchmark harness with a `criterion`-compatible API.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's `[[bench]]` targets
//! compiling and runnable: each benchmark executes a small fixed number of
//! timed iterations and prints mean wall-clock per iteration. There are no
//! statistics, warm-up phases, or HTML reports — use upstream criterion for
//! real measurements once registry access is available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl ToString, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.to_string(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing handle.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, total: Duration::ZERO };
    f(&mut b);
    let per_iter = b.total.checked_div(iters as u32).unwrap_or_default();
    println!("bench {name:<60} {per_iter:>12.2?}/iter ({iters} iters)");
}

/// Entry point collected by [`criterion_group!`].
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Enough iterations to dominate timer noise for micro/millisecond
        // benches without making `cargo bench` crawl. CI smoke jobs set
        // `DDP_BENCH_ITERS=1` to verify the bench targets run without paying
        // for measurement quality.
        let iters = std::env::var("DDP_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        Criterion { iters }
    }
}

impl Criterion {
    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotate throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("group {}: throughput {t:?}", self.name);
        self
    }

    /// Override sample count (ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.parent.iters, &mut f);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.parent.iters, &mut |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(128));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
