//! Offline drop-in subset of the `bytes` crate API.
//!
//! Implements only what the workspace's wire codec uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with little-endian
//! accessors. Backed by plain `Vec<u8>` — no refcounted zero-copy splitting;
//! the protocol crate's frames are tiny and this path is not hot.

use std::ops::{Bound, Deref, RangeBounds};

/// An owned, cheaply sliceable byte buffer (here: a plain `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Wrap a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.to_vec() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A copy of the sub-range as a new `Bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.data.len(),
        };
        Bytes { data: self.data[start..end].to_vec() }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let rest = self.data.split_off(at);
        Bytes { data: std::mem::replace(&mut self.data, rest) }
    }

    /// The bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec() }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut { data: data.to_vec() }
    }
}

/// Sequential big-bag-of-bytes reader (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the read position.
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize) {
        let mut sink = vec![0u8; cnt];
        self.copy_to_slice(&mut sink);
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.data.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[..dst.len()]);
        self.data.drain(..dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

/// Sequential byte writer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(0xdead_beef);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 10);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_and_slice() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(&b.slice(..2)[..], &[3, 4]);
        assert_eq!(&b.slice(1..)[..], &[4, 5]);
    }
}
