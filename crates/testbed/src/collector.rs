//! The trace-collection super-node (§2.3).
//!
//! "We build a traffic-monitoring node to collect queries flooding through
//! the Gnutella network. ... The monitoring node ... is configured as a super
//! node connecting to ten peers in the Gnutella network. Our experiment to
//! collect query trace lasted 24 hours. We collected 13,750,339 queries with
//! the size of 112 MB."
//!
//! We emulate the collection over the synthetic trace generator and report
//! the same summary statistics, so downstream components (the testbed agent,
//! examples) can consume an equivalent artifact.

use crate::logfile::{write_log_file, LogError};
use ddp_workload::trace::{TraceGenerator, TraceRecord};
use rand::Rng;
use std::path::Path;

/// Summary of one collection run.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionSummary {
    /// Total queries captured.
    pub queries: u64,
    /// Total bytes of the (synthetic) log.
    pub bytes: u64,
    /// Distinct query strings seen.
    pub distinct_queries: u64,
    /// Collection duration, seconds.
    pub duration_secs: u64,
}

impl CollectionSummary {
    /// Mean query record size in bytes.
    pub fn mean_record_bytes(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.bytes as f64 / self.queries as f64
        }
    }
}

/// The monitoring super-node.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    generator: TraceGenerator,
    /// Number of leaf connections (the paper's node had ten).
    pub connections: usize,
}

impl TraceCollector {
    /// Collector with the paper's configuration.
    pub fn paper_setup() -> Self {
        TraceCollector { generator: TraceGenerator::paper_defaults(), connections: 10 }
    }

    /// Collector over a custom generator.
    pub fn new(generator: TraceGenerator, connections: usize) -> Self {
        TraceCollector { generator, connections }
    }

    /// Collect for `duration_secs`, returning the records and a summary.
    pub fn collect<R: Rng + ?Sized>(
        &self,
        duration_secs: u64,
        rng: &mut R,
    ) -> (Vec<TraceRecord>, CollectionSummary) {
        let records = self.generator.generate(duration_secs, rng);
        let mut distinct = std::collections::HashSet::new();
        let mut bytes = 0u64;
        for r in &records {
            distinct.insert(r.query.as_str());
            // Log line: timestamp (10) + separator (1) + query + newline (1).
            bytes += 12 + r.query.len() as u64;
        }
        let summary = CollectionSummary {
            queries: records.len() as u64,
            bytes,
            distinct_queries: distinct.len() as u64,
            duration_secs,
        };
        (records, summary)
    }

    /// Collect for `duration_secs` and persist the log to `path` in the
    /// replayable format. Failures are typed [`LogError`]s naming the
    /// operation and path — the monitoring node never panics over a full
    /// disk or a bad directory.
    pub fn collect_to_file<R: Rng + ?Sized>(
        &self,
        duration_secs: u64,
        rng: &mut R,
        path: &Path,
    ) -> Result<CollectionSummary, LogError> {
        let (records, summary) = self.collect(duration_secs, rng);
        write_log_file(&records, path)?;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_setup_rate_matches_published_aggregate() {
        // 13,750,339 queries / 24 h. Collect one (synthetic) hour and check
        // the hourly rate: 13,750,339 / 24 ≈ 572,931.
        let c = TraceCollector::paper_setup();
        let mut rng = StdRng::seed_from_u64(1);
        let (_, summary) = c.collect(3_600, &mut rng);
        let hourly = summary.queries as f64;
        assert!((520_000.0..630_000.0).contains(&hourly), "hourly volume {hourly} should be ~573k");
    }

    #[test]
    fn record_sizes_are_plausible() {
        let c = TraceCollector::paper_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let (_, summary) = c.collect(60, &mut rng);
        // The paper's log averaged ~8.5 B/query (112 MB / 13.75 M): a bare
        // query string; ours carries a timestamp too, so allow 8..40 B.
        let mean = summary.mean_record_bytes();
        assert!((8.0..40.0).contains(&mean), "mean record size {mean}");
    }

    #[test]
    fn popular_queries_recur_across_the_log() {
        let c = TraceCollector::paper_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let (records, summary) = c.collect(120, &mut rng);
        assert!(summary.distinct_queries < records.len() as u64, "Zipf head must repeat");
    }

    #[test]
    fn collection_has_ten_connections_like_the_paper() {
        assert_eq!(TraceCollector::paper_setup().connections, 10);
    }

    #[test]
    fn collect_to_file_writes_a_replayable_log() {
        let dir = std::env::temp_dir().join("ddp-collector-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("collected.log");
        let c = TraceCollector::paper_setup();
        let mut rng = StdRng::seed_from_u64(6);
        let summary = c.collect_to_file(10, &mut rng, &path).unwrap();
        let back = crate::logfile::read_log_file(&path).unwrap();
        assert_eq!(back.len() as u64, summary.queries);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn collect_to_bad_path_is_a_typed_error() {
        let c = TraceCollector::paper_setup();
        let mut rng = StdRng::seed_from_u64(7);
        let err =
            c.collect_to_file(1, &mut rng, std::path::Path::new("/no/such/dir/x.log")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("create "), "op named: {msg}");
        assert!(msg.contains("/no/such/dir/x.log"), "path named: {msg}");
    }

    #[test]
    fn empty_collection() {
        let c = TraceCollector::paper_setup();
        let mut rng = StdRng::seed_from_u64(4);
        let (records, summary) = c.collect(0, &mut rng);
        assert!(records.is_empty());
        assert_eq!(summary.queries, 0);
        assert_eq!(summary.mean_record_bytes(), 0.0);
    }
}
