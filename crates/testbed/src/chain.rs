//! The A→B→C chain and peer B's service-rate model.

/// Peer A's maximum observed generation rate (§2.3): "Peer A is capable of
/// reading the log file and sending out queries to peer B at a rate of
/// around 29,000 per minute."
pub const AGENT_MAX_RATE_QPM: u32 = 29_000;

/// Peer B's saturation point (§2.3): "when the number of queries sent out
/// from peer A to B is approaching 15,000 per minute, peer B started
/// discarding queries."
pub const PEER_B_CAPACITY_QPM: u32 = 15_000;

/// A peer's query-processing cost model: per-query local index lookup plus
/// forwarding cost. Capacity in queries/minute follows directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerCapacityModel {
    /// Local sharing-index lookup cost per query, microseconds. The paper
    /// notes its testbed index was "almost empty, which reduces time for
    /// local look up" — a populated index raises this.
    pub lookup_us: f64,
    /// Per-query forwarding cost (socket write, routing-table upkeep),
    /// microseconds.
    pub forward_us: f64,
}

impl PeerCapacityModel {
    /// Model calibrated to the paper's GX300 measurement: 15,000 q/min
    /// saturation means 4 ms total service time per query.
    pub fn paper_gx300() -> Self {
        // 2.5 ms lookup + 1.5 ms forward = 4 ms => 250 q/s => 15,000 q/min.
        PeerCapacityModel { lookup_us: 2_500.0, forward_us: 1_500.0 }
    }

    /// Service capacity in queries per minute.
    pub fn capacity_qpm(&self) -> u32 {
        let per_query_us = self.lookup_us + self.forward_us;
        assert!(per_query_us > 0.0, "service time must be positive");
        (60.0e6 / per_query_us) as u32
    }

    /// Queries processed when `offered` queries/min arrive: a deterministic
    /// loss system (D/D/1 with finite service rate — at these loads the
    /// stochastic queueing correction is negligible, which is also why the
    /// paper's measured knee is sharp).
    pub fn processed(&self, offered: u32) -> u32 {
        offered.min(self.capacity_qpm())
    }

    /// Fraction of offered queries dropped.
    pub fn drop_rate(&self, offered: u32) -> f64 {
        if offered == 0 {
            return 0.0;
        }
        1.0 - self.processed(offered) as f64 / offered as f64
    }
}

impl Default for PeerCapacityModel {
    fn default() -> Self {
        PeerCapacityModel::paper_gx300()
    }
}

/// One sweep point of the chain experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainPoint {
    /// Queries/min peer A sent to B.
    pub sent_qpm: u32,
    /// Queries/min peer B processed and forwarded (what peer C counts).
    pub processed_qpm: u32,
    /// Queries/min peer B discarded.
    pub dropped_qpm: u32,
    /// Drop fraction at B.
    pub drop_rate: f64,
}

/// The A→B→C sweep.
///
/// ```
/// use ddp_testbed::ChainExperiment;
///
/// let chain = ChainExperiment::default();
/// // Below the 15,000 q/min knee nothing is dropped...
/// assert_eq!(chain.point(12_000).drop_rate, 0.0);
/// // ...and at the agent's 29,000 q/min maximum, ~47% is (Figure 6).
/// assert!((0.46..0.50).contains(&chain.point(29_000).drop_rate));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChainExperiment {
    /// Peer B's cost model.
    pub peer_b: PeerCapacityModel,
}

impl ChainExperiment {
    /// Run one offered rate.
    pub fn point(&self, sent_qpm: u32) -> ChainPoint {
        let processed = self.peer_b.processed(sent_qpm);
        ChainPoint {
            sent_qpm,
            processed_qpm: processed,
            dropped_qpm: sent_qpm - processed,
            drop_rate: self.peer_b.drop_rate(sent_qpm),
        }
    }

    /// Sweep a range of offered rates (the Figures 5/6 x-axis), from
    /// 1,000/min up to `max_qpm` in `step` increments.
    pub fn sweep(&self, max_qpm: u32, step: u32) -> Vec<ChainPoint> {
        assert!(step > 0);
        (1..=max_qpm / step).map(|i| self.point(i * step)).collect()
    }

    /// The paper's headline sweep: 1,000 .. 29,000 q/min in 1,000 steps.
    pub fn paper_sweep(&self) -> Vec<ChainPoint> {
        self.sweep(AGENT_MAX_RATE_QPM, 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gx300_capacity_is_15k() {
        assert_eq!(PeerCapacityModel::paper_gx300().capacity_qpm(), PEER_B_CAPACITY_QPM);
    }

    #[test]
    fn below_knee_everything_is_processed() {
        // Figure 5's linear region.
        let e = ChainExperiment::default();
        for rate in [1_000u32, 5_000, 10_000, 14_000] {
            let p = e.point(rate);
            assert_eq!(p.processed_qpm, rate);
            assert_eq!(p.drop_rate, 0.0);
        }
    }

    #[test]
    fn above_knee_processing_is_flat() {
        // Figure 5's plateau.
        let e = ChainExperiment::default();
        for rate in [16_000u32, 20_000, 29_000] {
            assert_eq!(e.point(rate).processed_qpm, PEER_B_CAPACITY_QPM);
        }
    }

    #[test]
    fn paper_terminal_drop_rate_is_about_47_percent() {
        // §2.3: "When peer A sends queries to B as fast as it is capable of,
        // 47% of the queries are dropped by peer B."
        let e = ChainExperiment::default();
        let p = e.point(AGENT_MAX_RATE_QPM);
        assert!(
            (0.46..0.50).contains(&p.drop_rate),
            "terminal drop rate {} should be ~0.47",
            p.drop_rate
        );
    }

    #[test]
    fn drop_rate_is_monotone_in_offered_load() {
        // Figure 6's growth.
        let e = ChainExperiment::default();
        let pts = e.paper_sweep();
        for w in pts.windows(2) {
            assert!(w[1].drop_rate >= w[0].drop_rate);
        }
    }

    #[test]
    fn sweep_covers_the_requested_range() {
        let pts = ChainExperiment::default().paper_sweep();
        assert_eq!(pts.len(), 29);
        assert_eq!(pts.first().unwrap().sent_qpm, 1_000);
        assert_eq!(pts.last().unwrap().sent_qpm, 29_000);
    }

    #[test]
    fn populated_index_lowers_capacity() {
        // "Normally a peer's local index includes many contents; while in our
        // experiment the local index is almost empty."
        let loaded = PeerCapacityModel { lookup_us: 5_000.0, forward_us: 1_500.0 };
        assert!(loaded.capacity_qpm() < PeerCapacityModel::paper_gx300().capacity_qpm());
    }

    #[test]
    fn conservation_sent_equals_processed_plus_dropped() {
        let e = ChainExperiment::default();
        for p in e.paper_sweep() {
            assert_eq!(p.sent_qpm, p.processed_qpm + p.dropped_qpm);
        }
    }

    #[test]
    fn zero_offered_load() {
        let p = ChainExperiment::default().point(0);
        assert_eq!(p.processed_qpm, 0);
        assert_eq!(p.drop_rate, 0.0);
    }
}
