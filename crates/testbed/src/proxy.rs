//! A controllable TCP relay for chaos injection.
//!
//! The driver places a [`ChaosProxy`] on chosen mesh edges: the dialing
//! servent's address book points at the proxy, which pipes bytes to the real
//! listener. Mid-run the driver can:
//!
//! * [`stall`](ChaosProxy::stall) — stop forwarding (bytes queue in kernel
//!   buffers; the victim's write side eventually times out, the read side
//!   goes idle → assume-zero);
//! * [`resume`](ChaosProxy::resume) — forward again;
//! * [`sever`](ChaosProxy::sever) — cut the live relayed connections, with
//!   `mid_frame` optionally leaking half of the in-flight chunk first so the
//!   victim's reassembly buffer is left holding a torn frame;
//! * [`heal`](ChaosProxy::heal) — after the downstream process restarted
//!   (possibly on a new port), point the relay at the new backend and cut
//!   any connection still glued to the dead one.
//!
//! A severed proxy keeps accepting **new** connections, so supervised
//! reconnect (capped backoff) heals the edge through the same address. The
//! backend address is re-read on every accept, so a supervisor that
//! relaunches the downstream servent only has to call `heal` — dialers keep
//! using the proxy's stable address throughout.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Forward,
    Stalled,
}

#[derive(Debug, Default)]
struct Control {
    mode: Mutex<ModeCell>,
    cv: Condvar,
}

#[derive(Debug)]
struct ModeCell {
    mode: Mode,
    /// Bumped on every sever: relay loops for an older epoch cut themselves.
    epoch: u64,
    /// Next sever should leak half a chunk before cutting.
    sever_mid_frame: bool,
}

impl Default for ModeCell {
    fn default() -> Self {
        ModeCell { mode: Mode::Forward, epoch: 0, sever_mid_frame: false }
    }
}

/// One chaos relay bound to an ephemeral loopback port.
pub struct ChaosProxy {
    listen_addr: SocketAddr,
    control: Arc<Control>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Backend the relay dials for each accepted connection; shared with the
    /// accept thread so [`heal`](Self::heal) can retarget a restarted
    /// downstream without tearing the proxy down.
    target: Arc<Mutex<SocketAddr>>,
    /// Bytes relayed in each direction (telemetry).
    pub bytes_relayed: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Start a relay to `target`. Connections to [`addr`](Self::addr) are
    /// piped to a fresh connection to `target`.
    pub fn start(target: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let control = Arc::new(Control::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let bytes_relayed = Arc::new(AtomicU64::new(0));
        let target = Arc::new(Mutex::new(target));
        let accept_thread = {
            let control = control.clone();
            let shutdown = shutdown.clone();
            let bytes_relayed = bytes_relayed.clone();
            let target = target.clone();
            std::thread::spawn(move || loop {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        // Re-read the backend on every accept: a healed proxy
                        // dials the restarted process, not the dead socket.
                        let backend = *target.lock().expect("proxy target lock");
                        let Ok(upstream) =
                            TcpStream::connect_timeout(&backend, Duration::from_millis(1_000))
                        else {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        let epoch = control.mode.lock().expect("proxy lock").epoch;
                        let _ = client.set_nodelay(true);
                        let _ = upstream.set_nodelay(true);
                        spawn_relay(
                            client.try_clone().ok(),
                            upstream.try_clone().ok(),
                            control.clone(),
                            epoch,
                            bytes_relayed.clone(),
                        );
                        spawn_relay(
                            Some(upstream),
                            Some(client),
                            control.clone(),
                            epoch,
                            bytes_relayed.clone(),
                        );
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            })
        };
        Ok(ChaosProxy {
            listen_addr,
            control,
            shutdown,
            accept_thread: Some(accept_thread),
            target,
            bytes_relayed,
        })
    }

    /// The address dialers should use instead of the real target.
    pub fn addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Stop forwarding bytes (connections stay up, traffic freezes).
    pub fn stall(&self) {
        let mut cell = self.control.mode.lock().expect("proxy lock");
        cell.mode = Mode::Stalled;
        self.control.cv.notify_all();
    }

    /// Resume forwarding after a [`stall`](Self::stall).
    pub fn resume(&self) {
        let mut cell = self.control.mode.lock().expect("proxy lock");
        cell.mode = Mode::Forward;
        self.control.cv.notify_all();
    }

    /// Cut every currently-relayed connection. With `mid_frame`, each relay
    /// direction first forwards *half* of its next chunk, so the victim's
    /// frame reassembly is abandoned mid-frame. New connections still relay.
    pub fn sever(&self, mid_frame: bool) {
        let mut cell = self.control.mode.lock().expect("proxy lock");
        cell.epoch += 1;
        cell.sever_mid_frame = mid_frame;
        cell.mode = Mode::Forward; // un-stall so relays notice the epoch bump
        self.control.cv.notify_all();
    }

    /// The backend the proxy currently relays to.
    pub fn target(&self) -> SocketAddr {
        *self.target.lock().expect("proxy target lock")
    }

    /// Recover from a downstream restart: retarget the relay (when the
    /// restarted process listens on a new address), cut every connection
    /// still glued to the dead backend, and forward again. New connections
    /// dial the fresh backend; dialers never see the address change.
    pub fn heal(&self, new_target: Option<SocketAddr>) {
        if let Some(addr) = new_target {
            *self.target.lock().expect("proxy target lock") = addr;
        }
        let mut cell = self.control.mode.lock().expect("proxy lock");
        cell.epoch += 1; // relays to the dead backend cut themselves
        cell.sever_mid_frame = false;
        cell.mode = Mode::Forward;
        self.control.cv.notify_all();
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut cell = self.control.mode.lock().expect("proxy lock");
        cell.epoch += 1; // cut live relays
        cell.mode = Mode::Forward;
        drop(cell);
        self.control.cv.notify_all();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// One relay direction. Exits when its epoch is severed, the proxy drops,
/// or either socket dies.
fn spawn_relay(
    src: Option<TcpStream>,
    dst: Option<TcpStream>,
    control: Arc<Control>,
    epoch: u64,
    bytes_relayed: Arc<AtomicU64>,
) {
    let (Some(mut src), Some(mut dst)) = (src, dst) else { return };
    std::thread::spawn(move || {
        let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
        let mut buf = [0u8; 4096];
        loop {
            // Honor stall/sever before touching the sockets.
            {
                let mut cell = control.mode.lock().expect("proxy lock");
                loop {
                    if cell.epoch != epoch {
                        // Severed: optionally leak half a pending chunk to
                        // tear a frame, then cut hard.
                        let leak_half = cell.sever_mid_frame;
                        drop(cell);
                        if leak_half {
                            if let Ok(n) = src.read(&mut buf) {
                                if n > 1 {
                                    let _ = dst.write_all(&buf[..n / 2]);
                                }
                            }
                        }
                        let _ = src.shutdown(Shutdown::Both);
                        let _ = dst.shutdown(Shutdown::Both);
                        return;
                    }
                    if cell.mode == Mode::Forward {
                        break;
                    }
                    let (guard, _) = control
                        .cv
                        .wait_timeout(cell, Duration::from_millis(100))
                        .expect("proxy lock");
                    cell = guard;
                }
            }
            match src.read(&mut buf) {
                Ok(0) => {
                    let _ = dst.shutdown(Shutdown::Both);
                    return;
                }
                Ok(n) => {
                    if dst.write_all(&buf[..n]).is_err() {
                        let _ = src.shutdown(Shutdown::Both);
                        return;
                    }
                    bytes_relayed.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    let _ = dst.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server for the relay tests: accepts one connection, echoes.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { return };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        (addr, h)
    }

    #[test]
    fn relays_bytes_both_ways() {
        let (target, _h) = echo_server();
        let proxy = ChaosProxy::start(target).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"ping-through-proxy").unwrap();
        let mut buf = [0u8; 64];
        let n = c.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping-through-proxy");
        assert!(proxy.bytes_relayed.load(Ordering::Relaxed) >= 18);
    }

    #[test]
    fn sever_cuts_live_connections_but_new_ones_relay() {
        let (target, _h) = echo_server();
        let proxy = ChaosProxy::start(target).unwrap();
        let mut c1 = TcpStream::connect(proxy.addr()).unwrap();
        c1.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        c1.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = c1.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");

        proxy.sever(false);
        // The severed connection dies: reads see EOF/reset soon.
        let died = (0..100).any(|_| match c1.read(&mut buf) {
            Ok(0) => true,
            Ok(_) => false,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(20));
                false
            }
            Err(_) => true,
        });
        assert!(died, "severed connection must die");

        // A fresh connection through the same proxy works (reconnect path).
        let mut c2 = TcpStream::connect(proxy.addr()).unwrap();
        c2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c2.write_all(b"again").unwrap();
        let n = c2.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"again");
    }

    #[test]
    fn heal_after_backend_restart_relays_to_the_new_socket() {
        // Backend "process": an echo server we kill (drop its listener) and
        // later "restart" on a NEW port — exactly what a supervisor-restarted
        // servent looks like from the proxy's side.
        let (old_target, _h1) = echo_server();
        let proxy = ChaosProxy::start(old_target).unwrap();

        let mut c1 = TcpStream::connect(proxy.addr()).unwrap();
        c1.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        c1.write_all(b"before-crash").unwrap();
        let mut buf = [0u8; 32];
        let n = c1.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"before-crash");

        // SIGKILL the backend (sockets die, port is gone) and sever the edge.
        proxy.sever(false);
        // Restart the backend on a fresh port, then heal the proxy onto it.
        let (new_target, _h2) = echo_server();
        assert_ne!(old_target, new_target, "restart lands on a new port");
        proxy.heal(Some(new_target));
        assert_eq!(proxy.target(), new_target);

        // A fresh dial through the *unchanged* proxy address reaches the
        // restarted backend.
        let mut c2 = TcpStream::connect(proxy.addr()).unwrap();
        c2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c2.write_all(b"after-restart").unwrap();
        let n = c2.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"after-restart");
    }

    #[test]
    fn stall_freezes_traffic_until_resume() {
        let (target, _h) = echo_server();
        let proxy = ChaosProxy::start(target).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        // Prove the path works, then stall it.
        c.write_all(b"warm").unwrap();
        let mut buf = [0u8; 16];
        let n = c.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"warm");

        proxy.stall();
        std::thread::sleep(Duration::from_millis(100));
        c.write_all(b"frozen?").unwrap();
        let stalled = matches!(
            c.read(&mut buf),
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
        );
        assert!(stalled, "no echo while stalled");

        proxy.resume();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let n = c.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"frozen?");
    }
}
