//! The monitoring node's query-log file format and the replaying agent.
//!
//! §2.3: "Using a modified LimeWire client with logging functionality, all
//! queries passing by the monitoring node are recorded to a log file. ...
//! The querying thread reads queries from the log file collected by the
//! monitoring node and issues these queries ... based on the pre-configured
//! time interval."
//!
//! The format is one record per line: `<epoch-seconds>\t<query-string>`.
//! Parsing is strict (a malformed line is an error, not a silent skip) so a
//! corrupted log cannot silently distort an experiment. Every failure is a
//! typed [`LogError`] that names the operation and the path — the same
//! convention as `ddp-snapshot` and the experiment CSV writers; nothing in
//! this module panics on bad input.

use ddp_workload::trace::TraceRecord;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Path label used for in-memory readers (no file involved).
pub const MEMORY_PATH: &str = "<memory>";

/// Any failure to produce or consume a query log.
#[derive(Debug)]
pub enum LogError {
    /// The filesystem operation failed.
    Io { op: &'static str, path: PathBuf, source: std::io::Error },
    /// The log content is malformed at `line` (1-based).
    Parse { path: PathBuf, line: usize, reason: String },
    /// The log parsed but holds zero records — a replay agent cannot cycle
    /// an empty log.
    Empty { path: PathBuf },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            LogError::Parse { path, line, reason } => {
                write!(f, "query log {}:{line}: {reason}", path.display())
            }
            LogError::Empty { path } => {
                write!(f, "query log {}: empty log (nothing to replay)", path.display())
            }
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serialize trace records into the log format (in-memory writer; errors
/// carry the [`MEMORY_PATH`] label).
pub fn write_log<W: Write>(records: &[TraceRecord], mut out: W) -> Result<(), LogError> {
    for r in records {
        writeln!(out, "{}\t{}", r.at_secs, r.query).map_err(|e| LogError::Io {
            op: "write",
            path: PathBuf::from(MEMORY_PATH),
            source: e,
        })?;
    }
    Ok(())
}

/// Serialize trace records to a file on disk.
pub fn write_log_file(records: &[TraceRecord], path: &Path) -> Result<(), LogError> {
    let file = std::fs::File::create(path).map_err(|e| LogError::Io {
        op: "create",
        path: path.to_path_buf(),
        source: e,
    })?;
    let mut out = BufWriter::new(file);
    for r in records {
        writeln!(out, "{}\t{}", r.at_secs, r.query).map_err(|e| LogError::Io {
            op: "write",
            path: path.to_path_buf(),
            source: e,
        })?;
    }
    out.flush().map_err(|e| LogError::Io { op: "flush", path: path.to_path_buf(), source: e })
}

fn parse_log_named<R: BufRead>(input: R, path: &Path) -> Result<Vec<TraceRecord>, LogError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line =
            line.map_err(|e| LogError::Io { op: "read", path: path.to_path_buf(), source: e })?;
        if line.is_empty() {
            continue; // trailing newline
        }
        let perr =
            |reason: String| LogError::Parse { path: path.to_path_buf(), line: idx + 1, reason };
        let Some((ts, query)) = line.split_once('\t') else {
            return Err(perr("missing tab separator".into()));
        };
        let at_secs: u64 = ts.parse().map_err(|e| perr(format!("bad timestamp: {e}")))?;
        if query.is_empty() {
            return Err(perr("empty query string".into()));
        }
        out.push(TraceRecord { at_secs, query: query.to_string() });
    }
    Ok(out)
}

/// Parse a query log from an in-memory reader.
pub fn parse_log<R: BufRead>(input: R) -> Result<Vec<TraceRecord>, LogError> {
    parse_log_named(input, Path::new(MEMORY_PATH))
}

/// Read and parse a query-log file; errors name the path.
pub fn read_log_file(path: &Path) -> Result<Vec<TraceRecord>, LogError> {
    let file = std::fs::File::open(path).map_err(|e| LogError::Io {
        op: "open",
        path: path.to_path_buf(),
        source: e,
    })?;
    parse_log_named(BufReader::new(file), path)
}

/// The DDoS-agent prototype's replay loop: reads a log and emits queries in
/// per-minute batches at a configured rate, cycling the log if it runs dry
/// (the paper's agent ran for hours off a fixed 24-hour log).
#[derive(Debug, Clone)]
pub struct ReplayAgent {
    log: Vec<TraceRecord>,
    cursor: usize,
    /// Queries emitted per minute.
    pub rate_qpm: u32,
}

impl ReplayAgent {
    /// Agent over a parsed log. An empty log is a typed error, not a panic.
    pub fn new(log: Vec<TraceRecord>, rate_qpm: u32) -> Result<Self, LogError> {
        if log.is_empty() {
            return Err(LogError::Empty { path: PathBuf::from(MEMORY_PATH) });
        }
        Ok(ReplayAgent { log, cursor: 0, rate_qpm })
    }

    /// Agent over a log file on disk.
    pub fn from_file(path: &Path, rate_qpm: u32) -> Result<Self, LogError> {
        let log = read_log_file(path)?;
        if log.is_empty() {
            return Err(LogError::Empty { path: path.to_path_buf() });
        }
        Ok(ReplayAgent { log, cursor: 0, rate_qpm })
    }

    /// The next minute's batch of query strings.
    pub fn next_minute(&mut self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.rate_qpm as usize);
        for _ in 0..self.rate_qpm {
            out.push(self.log[self.cursor].query.as_str());
            self.cursor = (self.cursor + 1) % self.log.len();
        }
        out
    }

    /// Number of records in the backing log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_records() -> Vec<TraceRecord> {
        let mut rng = StdRng::seed_from_u64(5);
        let (records, _) = TraceCollector::paper_setup().collect(30, &mut rng);
        records
    }

    #[test]
    fn log_roundtrip() {
        let records = sample_records();
        assert!(!records.is_empty());
        let mut buf = Vec::new();
        write_log(&records, &mut buf).unwrap();
        let parsed = parse_log(&buf[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn file_roundtrip_and_replay_from_file() {
        let dir = std::env::temp_dir().join("ddp-logfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.log");
        let records = sample_records();
        write_log_file(&records, &path).unwrap();
        let parsed = read_log_file(&path).unwrap();
        assert_eq!(parsed, records);
        let agent = ReplayAgent::from_file(&path, 100).unwrap();
        assert_eq!(agent.log_len(), records.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_error_names_op_and_path() {
        let err = read_log_file(Path::new("/no/such/ddp-trace.log")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("open "), "op named: {msg}");
        assert!(msg.contains("/no/such/ddp-trace.log"), "path named: {msg}");
    }

    #[test]
    fn missing_tab_is_an_error_with_line_number() {
        let bad = b"12\tq000001\nno-separator-here\n".to_vec();
        let err = parse_log(&bad[..]).unwrap_err();
        match err {
            LogError::Parse { line, ref reason, .. } => {
                assert_eq!(line, 2);
                assert!(reason.contains("tab"));
            }
            other => panic!("want Parse, got {other:?}"),
        }
    }

    #[test]
    fn bad_timestamp_is_an_error() {
        let bad = b"notanumber\tq1\n".to_vec();
        let err = parse_log(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("timestamp"));
        assert!(err.to_string().contains(MEMORY_PATH), "in-memory label: {err}");
    }

    #[test]
    fn empty_query_is_an_error() {
        let bad = b"5\t\n".to_vec();
        assert!(parse_log(&bad[..]).is_err());
    }

    #[test]
    fn trailing_newline_is_fine() {
        let ok = b"1\tq1\n2\tq2\n\n".to_vec();
        assert_eq!(parse_log(&ok[..]).unwrap().len(), 2);
    }

    #[test]
    fn empty_log_is_a_typed_error_not_a_panic() {
        let err = ReplayAgent::new(Vec::new(), 10).unwrap_err();
        assert!(matches!(err, LogError::Empty { .. }));
        assert!(err.to_string().contains("empty log"));
    }

    #[test]
    fn replay_agent_emits_at_the_configured_rate_and_cycles() {
        let records = vec![
            TraceRecord { at_secs: 0, query: "a".into() },
            TraceRecord { at_secs: 1, query: "b".into() },
            TraceRecord { at_secs: 2, query: "c".into() },
        ];
        let mut agent = ReplayAgent::new(records, 5).unwrap();
        let first = agent.next_minute();
        assert_eq!(first, vec!["a", "b", "c", "a", "b"]);
        let second: Vec<String> = agent.next_minute().into_iter().map(str::to_string).collect();
        assert_eq!(second, vec!["c", "a", "b", "c", "a"]);
    }

    #[test]
    fn replay_feeds_the_capacity_chain() {
        // End-to-end §2.3: collect a synthetic trace, write/parse the log,
        // replay it at the agent's max rate into peer B's capacity model.
        let records = sample_records();
        let mut buf = Vec::new();
        write_log(&records, &mut buf).unwrap();
        let parsed = parse_log(&buf[..]).unwrap();
        let mut agent = ReplayAgent::new(parsed, crate::chain::AGENT_MAX_RATE_QPM).unwrap();
        let minute = agent.next_minute();
        assert_eq!(minute.len(), 29_000);
        let point = crate::ChainExperiment::default().point(minute.len() as u32);
        assert!((0.46..0.50).contains(&point.drop_rate));
    }
}
