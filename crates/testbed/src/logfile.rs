//! The monitoring node's query-log file format and the replaying agent.
//!
//! §2.3: "Using a modified LimeWire client with logging functionality, all
//! queries passing by the monitoring node are recorded to a log file. ...
//! The querying thread reads queries from the log file collected by the
//! monitoring node and issues these queries ... based on the pre-configured
//! time interval."
//!
//! The format is one record per line: `<epoch-seconds>\t<query-string>`.
//! Parsing is strict (a malformed line is an error, not a silent skip) so a
//! corrupted log cannot silently distort an experiment.

use ddp_workload::trace::TraceRecord;
use std::fmt;
use std::io::{BufRead, Write};

/// A query-log parsing error, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogParseError {
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for LogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query log line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for LogParseError {}

/// Serialize trace records into the log format.
pub fn write_log<W: Write>(records: &[TraceRecord], mut out: W) -> std::io::Result<()> {
    for r in records {
        writeln!(out, "{}\t{}", r.at_secs, r.query)?;
    }
    Ok(())
}

/// Parse a query log.
pub fn parse_log<R: BufRead>(input: R) -> Result<Vec<TraceRecord>, LogParseError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.map_err(|e| LogParseError { line: idx + 1, reason: e.to_string() })?;
        if line.is_empty() {
            continue; // trailing newline
        }
        let Some((ts, query)) = line.split_once('\t') else {
            return Err(LogParseError { line: idx + 1, reason: "missing tab separator".into() });
        };
        let at_secs: u64 = ts
            .parse()
            .map_err(|e| LogParseError { line: idx + 1, reason: format!("bad timestamp: {e}") })?;
        if query.is_empty() {
            return Err(LogParseError { line: idx + 1, reason: "empty query string".into() });
        }
        out.push(TraceRecord { at_secs, query: query.to_string() });
    }
    Ok(out)
}

/// The DDoS-agent prototype's replay loop: reads a log and emits queries in
/// per-minute batches at a configured rate, cycling the log if it runs dry
/// (the paper's agent ran for hours off a fixed 24-hour log).
#[derive(Debug, Clone)]
pub struct ReplayAgent {
    log: Vec<TraceRecord>,
    cursor: usize,
    /// Queries emitted per minute.
    pub rate_qpm: u32,
}

impl ReplayAgent {
    /// Agent over a parsed log.
    pub fn new(log: Vec<TraceRecord>, rate_qpm: u32) -> Self {
        assert!(!log.is_empty(), "cannot replay an empty log");
        ReplayAgent { log, cursor: 0, rate_qpm }
    }

    /// The next minute's batch of query strings.
    pub fn next_minute(&mut self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.rate_qpm as usize);
        for _ in 0..self.rate_qpm {
            out.push(self.log[self.cursor].query.as_str());
            self.cursor = (self.cursor + 1) % self.log.len();
        }
        out
    }

    /// Number of records in the backing log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_records() -> Vec<TraceRecord> {
        let mut rng = StdRng::seed_from_u64(5);
        let (records, _) = TraceCollector::paper_setup().collect(30, &mut rng);
        records
    }

    #[test]
    fn log_roundtrip() {
        let records = sample_records();
        assert!(!records.is_empty());
        let mut buf = Vec::new();
        write_log(&records, &mut buf).unwrap();
        let parsed = parse_log(&buf[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn missing_tab_is_an_error_with_line_number() {
        let bad = b"12\tq000001\nno-separator-here\n".to_vec();
        let err = parse_log(&bad[..]).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("tab"));
    }

    #[test]
    fn bad_timestamp_is_an_error() {
        let bad = b"notanumber\tq1\n".to_vec();
        let err = parse_log(&bad[..]).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("timestamp"));
    }

    #[test]
    fn empty_query_is_an_error() {
        let bad = b"5\t\n".to_vec();
        assert!(parse_log(&bad[..]).is_err());
    }

    #[test]
    fn trailing_newline_is_fine() {
        let ok = b"1\tq1\n2\tq2\n\n".to_vec();
        assert_eq!(parse_log(&ok[..]).unwrap().len(), 2);
    }

    #[test]
    fn replay_agent_emits_at_the_configured_rate_and_cycles() {
        let records = vec![
            TraceRecord { at_secs: 0, query: "a".into() },
            TraceRecord { at_secs: 1, query: "b".into() },
            TraceRecord { at_secs: 2, query: "c".into() },
        ];
        let mut agent = ReplayAgent::new(records, 5);
        let first = agent.next_minute();
        assert_eq!(first, vec!["a", "b", "c", "a", "b"]);
        let second: Vec<String> = agent.next_minute().into_iter().map(str::to_string).collect();
        assert_eq!(second, vec!["c", "a", "b", "c", "a"]);
    }

    #[test]
    fn replay_feeds_the_capacity_chain() {
        // End-to-end §2.3: collect a synthetic trace, write/parse the log,
        // replay it at the agent's max rate into peer B's capacity model.
        let records = sample_records();
        let mut buf = Vec::new();
        write_log(&records, &mut buf).unwrap();
        let parsed = parse_log(&buf[..]).unwrap();
        let mut agent = ReplayAgent::new(parsed, crate::chain::AGENT_MAX_RATE_QPM);
        let minute = agent.next_minute();
        assert_eq!(minute.len(), 29_000);
        let point = crate::ChainExperiment::default().point(minute.len() as u32);
        assert!((0.46..0.50).contains(&point.drop_rate));
    }
}
