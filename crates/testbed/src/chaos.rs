//! Deterministic chaos scheduling for the wire mesh.
//!
//! A [`ChaosSchedule`] is a seeded, pre-computed list of fault-injection
//! events — SIGKILL, supervised restart, socket sever, stall — spread over a
//! wall-clock budget. Generating the schedule up front (instead of rolling
//! dice mid-run) keeps a chaos soak reproducible: the same seed and
//! [`ChaosPlan`] always yield the same event sequence, so a failing soak can
//! be re-run byte-for-byte.
//!
//! Invariants the generator maintains:
//!
//! * every [`Kill`](ChaosEvent::Kill) is followed by a
//!   [`Restart`](ChaosEvent::Restart) of the same servent before that
//!   servent is killed again — the supervisor never restarts a live process
//!   or double-kills a corpse;
//! * every [`Sever`](ChaosEvent::Sever) / [`Stall`](ChaosEvent::Stall) is
//!   paired with a later [`Heal`](ChaosEvent::Heal) /
//!   [`Unstall`](ChaosEvent::Unstall) of the same edge, so disturbed links
//!   always recover within the budget;
//! * all events land strictly inside the budget, leaving the tail of the run
//!   undisturbed for the mesh to converge.

use crate::wire::WireMesh;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One fault-injection action against a [`WireMesh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// SIGKILL a servent process (no goodbye, no summary).
    Kill { id: u32 },
    /// Relaunch the killed servent on its original port; with checkpointing
    /// it resumes the defense state the dead incarnation persisted.
    Restart { id: u32 },
    /// Cut the live sockets on a proxied edge, optionally mid-frame.
    Sever { edge: (u32, u32), mid_frame: bool },
    /// Restore forwarding on a severed edge.
    Heal { edge: (u32, u32) },
    /// Freeze traffic on a proxied edge.
    Stall { edge: (u32, u32) },
    /// Unfreeze a stalled edge.
    Unstall { edge: (u32, u32) },
}

/// What the generator may disturb, and how hard.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Servents eligible for SIGKILL + restart cycles.
    pub kill_targets: Vec<u32>,
    /// Proxied edges eligible for sever/stall disturbances.
    pub proxied_edges: Vec<(u32, u32)>,
    /// Wall-clock window the events are scheduled within.
    pub budget: Duration,
    /// How many kill → restart cycles to schedule (skipped when
    /// `kill_targets` is empty).
    pub kill_cycles: usize,
    /// How many sever-or-stall disturbances to schedule (skipped when
    /// `proxied_edges` is empty).
    pub disturbances: usize,
}

/// A seeded, time-ordered fault-injection script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Events and their wall-clock offsets from the start of the run,
    /// sorted ascending.
    pub events: Vec<(Duration, ChaosEvent)>,
}

impl ChaosSchedule {
    /// Roll a deterministic schedule: the same `seed` and `plan` always
    /// produce the same events at the same offsets.
    pub fn generate(seed: u64, plan: &ChaosPlan) -> ChaosSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let budget_ms = plan.budget.as_millis() as u64;
        let mut events: Vec<(Duration, ChaosEvent)> = Vec::new();

        // Kill cycles: partition the middle of the budget into one slot per
        // cycle so a servent is always restarted before its next kill, and
        // the final restart still leaves tail time to converge.
        if !plan.kill_targets.is_empty() && plan.kill_cycles > 0 {
            let window_start = budget_ms / 10;
            let window = budget_ms * 8 / 10;
            let slot = window / plan.kill_cycles as u64;
            for cycle in 0..plan.kill_cycles {
                let id = plan.kill_targets[rng.gen_range(0..plan.kill_targets.len())];
                let slot_start = window_start + cycle as u64 * slot;
                let kill_at = slot_start + rng.gen_range(0..slot.max(4) * 2 / 5);
                let downtime = slot / 5 + rng.gen_range(0..slot.max(4) * 2 / 5);
                events.push((Duration::from_millis(kill_at), ChaosEvent::Kill { id }));
                events
                    .push((Duration::from_millis(kill_at + downtime), ChaosEvent::Restart { id }));
            }
        }

        // Edge disturbances: each sever/stall recovers within the budget.
        if !plan.proxied_edges.is_empty() && plan.disturbances > 0 {
            for _ in 0..plan.disturbances {
                let edge = plan.proxied_edges[rng.gen_range(0..plan.proxied_edges.len())];
                let at = budget_ms / 20 + rng.gen_range(0..(budget_ms * 3 / 4).max(1));
                let recover = at + budget_ms / 20 + rng.gen_range(0..(budget_ms * 3 / 20).max(1));
                let (hit, fix) = if rng.gen_bool(0.5) {
                    let mid_frame = rng.gen_bool(0.5);
                    (ChaosEvent::Sever { edge, mid_frame }, ChaosEvent::Heal { edge })
                } else {
                    (ChaosEvent::Stall { edge }, ChaosEvent::Unstall { edge })
                };
                events.push((Duration::from_millis(at), hit));
                events.push((Duration::from_millis(recover.min(budget_ms)), fix));
            }
        }

        // Stable sort: a kill and its restart keep their relative order even
        // if the offsets collide.
        events.sort_by_key(|&(at, _)| at);
        ChaosSchedule { events }
    }

    /// Play the schedule against a live mesh, sleeping between events.
    ///
    /// Returns a human-readable log line per event (offset, action,
    /// outcome). Injection errors are logged, not fatal — a restart that
    /// races a graceful exit is a soak observation, not a driver bug.
    pub fn run(&self, mesh: &mut WireMesh) -> Vec<String> {
        let started = Instant::now();
        let mut log = Vec::with_capacity(self.events.len());
        for &(at, ev) in &self.events {
            let elapsed = started.elapsed();
            if at > elapsed {
                std::thread::sleep(at - elapsed);
            }
            let outcome = match ev {
                ChaosEvent::Kill { id } => match mesh.kill(id) {
                    Ok(()) => format!("kill s{id}: ok"),
                    Err(e) => format!("kill s{id}: {e}"),
                },
                ChaosEvent::Restart { id } => match mesh.restart(id) {
                    Ok(launch) => format!("restart s{id}: ok (incarnation {launch})"),
                    Err(e) => format!("restart s{id}: {e}"),
                },
                ChaosEvent::Sever { edge, mid_frame } => match mesh.sever(edge, mid_frame) {
                    Ok(()) => format!("sever {edge:?} (mid_frame={mid_frame}): ok"),
                    Err(e) => format!("sever {edge:?}: {e}"),
                },
                ChaosEvent::Heal { edge } => match mesh.heal(edge) {
                    Ok(()) => format!("heal {edge:?}: ok"),
                    Err(e) => format!("heal {edge:?}: {e}"),
                },
                ChaosEvent::Stall { edge } => match mesh.stall(edge) {
                    Ok(()) => format!("stall {edge:?}: ok"),
                    Err(e) => format!("stall {edge:?}: {e}"),
                },
                ChaosEvent::Unstall { edge } => match mesh.resume(edge) {
                    Ok(()) => format!("unstall {edge:?}: ok"),
                    Err(e) => format!("unstall {edge:?}: {e}"),
                },
            };
            log.push(format!("{:>7}ms {outcome}", at.as_millis()));
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChaosPlan {
        ChaosPlan {
            kill_targets: vec![3, 7, 9],
            proxied_edges: vec![(1, 5), (2, 6)],
            budget: Duration::from_secs(10),
            kill_cycles: 3,
            disturbances: 4,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = plan();
        assert_eq!(ChaosSchedule::generate(42, &p), ChaosSchedule::generate(42, &p));
        assert_ne!(ChaosSchedule::generate(42, &p), ChaosSchedule::generate(43, &p));
    }

    #[test]
    fn kills_and_restarts_alternate_per_servent() {
        let s = ChaosSchedule::generate(7, &plan());
        let mut down: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (_, ev) in &s.events {
            match *ev {
                ChaosEvent::Kill { id } => {
                    assert!(down.insert(id), "servent {id} killed while already down");
                }
                ChaosEvent::Restart { id } => {
                    assert!(down.remove(&id), "servent {id} restarted while alive");
                }
                _ => {}
            }
        }
        assert!(down.is_empty(), "servents left dead at the end: {down:?}");
    }

    #[test]
    fn disturbances_recover_and_stay_in_budget() {
        let p = plan();
        let s = ChaosSchedule::generate(11, &p);
        let mut open: Vec<(u32, u32)> = Vec::new();
        for &(at, ev) in &s.events {
            assert!(at <= p.budget, "event at {at:?} beyond budget {:?}", p.budget);
            match ev {
                ChaosEvent::Sever { edge, .. } | ChaosEvent::Stall { edge } => open.push(edge),
                ChaosEvent::Heal { edge } | ChaosEvent::Unstall { edge } => {
                    let i = open
                        .iter()
                        .position(|&e| e == edge)
                        .expect("recovery without a matching disturbance");
                    open.remove(i);
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "edges left disturbed: {open:?}");
        assert_eq!(
            s.events.iter().filter(|(_, e)| matches!(e, ChaosEvent::Kill { .. })).count(),
            3
        );
        assert_eq!(
            s.events
                .iter()
                .filter(|(_, e)| matches!(e, ChaosEvent::Sever { .. } | ChaosEvent::Stall { .. }))
                .count(),
            4
        );
    }

    #[test]
    fn events_are_time_sorted() {
        let s = ChaosSchedule::generate(5, &plan());
        assert!(s.events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn empty_targets_yield_an_empty_schedule() {
        let p = ChaosPlan {
            kill_targets: vec![],
            proxied_edges: vec![],
            budget: Duration::from_secs(5),
            kill_cycles: 3,
            disturbances: 3,
        };
        assert!(ChaosSchedule::generate(1, &p).events.is_empty());
    }
}
