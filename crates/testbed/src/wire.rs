//! Multi-process chaos driver and supervisor: a mesh of real `ddp-servent`
//! processes over loopback TCP.
//!
//! The driver launches one OS process per servent, optionally routes chosen
//! edges through [`ChaosProxy`] relays, and injects faults mid-run:
//! [`kill`](WireMesh::kill) (SIGKILL — the process vanishes without a
//! goodbye), [`sever`](WireMesh::sever) (cut sockets, optionally mid-frame),
//! [`stall`](WireMesh::stall)/[`resume`](WireMesh::resume). When the mesh
//! was launched with checkpointing ([`MeshSpec::checkpoint_every`]), the
//! driver is also a supervisor: [`restart`](WireMesh::restart) relaunches a
//! killed servent on its original port with its checkpoint directory, so the
//! new incarnation resumes the defense state the old one persisted.
//!
//! Successive incarnations of a servent write distinct summary files
//! (`s3.summary`, `s3.g1.summary`, ...), and [`collect`](WireMesh::collect)
//! chains them in [`MeshReport::incarnations`] instead of letting a restart
//! clobber its predecessor's result. At the end, `collect` reaps every child
//! under a wall-clock deadline (a hang is a reported failure, never a stuck
//! driver) and parses the per-servent [`WireSummary`] files for
//! cross-validation against the in-memory simulator.

use crate::proxy::ChaosProxy;
use ddp_servent::wire::WireSummary;
use ddp_servent::ServentRole;
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One servent in the mesh.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    pub id: u32,
    pub role: ServentRole,
}

/// The mesh to launch.
#[derive(Debug, Clone)]
pub struct MeshSpec {
    pub nodes: Vec<NodeSpec>,
    /// Undirected overlay edges (the lower id dials).
    pub edges: Vec<(u32, u32)>,
    /// Edges routed through a chaos proxy (must also be in `edges`).
    pub proxied_edges: Vec<(u32, u32)>,
    pub minutes: u64,
    /// Wall milliseconds per protocol second (time compression).
    pub tick_ms: u64,
    pub seed: u64,
    pub query_rate_qpm: f64,
    /// Directory for summary and stderr files (created if missing).
    pub out_dir: PathBuf,
    /// Crash recovery: when `Some(n)`, every servent checkpoints its defense
    /// state into `out_dir/ckpt` every `n` protocol seconds, and a
    /// [`restart`](WireMesh::restart)ed servent resumes from its checkpoint
    /// rather than cold-starting with amnesia.
    pub checkpoint_every: Option<u64>,
}

/// What came back from a finished mesh.
#[derive(Debug)]
pub struct MeshReport {
    /// Parsed summary of each servent's *latest* incarnation that exited
    /// gracefully (keyed by servent id).
    pub summaries: BTreeMap<u32, WireSummary>,
    /// Every readable summary per servent, in launch order. A servent that
    /// was SIGKILL'd and restarted contributes the summaries of whichever
    /// incarnations completed; the restored `cuts`/`verdicts` inside a
    /// resumed incarnation chain the history across the crash.
    pub incarnations: BTreeMap<u32, Vec<WireSummary>>,
    /// Servents with no readable summary from any incarnation (crashed or
    /// killed, never restarted to completion).
    pub missing: Vec<u32>,
    /// Servents the driver SIGKILL'd on purpose.
    pub killed: Vec<u32>,
    /// Servents still running at the deadline (killed by the reaper).
    pub hung: Vec<u32>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl MeshReport {
    /// Earliest protocol second at which any incarnation of any servent cut
    /// `suspect`.
    pub fn first_cut_of(&self, suspect: u32) -> Option<u64> {
        self.incarnations
            .values()
            .flatten()
            .flat_map(|s| s.cuts.iter())
            .filter(|&&(_, who)| who == suspect)
            .map(|&(t, _)| t)
            .min()
    }

    /// How many servents cut `suspect` (counting each servent once, however
    /// many incarnations it ran).
    pub fn cuts_of(&self, suspect: u32) -> usize {
        self.incarnations
            .iter()
            .filter(|(_, incs)| incs.iter().any(|s| s.cuts.iter().any(|&(_, who)| who == suspect)))
            .count()
    }

    /// Whether no surviving servent still lists `suspect` as a neighbor
    /// (judged on each servent's latest incarnation).
    pub fn isolated(&self, suspect: u32) -> bool {
        self.summaries
            .values()
            .filter(|s| s.id != suspect)
            .all(|s| !s.neighbors_final.contains(&suspect))
    }

    /// Aggregate connection counters across surviving servents (latest
    /// incarnations only — transport counters reset across a restart).
    pub fn total_conn(&self) -> ddp_metrics::ConnCounters {
        self.summaries
            .values()
            .fold(ddp_metrics::ConnCounters::default(), |acc, s| acc.merge(&s.conn))
    }

    /// Total queries issued / resolved across surviving good servents
    /// (latest incarnations; `issued` is restored by resume, so this does
    /// not double-count across a restart).
    pub fn totals(&self) -> (u64, u64) {
        self.summaries.values().fold((0, 0), |(i, r), s| (i + s.issued, r + s.resolved))
    }
}

/// Find the `ddp-servent` binary: `DDP_SERVENT_BIN` env override, else a
/// sibling of the current executable (works from `cargo test` and from
/// `target/{debug,release}` binaries).
pub fn locate_servent_bin() -> std::io::Result<PathBuf> {
    if let Ok(p) = std::env::var("DDP_SERVENT_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("DDP_SERVENT_BIN points at {}, which does not exist", p.display()),
        ));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe.parent().map(PathBuf::from).unwrap_or_default();
    // Test binaries live in target/<profile>/deps/; the servent binary one up.
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join("ddp-servent");
    if candidate.is_file() {
        return Ok(candidate);
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!(
            "ddp-servent binary not found at {} (build it: cargo build -p ddp-servent; \
             or set DDP_SERVENT_BIN)",
            candidate.display()
        ),
    ))
}

struct ChildProc {
    id: u32,
    /// Incarnation index: 0 for the original launch, +1 per restart.
    launch: u32,
    child: Child,
    summary_path: PathBuf,
}

/// A launched mesh of servent processes.
pub struct WireMesh {
    spec: MeshSpec,
    bin: PathBuf,
    addrs: HashMap<u32, SocketAddr>,
    neighbors: HashMap<u32, Vec<u32>>,
    children: Vec<ChildProc>,
    proxies: HashMap<(u32, u32), ChaosProxy>,
    killed: Vec<u32>,
    started: Instant,
    /// Reap deadline; extended by [`restart`](WireMesh::restart) so a late
    /// relaunch gets time to finish its remaining ticks.
    deadline: Instant,
}

impl WireMesh {
    /// Allocate ports, start proxies, and spawn every servent process.
    pub fn launch(spec: MeshSpec) -> std::io::Result<WireMesh> {
        std::fs::create_dir_all(&spec.out_dir)?;
        if spec.checkpoint_every.is_some() {
            std::fs::create_dir_all(spec.out_dir.join("ckpt"))?;
        }
        let bin = locate_servent_bin()?;

        // Reserve one loopback port per node: bind them all concurrently
        // (guaranteeing distinctness), then release just before spawning.
        // A restarted servent re-binds its original port — std sets
        // SO_REUSEADDR on Unix, so lingering TIME_WAIT pairs from the dead
        // incarnation don't block the rebind.
        let mut holders: Vec<(u32, TcpListener)> = Vec::with_capacity(spec.nodes.len());
        let mut addrs: HashMap<u32, SocketAddr> = HashMap::new();
        for node in &spec.nodes {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(node.id, l.local_addr()?);
            holders.push((node.id, l));
        }

        // Adjacency from the undirected edge list.
        let mut neighbors: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(u, v) in &spec.edges {
            neighbors.entry(u).or_default().push(v);
            neighbors.entry(v).or_default().push(u);
        }

        // Chaos proxies: the dialer (lower id) of a proxied edge gets the
        // proxy's address in its book; the proxy targets the real acceptor.
        let mut proxies: HashMap<(u32, u32), ChaosProxy> = HashMap::new();
        for &(u, v) in &spec.proxied_edges {
            let (dialer, acceptor) = (u.min(v), u.max(v));
            let target = *addrs.get(&acceptor).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("proxied edge ({u},{v}) names unknown node {acceptor}"),
                )
            })?;
            proxies.insert((dialer, acceptor), ChaosProxy::start(target)?);
        }

        drop(holders); // release the reserved ports for the children

        let ids: Vec<u32> = spec.nodes.iter().map(|n| n.id).collect();
        let started = Instant::now();
        let mut mesh = WireMesh {
            spec,
            bin,
            addrs,
            neighbors,
            children: Vec::new(),
            proxies,
            killed: Vec::new(),
            started,
            deadline: started, // placeholder until the spec is owned
        };
        mesh.deadline = started + mesh.wall_budget();
        for id in ids {
            let child = mesh.spawn_node(id, 0)?;
            mesh.children.push(child);
        }
        Ok(mesh)
    }

    /// Spawn one incarnation of servent `id`. Incarnation 0 writes
    /// `s<id>.summary`; restarts write `s<id>.g<launch>.summary` so earlier
    /// results are never clobbered.
    fn spawn_node(&self, id: u32, launch: u32) -> std::io::Result<ChildProc> {
        let node = self.spec.nodes.iter().find(|n| n.id == id).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no servent with id {id} in the mesh"),
            )
        })?;
        let my_addr = self.addrs[&id];
        // Per-node address book; proxied edges rewrite the dialer's view.
        let mut book: Vec<String> = Vec::new();
        for (&pid, &paddr) in &self.addrs {
            let effective = self.proxies.get(&(id, pid)).map(|p| p.addr()).unwrap_or(paddr);
            book.push(format!("{pid}={effective}"));
        }
        book.sort();
        let neigh: Vec<String> = self
            .neighbors
            .get(&id)
            .map(|ns| ns.iter().map(u32::to_string).collect())
            .unwrap_or_default();
        let suffix = if launch == 0 { String::new() } else { format!(".g{launch}") };
        let summary_path = self.spec.out_dir.join(format!("s{id}{suffix}.summary"));
        let stderr_path = self.spec.out_dir.join(format!("s{id}{suffix}.stderr"));
        let mut cmd = Command::new(&self.bin);
        cmd.arg("--id")
            .arg(id.to_string())
            .arg("--listen")
            .arg(my_addr.to_string())
            .arg("--peers")
            .arg(book.join(","))
            .arg("--neighbors")
            .arg(neigh.join(","))
            .arg("--minutes")
            .arg(self.spec.minutes.to_string())
            .arg("--tick-ms")
            .arg(self.spec.tick_ms.to_string())
            .arg("--seed")
            .arg(self.spec.seed.to_string())
            .arg("--query-rate-qpm")
            .arg(self.spec.query_rate_qpm.to_string())
            .arg("--out")
            .arg(&summary_path);
        if let Some(every) = self.spec.checkpoint_every {
            cmd.arg("--resume-dir")
                .arg(self.spec.out_dir.join("ckpt"))
                .arg("--checkpoint-every")
                .arg(every.to_string());
        }
        match node.role {
            ServentRole::Good => {
                cmd.arg("--role").arg("good");
            }
            ServentRole::FloodingAgent { rate_qpm, respond_reports } => {
                cmd.arg("--role").arg("agent").arg("--rate-qpm").arg(rate_qpm.to_string());
                if respond_reports {
                    cmd.arg("--respond-reports");
                }
            }
        }
        cmd.stdin(Stdio::null()).stdout(Stdio::null()).stderr(std::fs::File::create(&stderr_path)?);
        let child = cmd.spawn()?;
        Ok(ChildProc { id, launch, child, summary_path })
    }

    /// SIGKILL a servent process mid-run (no goodbye, no summary). With
    /// multiple incarnations, kills the latest one.
    pub fn kill(&mut self, id: u32) -> std::io::Result<()> {
        for c in self.children.iter_mut().rev() {
            if c.id == id {
                c.child.kill()?;
                self.killed.push(id);
                return Ok(());
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no servent with id {id} in the mesh"),
        ))
    }

    /// Relaunch a dead servent on its original port as a new incarnation.
    ///
    /// The previous incarnation must already be dead (normally via
    /// [`kill`](WireMesh::kill)); it is reaped here so the listening port is
    /// free before the replacement binds it. When the mesh runs with
    /// [`checkpoint_every`](MeshSpec::checkpoint_every), the new incarnation
    /// gets the same `--resume-dir` and picks up the defense state its
    /// predecessor checkpointed. Proxies relaying to the restarted servent
    /// are healed so severed/stalled edges carry traffic again.
    ///
    /// Returns the new incarnation index (1 for the first restart).
    pub fn restart(&mut self, id: u32) -> std::io::Result<u32> {
        let prev =
            self.children.iter_mut().filter(|c| c.id == id).max_by_key(|c| c.launch).ok_or_else(
                || {
                    std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("no servent with id {id} in the mesh"),
                    )
                },
            )?;
        if matches!(prev.child.try_wait(), Ok(None)) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("servent {id} is still running; kill it before restarting"),
            ));
        }
        // Fully reap so the kernel has released the listening socket.
        let _ = prev.child.wait();
        let launch = prev.launch + 1;
        let child = self.spawn_node(id, launch)?;
        self.children.push(child);
        // Heal proxies on edges incident to the restarted servent: drop any
        // relays still pinned to the dead incarnation and resume forwarding
        // (the port — and thus the proxy target — is unchanged).
        for (&(dialer, acceptor), proxy) in &self.proxies {
            if dialer == id || acceptor == id {
                proxy.heal(None);
            }
        }
        // A late restart replays up to a full run after the original budget.
        let extended = Instant::now() + self.wall_budget();
        if extended > self.deadline {
            self.deadline = extended;
        }
        Ok(launch)
    }

    fn proxy_for(&self, edge: (u32, u32)) -> std::io::Result<&ChaosProxy> {
        let key = (edge.0.min(edge.1), edge.0.max(edge.1));
        self.proxies.get(&key).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("edge ({}, {}) is not proxied", edge.0, edge.1),
            )
        })
    }

    /// Cut the live sockets on a proxied edge; `mid_frame` tears a frame.
    pub fn sever(&self, edge: (u32, u32), mid_frame: bool) -> std::io::Result<()> {
        self.proxy_for(edge)?.sever(mid_frame);
        Ok(())
    }

    /// Freeze traffic on a proxied edge.
    pub fn stall(&self, edge: (u32, u32)) -> std::io::Result<()> {
        self.proxy_for(edge)?.stall();
        Ok(())
    }

    /// Unfreeze traffic on a proxied edge.
    pub fn resume(&self, edge: (u32, u32)) -> std::io::Result<()> {
        self.proxy_for(edge)?.resume();
        Ok(())
    }

    /// Restore forwarding on a proxied edge after a sever (cuts stale
    /// relays; fresh dials reach the backend again).
    pub fn heal(&self, edge: (u32, u32)) -> std::io::Result<()> {
        self.proxy_for(edge)?.heal(None);
        Ok(())
    }

    /// Wall-clock budget for a graceful run: connect grace + every tick +
    /// drain, plus generous slack for process startup and scheduling.
    pub fn wall_budget(&self) -> Duration {
        let ticks = (self.spec.minutes * 60 + 1) * self.spec.tick_ms;
        Duration::from_millis(ticks + 10_000)
    }

    /// Reap every child under the wall-clock deadline. Children still
    /// running at the deadline are killed and reported as hung — the driver
    /// itself never deadlocks on a stuck servent.
    pub fn collect(mut self) -> MeshReport {
        let deadline = self.deadline;
        let mut hung = Vec::new();
        loop {
            let mut all_done = true;
            for c in &mut self.children {
                match c.child.try_wait() {
                    Ok(Some(_)) => {}
                    Ok(None) => all_done = false,
                    Err(_) => {}
                }
            }
            if all_done {
                break;
            }
            if Instant::now() >= deadline {
                for c in &mut self.children {
                    if matches!(c.child.try_wait(), Ok(None)) {
                        let _ = c.child.kill();
                        let _ = c.child.wait();
                        hung.push(c.id);
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        // Final reap for zombies.
        for c in &mut self.children {
            let _ = c.child.wait();
        }

        // Chain incarnations: children are in launch order per id, so each
        // id's summaries accumulate oldest-first; `summaries` keeps the
        // latest readable one.
        let mut incarnations: BTreeMap<u32, Vec<WireSummary>> = BTreeMap::new();
        let mut summaries = BTreeMap::new();
        let mut got_summary: BTreeMap<u32, bool> = BTreeMap::new();
        for c in &self.children {
            let got = got_summary.entry(c.id).or_insert(false);
            if let Ok(s) = WireSummary::read_file(&c.summary_path) {
                summaries.insert(c.id, s.clone());
                incarnations.entry(c.id).or_default().push(s);
                *got = true;
            }
        }
        let missing: Vec<u32> =
            got_summary.iter().filter(|&(_, &got)| !got).map(|(&id, _)| id).collect();
        MeshReport {
            summaries,
            incarnations,
            missing,
            killed: self.killed.clone(),
            hung,
            wall: self.started.elapsed(),
        }
    }
}
