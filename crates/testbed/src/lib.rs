//! The §2.3 single-peer capacity testbed.
//!
//! The paper measures a three-peer LimeWire chain on a 100 Mbps LAN (Dell
//! OptiPlex GX300, P3-733, 256 MB):
//!
//! * **Peer A** — the DDoS-agent prototype: replays queries from the 24-hour
//!   monitoring-node trace at a configurable rate, "eventually ... at a rate
//!   of around 29,000 per minute".
//! * **Peer B** — a stock peer: for each received query it looks up its local
//!   sharing index and forwards the query on; it "started discarding queries"
//!   when the offered rate approached 15,000/minute, and dropped 47% of them
//!   at A's maximum rate.
//! * **Peer C** — a passive observer counting what B forwarded.
//!
//! We do not have the machines or the trace; [`PeerCapacityModel`] rebuilds
//! the measurement as a deterministic service-rate model (lookup + forward
//! cost per query) calibrated to the two published constants, and
//! [`ChainExperiment`] replays the A→B→C sweep to regenerate Figures 5 and 6.
//! [`collector`] emulates the trace-collection super-node.

//!
//! Beyond the §2.3 reproduction, this crate is also the **multi-process
//! chaos driver** for the wire deployment: [`wire`] launches a mesh of
//! `ddp-servent` processes over loopback TCP, [`proxy`] interposes
//! controllable TCP relays (stall, sever mid-frame) on chosen edges, and the
//! collector in [`wire`] gathers per-servent summaries for sim-vs-wire
//! cross-validation.

pub mod chain;
pub mod chaos;
pub mod collector;
pub mod logfile;
pub mod proxy;
pub mod wire;

pub use chain::{ChainExperiment, ChainPoint, PeerCapacityModel};
pub use chaos::{ChaosEvent, ChaosPlan, ChaosSchedule};
pub use collector::TraceCollector;
pub use logfile::{parse_log, read_log_file, write_log, write_log_file, LogError, ReplayAgent};
pub use proxy::ChaosProxy;
pub use wire::{locate_servent_bin, MeshReport, MeshSpec, NodeSpec, WireMesh};
