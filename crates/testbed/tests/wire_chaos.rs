//! Multi-process chaos run: 10 real `ddp-servent` processes over loopback
//! TCP, one flooding attacker, a SIGKILL'd good servent, and a socket severed
//! mid-frame. The mesh must still detect and cut the attacker, and the run
//! must finish inside its wall budget (no deadlock).
//!
//! Ignored by default because it needs the `ddp-servent` binary on disk:
//!
//! ```sh
//! cargo build -p ddp-servent
//! cargo test -p ddp-testbed --test wire_chaos -- --ignored
//! ```
//!
//! (or point `DDP_SERVENT_BIN` at the binary). CI runs this in the
//! `testbed-smoke` job.

use ddp_servent::ServentRole;
use ddp_testbed::{MeshSpec, NodeSpec, WireMesh};
use std::time::Duration;

/// Deterministic preferential-attachment-flavored graph on 10 nodes
/// (triangle seed, then each newcomer attaches to two earlier nodes).
fn edges() -> Vec<(u32, u32)> {
    vec![
        (0, 1),
        (0, 2),
        (1, 2),
        (3, 0),
        (3, 1),
        (4, 0),
        (4, 2),
        (5, 0),
        (5, 1),
        (6, 2),
        (6, 3),
        (7, 0),
        (7, 4),
        (8, 1),
        (8, 5),
        (9, 0),
        (9, 6),
    ]
}

#[test]
#[ignore = "spawns ddp-servent processes; run with --ignored after building the binary"]
fn chaos_mesh_survives_sigkill_and_severed_socket() {
    const ATTACKER: u32 = 4;
    const VICTIM: u32 = 9; // good, peripheral: killing it must not stall the rest
    const PROXIED: (u32, u32) = (1, 5); // good-good edge we sever mid-frame

    let out_dir = std::env::temp_dir().join(format!("ddp-chaos-{}", std::process::id()));
    let nodes: Vec<NodeSpec> = (0..10u32)
        .map(|id| NodeSpec {
            id,
            role: if id == ATTACKER {
                ServentRole::FloodingAgent { rate_qpm: 1_500, respond_reports: true }
            } else {
                ServentRole::Good
            },
        })
        .collect();
    let spec = MeshSpec {
        nodes,
        edges: edges(),
        proxied_edges: vec![PROXIED],
        minutes: 3,
        tick_ms: 30,
        seed: 42,
        query_rate_qpm: 2.0,
        out_dir: out_dir.clone(),
        checkpoint_every: None,
    };

    let mut mesh = WireMesh::launch(spec).expect("launch mesh");

    // Protocol second t lands at roughly startup + grace + t*tick_ms wall.
    // Detection needs two report rounds (~t=110); inject faults before that.
    std::thread::sleep(Duration::from_millis(2_500)); // ~t=60
    mesh.kill(VICTIM).expect("SIGKILL victim");
    std::thread::sleep(Duration::from_millis(600)); // ~t=80
    mesh.sever(PROXIED, true).expect("sever proxied edge mid-frame");

    let report = mesh.collect();

    assert!(report.hung.is_empty(), "servents hung past the wall budget: {:?}", report.hung);
    assert_eq!(report.killed, vec![VICTIM]);
    assert!(
        report.missing.contains(&VICTIM),
        "SIGKILL'd servent must have no (complete) summary; missing = {:?}",
        report.missing
    );
    // Everyone else came back with a parseable summary.
    for id in 0..10u32 {
        if id != VICTIM {
            assert!(
                report.summaries.contains_key(&id),
                "servent {id} wrote no summary; missing = {:?}",
                report.missing
            );
        }
    }

    // The attacker was detected and cut despite the chaos.
    let first_cut = report.first_cut_of(ATTACKER);
    assert!(first_cut.is_some(), "attacker was never cut; report: {report:?}");
    assert!(report.isolated(ATTACKER), "surviving servents still list the attacker as a neighbor");

    // The severed edge healed through supervised reconnect: at least one
    // endpoint re-dialed through the proxy.
    let reconnects: u64 = [PROXIED.0, PROXIED.1]
        .iter()
        .filter_map(|id| report.summaries.get(id))
        .map(|s| s.conn.reconnects)
        .sum();
    assert!(reconnects >= 1, "severed edge never reconnected");

    let _ = std::fs::remove_dir_all(&out_dir);
}
