//! End-to-end protocol-level tests: full servents over encoded frames.

use ddp_servent::{Harness, HarnessConfig, ServentConfig, ServentRole};
use ddp_topology::{DynamicGraph, NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph(n: usize, seed: u64) -> DynamicGraph {
    TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } }
        .generate(&mut StdRng::seed_from_u64(seed))
}

fn agent(rate_qpm: u32) -> ServentRole {
    ServentRole::FloodingAgent { rate_qpm, respond_reports: true }
}

#[test]
fn searches_resolve_over_the_wire() {
    let g = graph(30, 1);
    let mut h = Harness::new(&g, &[], HarnessConfig::default(), 7);
    h.run_minutes(3);
    let r = h.report();
    assert!(r.issued > 20, "expected a real workload, issued {}", r.issued);
    let rate = r.resolved as f64 / r.issued as f64;
    assert!(rate > 0.6, "resolution rate {rate} ({} / {})", r.resolved, r.issued);
    // Round trips through a TTL-5 flood with 1 s hops stay in seconds.
    assert!(
        r.mean_latency_secs >= 2.0 && r.mean_latency_secs <= 12.0,
        "mean latency {}",
        r.mean_latency_secs
    );
    assert!(r.cuts.is_empty(), "no attackers, no cuts: {:?}", r.cuts);
}

#[test]
fn flooding_agent_is_disconnected_by_every_neighbor() {
    let g = graph(30, 2);
    let attacker = NodeId(4);
    let degree = g.degree(attacker);
    assert!(degree >= 3);
    let mut h = Harness::new(&g, &[(attacker, agent(1_500))], HarnessConfig::default(), 9);
    h.run_minutes(4);
    let r = h.report();
    let cut_by: Vec<NodeId> =
        r.cuts.iter().filter(|&&(_, _, s)| s == attacker).map(|&(_, o, _)| o).collect();
    assert!(
        cut_by.len() >= degree.saturating_sub(1),
        "attacker (degree {degree}) only cut by {cut_by:?}"
    );
    assert!(h.servents[attacker.index()].neighbors().is_empty(), "attacker fully isolated");
    // Detection happened within the protocol's own latency budget:
    // one minute of counting + 50 s of report collection + slack.
    let first_cut = r.cuts.iter().find(|&&(_, _, s)| s == attacker).unwrap().0;
    assert!(first_cut <= 3 * 60 + 55, "first cut at {first_cut}s");
}

#[test]
fn innocent_forwarders_survive_the_investigation() {
    let g = graph(30, 3);
    let attacker = NodeId(4);
    let mut h = Harness::new(&g, &[(attacker, agent(1_500))], HarnessConfig::default(), 11);
    h.run_minutes(4);
    let r = h.report();
    let wrongly_cut: Vec<_> = r.cuts.iter().filter(|&&(_, _, s)| s != attacker).collect();
    // A handful of post-isolation wrongful cuts is the paper's own §3.4
    // consequence: the freshly isolated agent stops reporting, so the
    // forwarders that carried its traffic briefly lose their exculpatory
    // evidence ("peer m could be treated as a bad peer and be
    // disconnected"). They must stay a small minority.
    assert!(
        wrongly_cut.len() <= 6,
        "too many innocent peers cut at protocol level: {wrongly_cut:?}"
    );
}

#[test]
fn silent_agent_is_still_isolated() {
    let g = graph(30, 4);
    let attacker = NodeId(6);
    let role = ServentRole::FloodingAgent { rate_qpm: 1_500, respond_reports: false };
    let mut h = Harness::new(&g, &[(attacker, role)], HarnessConfig::default(), 13);
    h.run_minutes(5);
    assert!(
        h.servents[attacker.index()].neighbors().is_empty(),
        "refusing lists and reports must not shield the agent; still connected to {:?}",
        h.servents[attacker.index()].neighbors()
    );
}

#[test]
fn service_recovers_after_the_cut() {
    let g = graph(40, 5);
    let attacker = NodeId(2);
    let mut h = Harness::new(&g, &[(attacker, agent(1_500))], HarnessConfig::default(), 17);
    // Minute 1-4: attack + detection.
    h.run_minutes(4);
    let during = h.report();
    // Minutes 5-8: attacker is gone; compare resolution of fresh queries.
    h.run_minutes(4);
    let after = h.report();
    let late_issued = after.issued - during.issued;
    let late_resolved = after.resolved - during.resolved;
    assert!(late_issued > 10);
    let late_rate = late_resolved as f64 / late_issued as f64;
    assert!(late_rate > 0.5, "post-recovery resolution {late_rate}");
}

#[test]
fn runs_are_deterministic() {
    let g = graph(25, 6);
    let mk = || {
        let mut h = Harness::new(&g, &[(NodeId(3), agent(1_200))], HarnessConfig::default(), 21);
        h.run_minutes(3);
        h.report()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b);
}

#[test]
fn wire_volume_is_dominated_by_the_attack() {
    let g = graph(30, 7);
    let quiet = {
        let mut h = Harness::new(&g, &[], HarnessConfig::default(), 23);
        h.run_minutes(2);
        h.report()
    };
    let attacked = {
        let mut h = Harness::new(&g, &[(NodeId(4), agent(1_500))], HarnessConfig::default(), 23);
        h.run_minutes(2);
        h.report()
    };
    assert!(
        attacked.frames > quiet.frames * 3,
        "attack frames {} vs quiet {}",
        attacked.frames,
        quiet.frames
    );
    assert!(attacked.bytes > quiet.bytes * 3);
}

#[test]
fn per_minute_counters_match_the_wire() {
    // Two peers, one query: the receiver's In counter sees exactly one.
    let mut g = DynamicGraph::new(2);
    g.add_edge(NodeId(0), NodeId(1));
    let cfg = HarnessConfig {
        query_rate_qpm: 0.0, // no background noise
        ..HarnessConfig::default()
    };
    let mut h = Harness::new(&g, &[], cfg, 1);
    let mut out = Vec::new();
    h.servents[0].issue_query("item-001", 0, &mut out);
    for (to, frame) in out {
        h.network.send(0, NodeId(0), to, frame);
    }
    h.run_minutes(1);
    let (out0, in0) = h.servents[1].prev_minute_counters(NodeId(0)).unwrap();
    assert_eq!(out0, 0, "peer 1 sent nothing to 0 as a Query");
    assert_eq!(in0, 1, "peer 1 received exactly the one query");
}

#[test]
fn servent_config_defaults_are_paper_faithful() {
    let c = ServentConfig::default();
    assert_eq!(c.report_deadline_secs, 50);
    assert_eq!(c.police.warning_threshold_qpm, 500);
    assert_eq!(c.police.cut_threshold, 5.0);
}

#[test]
fn bg_liveness_pings_flow_and_refresh() {
    // A quiet overlay still exchanges BG pings: members that stay silent get
    // probed each minute, and their pongs keep them in the report pool.
    let g = graph(20, 8);
    let cfg = HarnessConfig { query_rate_qpm: 0.2, ..HarnessConfig::default() };
    let mut h = Harness::new(&g, &[], cfg, 31);
    h.run_minutes(3);
    let r = h.report();
    // Pings/pongs happened (frames well beyond the handful of queries).
    assert!(r.frames > r.issued as u64 * 10, "{} frames for {} queries", r.frames, r.issued);
    assert!(r.cuts.is_empty());
}
