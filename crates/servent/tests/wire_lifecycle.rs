//! Connection-lifecycle edge cases for the supervised wire runtime:
//! handshake deadlines, backoff capping, half-open peers,
//! drain-on-shutdown, and checkpoint-resume failure modes. Everything here
//! runs over real loopback sockets and finishes in a few seconds — no
//! ignored tests.

use bytes::Bytes;
use ddp_protocol::{decode_message, Guid, Message, NeighborTraffic, Payload};
use ddp_servent::wire::backoff::Backoff;
use ddp_servent::wire::checkpoint::encode_payload;
use ddp_servent::wire::conn::{dial, spawn_writer, ConnEvent, SendQueue, WireStats};
use ddp_servent::wire::{snap_path, CheckpointSpec, HandshakeError, WireConfig, WireServent};
use ddp_servent::{Servent, ServentConfig, ServentRole};
use ddp_snapshot::{write_snapshot, SnapshotError};
use ddp_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// A listener that accepts connections but never says hello.
fn mute_listener() -> (std::net::SocketAddr, TcpListener) {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap();
    (addr, l)
}

#[test]
fn handshake_against_a_mute_peer_times_out() {
    let (addr, listener) = mute_listener();
    // Keep the socket open but silent: accept in the background, hold it.
    let holder = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
    let started = Instant::now();
    let err = dial(addr, 7, 7000, 500, 300).expect_err("mute peer must not handshake");
    assert!(matches!(err, HandshakeError::Timeout), "got {err:?}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "timeout must honor the deadline, took {:?}",
        started.elapsed()
    );
    drop(holder.join());
}

#[test]
fn handshake_rejects_garbage_magic() {
    let (addr, listener) = mute_listener();
    let h = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        use std::io::Write as _;
        let _ = s.write_all(b"HTTP/1.1 200 OK\r\n\r\nsixteen bytes pad");
        s
    });
    let err = dial(addr, 7, 7000, 500, 500).expect_err("garbage hello must fail");
    assert!(matches!(err, HandshakeError::BadMagic), "got {err:?}");
    drop(h.join());
}

#[test]
fn backoff_is_capped_and_deterministic() {
    let b = Backoff { base_ms: 100, cap_ms: 3_000 };
    let mut rng = StdRng::seed_from_u64(1);
    let mut prev_max = 0u64;
    for attempt in 0..64 {
        let d = b.delay_ms(attempt, &mut rng);
        assert!(d <= 3_000, "attempt {attempt}: delay {d} above cap");
        assert!(d >= 1, "attempt {attempt}: delay must be positive");
        prev_max = prev_max.max(d);
    }
    // Far attempts saturate at the cap's jitter band [cap/2, cap].
    let mut rng = StdRng::seed_from_u64(2);
    for attempt in 60..70 {
        let d = b.delay_ms(attempt, &mut rng);
        assert!((1_500..=3_000).contains(&d), "saturated attempt {attempt}: {d}");
    }
    assert!(prev_max <= 3_000);
    // Same seed, same sequence: reconnect schedules are reproducible.
    let (mut r1, mut r2) = (StdRng::seed_from_u64(9), StdRng::seed_from_u64(9));
    for attempt in 0..16 {
        assert_eq!(b.delay_ms(attempt, &mut r1), b.delay_ms(attempt, &mut r2));
    }
}

/// A half-open peer — in the address book, accepts TCP, never handshakes —
/// must cost bounded dial attempts (handshake failures + capped backoff),
/// never a link, and never block the protocol run from completing.
#[test]
fn half_open_peer_does_not_stall_the_run() {
    let (mute_addr, mute) = mute_listener();
    // Service the mute listener forever: accept and hold, saying nothing.
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = mute.accept() {
            held.push(s);
        }
    });

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut book = HashMap::new();
    book.insert(2u32, mute_addr);
    let servent = Servent::new(NodeId(1), ServentRole::Good, ServentConfig::default());
    let cfg = WireConfig {
        tick_ms: 20,
        connect_timeout_ms: 200,
        handshake_timeout_ms: 100,
        reconnect_base_ms: 50,
        reconnect_cap_ms: 200,
        connect_grace_ms: 100,
        drain_timeout_ms: 300,
        ..WireConfig::default()
    };
    let mut ws = WireServent::new(
        servent,
        listener,
        book,
        &[2], // overlay neighbor that will never complete a handshake
        cfg,
        vec!["item".into()],
        0.0,
        7,
    )
    .unwrap();
    let started = Instant::now();
    let report = ws.run(1); // one protocol minute, compressed
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "half-open peer stalled the run: {:?}",
        started.elapsed()
    );
    assert_eq!(report.protocol_secs, 60);
    assert!(
        report.conn.handshake_failures >= 2,
        "supervisor should have retried the half-open peer: {:?}",
        report.conn
    );
    assert_eq!(report.conn.dials_ok, 0, "no handshake ever completed");
    assert_eq!(report.conn.frames_sent, 0, "no link, nothing sent");
}

/// Drain-on-shutdown: every Neighbor_Traffic frame queued before `finish()`
/// reaches the peer's socket before the writer closes it.
#[test]
fn finish_flushes_queued_neighbor_traffic_before_close() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let reader = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut all = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => all.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("reader: {e}"),
            }
        }
        all
    });

    let stream = TcpStream::connect(addr).unwrap();
    let queue = Arc::new(SendQueue::new(1_024));
    let stats = Arc::new(WireStats::default());
    let (tx, rx) = mpsc::sync_channel::<ConnEvent>(64);
    let writer = spawn_writer(stream, 9, 1, queue.clone(), tx, stats.clone(), 1_000);

    const N: usize = 50;
    for i in 0..N {
        let msg = Message::new(
            Guid::derived(9, i as u64),
            1,
            Payload::NeighborTraffic(NeighborTraffic {
                source_ip: std::net::Ipv4Addr::new(10, 0, 0, 9),
                suspect_ip: std::net::Ipv4Addr::new(10, 0, 0, 4),
                timestamp: i as u32,
                outgoing_queries: 1_500,
                incoming_queries: 3,
            }),
        );
        assert_eq!(queue.push(ddp_protocol::encode_message(&msg)), 0, "no eviction");
    }
    queue.finish(); // graceful: drain everything, then close

    writer.join().unwrap();
    let bytes = reader.join().unwrap();

    // The peer got every queued frame, whole, in order.
    let mut buf = Bytes::from(bytes);
    let mut got = 0usize;
    while !buf.is_empty() {
        let msg = decode_message(&mut buf).expect("whole frames only");
        match msg.payload {
            Payload::NeighborTraffic(nt) => {
                assert_eq!(nt.timestamp as usize, got, "frames in order");
                got += 1;
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }
    assert_eq!(got, N, "drain must flush the entire queue before closing");
    assert_eq!(queue.dropped(), 0);
    // The writer reported a graceful close, not an error.
    let ev = rx.recv_timeout(Duration::from_secs(1)).unwrap();
    match ev {
        ConnEvent::Closed { reason, .. } => {
            assert!(
                matches!(reason, ddp_servent::wire::CloseReason::Drained),
                "expected Drained, got {reason:?}"
            )
        }
        other => panic!("expected Closed, got {other:?}"),
    }
}

// --- checkpoint-resume failure modes -------------------------------------
//
// A damaged or foreign checkpoint must degrade to a *logged cold start*
// with the right `SnapshotError` variant — never a panic, and the run
// still completes end to end.

/// A standalone servent (no peers) with checkpointing pointed at `dir`.
fn loner_with_checkpointing(dir: &Path, context: u64) -> WireServent {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let servent = Servent::new(NodeId(1), ServentRole::Good, ServentConfig::default());
    let cfg = WireConfig {
        tick_ms: 5,
        connect_grace_ms: 20,
        drain_timeout_ms: 50,
        ..WireConfig::default()
    };
    let mut ws =
        WireServent::new(servent, listener, HashMap::new(), &[], cfg, vec!["item".into()], 0.0, 7)
            .unwrap();
    ws.set_checkpointing(CheckpointSpec { dir: dir.to_path_buf(), every_ticks: 10, context });
    ws
}

/// Write a well-formed checkpoint for servent 1 at tick 42 under `context`.
fn plant_checkpoint(dir: &Path, context: u64) {
    std::fs::create_dir_all(dir).unwrap();
    let donor = Servent::new(NodeId(1), ServentRole::Good, ServentConfig::default());
    let payload = encode_payload(42, 0, 5, [1, 2, 3, 4], &[], &donor);
    write_snapshot(&snap_path(dir, 1), context, &payload).unwrap();
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ddp-lifecycle-{}-{name}", std::process::id()))
}

#[test]
fn valid_checkpoint_resumes_and_the_run_completes() {
    let dir = scratch_dir("valid");
    plant_checkpoint(&dir, 0xC0FFEE);
    let mut ws = loner_with_checkpointing(&dir, 0xC0FFEE);
    let resumed = ws.try_resume().expect("well-formed checkpoint must resume");
    assert_eq!(resumed, Some(43), "resume restarts at the tick after the checkpoint");
    assert_eq!(ws.generation(), 1);
    let report = ws.run(0);
    assert_eq!(report.generation, 1);
    assert_eq!(report.conn.resumes, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_checkpoint_is_a_typed_cold_start() {
    let dir = scratch_dir("truncated");
    plant_checkpoint(&dir, 7);
    let path = snap_path(&dir, 1);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let mut ws = loner_with_checkpointing(&dir, 7);
    let err = ws.try_resume().expect_err("a truncated checkpoint must be rejected");
    assert_eq!(err.kind(), "Truncated", "got {err:?}");
    // The rejection is a cold start, not a crash: the run still completes.
    assert_eq!(ws.generation(), 0);
    let report = ws.run(0);
    assert_eq!(report.generation, 0);
    assert_eq!(report.conn.resumes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_bit_is_a_checksum_mismatch_cold_start() {
    let dir = scratch_dir("bitflip");
    plant_checkpoint(&dir, 7);
    let path = snap_path(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let mut ws = loner_with_checkpointing(&dir, 7);
    let err = ws.try_resume().expect_err("a bit-flipped checkpoint must be rejected");
    assert_eq!(err.kind(), "ChecksumMismatch", "got {err:?}");
    assert_eq!(ws.generation(), 0);
    let report = ws.run(0);
    assert_eq!(report.generation, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_config_checkpoint_is_a_context_mismatch_cold_start() {
    let dir = scratch_dir("foreign");
    plant_checkpoint(&dir, 111);
    let mut ws = loner_with_checkpointing(&dir, 222);
    let err = ws.try_resume().expect_err("a foreign-config checkpoint must be rejected");
    match err {
        SnapshotError::ContextMismatch { expected, found } => {
            assert_eq!(expected, 222);
            assert_eq!(found, 111);
        }
        other => panic!("expected ContextMismatch, got {other:?}"),
    }
    assert_eq!(ws.generation(), 0);
    let report = ws.run(0);
    assert_eq!(report.generation, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
