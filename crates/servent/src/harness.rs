//! Drives a population of servents second-by-second over the in-memory
//! network.

use crate::network::InMemNetwork;
use crate::servent::{Outbox, Servent, ServentConfig, ServentRole};
use ddp_topology::{DynamicGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Base servent configuration (library filled per peer by the harness).
    pub servent: ServentConfig,
    /// Distinct shareable strings; each peer gets a few, queries target them.
    pub catalog: Vec<String>,
    /// Items each good peer shares.
    pub items_per_peer: usize,
    /// Mean queries per good peer per minute.
    pub query_rate_qpm: f64,
    /// One-way frame latency, seconds.
    pub latency_secs: u64,
    /// Bound on frames in flight (`None` = unbounded, the historical
    /// default). Under a flood the bound sheds the oldest frames and counts
    /// them, like the wire runtime's send queues.
    pub network_capacity: Option<usize>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            servent: ServentConfig::default(),
            catalog: (0..50).map(|i| format!("item-{i:03}")).collect(),
            items_per_peer: 8,
            query_rate_qpm: 2.0,
            latency_secs: 1,
            network_capacity: None,
        }
    }
}

/// End-of-run telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessReport {
    /// Queries issued by good peers.
    pub issued: usize,
    /// Queries that received at least one hit.
    pub resolved: usize,
    /// Mean seconds to the first hit.
    pub mean_latency_secs: f64,
    /// Every defensive disconnection: (second, observer, suspect).
    pub cuts: Vec<(u64, NodeId, NodeId)>,
    /// Total frames the network carried.
    pub frames: u64,
    /// Total bytes the network carried.
    pub bytes: u64,
    /// Frames the bounded network shed (0 when unbounded).
    pub frames_dropped: u64,
}

/// The protocol-level test harness.
///
/// ```
/// use ddp_servent::{Harness, HarnessConfig, ServentRole};
/// use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let graph = TopologyConfig { n: 12, model: TopologyModel::BarabasiAlbert { m: 2 } }
///     .generate(&mut StdRng::seed_from_u64(1));
/// let agent = (NodeId(3), ServentRole::FloodingAgent { rate_qpm: 900, respond_reports: true });
/// let mut h = Harness::new(&graph, &[agent], HarnessConfig::default(), 5);
/// h.run_minutes(3);
/// assert!(h.servents[3].neighbors().is_empty(), "the agent ends isolated");
/// ```
pub struct Harness {
    pub servents: Vec<Servent>,
    pub network: InMemNetwork,
    cfg: HarnessConfig,
    rng: StdRng,
    now: u64,
    issued: usize,
}

impl Harness {
    /// Build servents over `graph`, compromising `attackers` with the given
    /// role parameters.
    pub fn new(
        graph: &DynamicGraph,
        attackers: &[(NodeId, ServentRole)],
        cfg: HarnessConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = graph.node_count();
        let mut servents: Vec<Servent> = (0..n)
            .map(|i| {
                let id = NodeId::from_index(i);
                let role = attackers
                    .iter()
                    .find(|(a, _)| *a == id)
                    .map(|&(_, r)| r)
                    .unwrap_or(ServentRole::Good);
                let mut sc = cfg.servent.clone();
                if matches!(role, ServentRole::Good) && !cfg.catalog.is_empty() {
                    sc.library = (0..cfg.items_per_peer)
                        .map(|_| cfg.catalog[rng.gen_range(0..cfg.catalog.len())].clone())
                        .collect();
                }
                Servent::new(id, role, sc)
            })
            .collect();
        for (u, servent) in servents.iter_mut().enumerate() {
            for h in graph.neighbors(NodeId::from_index(u)) {
                servent.connect(h.peer);
            }
        }
        let network = match cfg.network_capacity {
            Some(cap) => InMemNetwork::bounded(cfg.latency_secs, cap),
            None => InMemNetwork::new(cfg.latency_secs),
        };
        let mut harness = Harness { servents, network, cfg, rng, now: 0, issued: 0 };
        // Connect-time neighbor-list exchange: "a joining peer creates its
        // BG membership after its first neighbor list exchanging operation"
        // (§3.1) — servents announce immediately on connecting, so Buddy
        // Groups exist before the first suspicion can strike.
        for i in 0..harness.servents.len() {
            let mut outbox = Outbox::new();
            harness.servents[i].on_minute(0, 0, &mut outbox);
            harness.flush(NodeId::from_index(i), outbox);
        }
        harness
    }

    /// Current simulated second.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn flush(&mut self, from: NodeId, outbox: Outbox) {
        for (to, frame) in outbox {
            self.network.send(self.now, from, to, frame);
        }
    }

    /// Advance one second: deliver frames, drive per-second behavior, and on
    /// minute boundaries run the DD-POLICE steps.
    pub fn step_second(&mut self) {
        self.now += 1;
        // Deliver due frames.
        for (from, to, frame) in self.network.deliveries(self.now) {
            let mut outbox = Outbox::new();
            if let Some(s) = self.servents.get_mut(to.index()) {
                // Overlay traffic needs a live link; Bye (0x02) must land on
                // the peer being cut, and Neighbor_Traffic (0x83) travels
                // over *direct* connections between Buddy-Group members —
                // they learned each other's IPs from the exchanged list and
                // are generally not overlay neighbors.
                let kind = decode_kind(&frame);
                // Direct (non-overlay) traffic: Bye, Neighbor_Traffic, and
                // the BG liveness Ping/Pong all run peer-to-peer between
                // members that know each other's addresses.
                if s.is_neighbor(from)
                    || matches!(kind, Some(0x02) | Some(0x83) | Some(0x00) | Some(0x01))
                {
                    s.handle_frame(from, frame, self.now, &mut outbox);
                }
            }
            self.flush(to, outbox);
        }
        // Good peers issue queries (Poisson approximated per second).
        let per_second = self.cfg.query_rate_qpm / 60.0;
        for i in 0..self.servents.len() {
            if !matches!(self.servents[i].role(), ServentRole::Good) {
                continue;
            }
            if self.rng.gen::<f64>() < per_second {
                let target =
                    self.cfg.catalog[self.rng.gen_range(0..self.cfg.catalog.len())].clone();
                let mut outbox = Outbox::new();
                self.servents[i].issue_query(&target, self.now, &mut outbox);
                self.issued += 1;
                self.flush(NodeId::from_index(i), outbox);
            }
        }
        // Per-second behavior (attack emission, investigation deadlines).
        for i in 0..self.servents.len() {
            let mut outbox = Outbox::new();
            self.servents[i].on_second(self.now, &mut outbox);
            self.flush(NodeId::from_index(i), outbox);
        }
        // Minute boundary.
        if self.now.is_multiple_of(60) {
            let minute = self.now / 60;
            for i in 0..self.servents.len() {
                let mut outbox = Outbox::new();
                self.servents[i].on_minute(self.now, minute, &mut outbox);
                self.flush(NodeId::from_index(i), outbox);
            }
        }
    }

    /// Run `minutes` of simulated time.
    pub fn run_minutes(&mut self, minutes: u64) {
        for _ in 0..minutes * 60 {
            self.step_second();
        }
    }

    /// Summarize.
    pub fn report(&self) -> HarnessReport {
        let mut resolved = 0usize;
        let mut latency_sum = 0u64;
        let mut cuts = Vec::new();
        for s in &self.servents {
            resolved += s.hits.len();
            latency_sum += s.hits.iter().map(|&(_, l)| l).sum::<u64>();
            for &(t, suspect) in &s.cut_log {
                cuts.push((t, s.id, suspect));
            }
        }
        cuts.sort_unstable_by_key(|&(t, ..)| t);
        HarnessReport {
            issued: self.issued,
            resolved,
            mean_latency_secs: if resolved == 0 {
                0.0
            } else {
                latency_sum as f64 / resolved as f64
            },
            cuts,
            frames: self.network.frames_sent,
            bytes: self.network.bytes_sent,
            frames_dropped: self.network.frames_dropped,
        }
    }
}

/// Peek at a frame's payload-kind byte without a full decode (header offset
/// 16). Used to let Bye frames through after a link is cut so both sides
/// converge.
fn decode_kind(frame: &bytes::Bytes) -> Option<u8> {
    frame.get(16).copied()
}
