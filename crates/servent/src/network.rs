//! In-memory overlay transport: encoded frames with one-second delivery.
//!
//! Every frame crosses the network as bytes (`ddp-protocol` encoding), so
//! the codec is exercised on every hop exactly as a socket would.

use bytes::Bytes;
use ddp_topology::NodeId;
use std::collections::VecDeque;

/// A frame in flight.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    from: NodeId,
    to: NodeId,
    frame: Bytes,
}

/// The in-memory network: a single delay queue plus delivery buffers.
#[derive(Debug, Default)]
pub struct InMemNetwork {
    queue: VecDeque<InFlight>,
    /// One-way latency in seconds.
    pub latency_secs: u64,
    /// Bound on frames in flight; `None` keeps the historical unbounded
    /// behavior (and byte-identical results for existing experiments).
    pub capacity: Option<usize>,
    /// Total frames ever sent (telemetry).
    pub frames_sent: u64,
    /// Total bytes ever sent (telemetry).
    pub bytes_sent: u64,
    /// Frames evicted because the in-flight bound was hit (drop-oldest,
    /// mirroring the wire runtime's send-queue policy).
    pub frames_dropped: u64,
}

impl InMemNetwork {
    /// Network with the given one-way latency (seconds), unbounded.
    pub fn new(latency_secs: u64) -> Self {
        InMemNetwork { latency_secs, ..Default::default() }
    }

    /// Network with at most `capacity` frames in flight; the oldest frame
    /// is dropped (and counted) to admit a new one beyond that.
    pub fn bounded(latency_secs: u64, capacity: usize) -> Self {
        InMemNetwork { latency_secs, capacity: Some(capacity.max(1)), ..Default::default() }
    }

    /// Enqueue a frame from `from` to `to` at time `now`.
    pub fn send(&mut self, now: u64, from: NodeId, to: NodeId, frame: Bytes) {
        self.frames_sent += 1;
        self.bytes_sent += frame.len() as u64;
        if let Some(cap) = self.capacity {
            while self.queue.len() >= cap {
                self.queue.pop_front();
                self.frames_dropped += 1;
            }
        }
        self.queue.push_back(InFlight { deliver_at: now + self.latency_secs, from, to, frame });
    }

    /// Pop every frame due at or before `now`, in send order.
    pub fn deliveries(&mut self, now: u64) -> Vec<(NodeId, NodeId, Bytes)> {
        let mut out = Vec::new();
        // Frames are enqueued in nondecreasing deliver_at order (constant
        // latency), so the due prefix is contiguous.
        while let Some(head) = self.queue.front() {
            if head.deliver_at > now {
                break;
            }
            let f = self.queue.pop_front().expect("checked front");
            out.push((f.from, f.to, f.frame));
        }
        out
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_latency_and_order() {
        let mut net = InMemNetwork::new(1);
        net.send(0, NodeId(1), NodeId(2), Bytes::from_static(b"a"));
        net.send(0, NodeId(1), NodeId(3), Bytes::from_static(b"b"));
        assert!(net.deliveries(0).is_empty(), "nothing due before latency");
        let due = net.deliveries(1);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].2.as_ref(), b"a");
        assert_eq!(due[1].2.as_ref(), b"b");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn telemetry_counts_frames_and_bytes() {
        let mut net = InMemNetwork::new(0);
        net.send(5, NodeId(0), NodeId(1), Bytes::from_static(b"xyz"));
        assert_eq!(net.frames_sent, 1);
        assert_eq!(net.bytes_sent, 3);
        assert_eq!(net.frames_dropped, 0);
        assert_eq!(net.deliveries(5).len(), 1);
    }

    #[test]
    fn bounded_network_drops_oldest_and_counts() {
        let mut net = InMemNetwork::bounded(1, 2);
        net.send(0, NodeId(1), NodeId(2), Bytes::from_static(b"a"));
        net.send(0, NodeId(1), NodeId(2), Bytes::from_static(b"b"));
        net.send(0, NodeId(1), NodeId(2), Bytes::from_static(b"c"));
        assert_eq!(net.frames_dropped, 1);
        assert_eq!(net.in_flight(), 2);
        let due = net.deliveries(1);
        // Oldest ("a") was evicted; send order is preserved for the rest.
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].2.as_ref(), b"b");
        assert_eq!(due[1].2.as_ref(), b"c");
        // frames_sent still counts every attempted send.
        assert_eq!(net.frames_sent, 3);
    }

    #[test]
    fn unbounded_network_never_drops() {
        let mut net = InMemNetwork::new(0);
        for i in 0..10_000u32 {
            net.send(0, NodeId(1), NodeId(2), Bytes::from(i.to_le_bytes().to_vec()));
        }
        assert_eq!(net.frames_dropped, 0);
        assert_eq!(net.in_flight(), 10_000);
    }
}
