//! `ddp-servent` — one DD-POLICE servent as a real networked process.
//!
//! Speaks the 23-byte Gnutella wire format over TCP (threaded `std::net`
//! reactor, no async runtime). Launched in fleets by the `ddp-testbed`
//! chaos driver; runs standalone too:
//!
//! ```text
//! ddp-servent --id 0 --listen 127.0.0.1:7000 \
//!   --peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002 \
//!   --neighbors 1,2 --role good --minutes 3 --tick-ms 50 \
//!   --seed 42 --out /tmp/s0.summary
//! ```
//!
//! On graceful completion the process writes a [`WireSummary`] file (atomic
//! temp+rename); a SIGKILL'd process leaves no summary, which is exactly
//! the signal the collector uses to tell crash from hang.

use ddp_servent::wire::{config_fingerprint, CheckpointSpec, WireConfig, WireServent, WireSummary};
use ddp_servent::{Servent, ServentConfig, ServentRole};
use ddp_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::process::ExitCode;

const USAGE: &str = "\
ddp-servent --id N --listen ADDR --peers id=addr[,id=addr...] --neighbors id[,id...]
            [--role good|agent] [--rate-qpm N] [--respond-reports]
            [--minutes N] [--tick-ms N] [--seed N] [--query-rate-qpm F]
            [--catalog-size N] [--items-per-peer N] [--out FILE]
            [--resume-dir DIR] [--checkpoint-every N]
            [--monitor exact|sketch[:w=..,d=..,k=..,salt=..]]

Crash recovery: --resume-dir names a directory of DDPSNAP1 checkpoints
(s<id>.snap). On start the servent resumes from its checkpoint when one
exists and matches this configuration; a corrupt, truncated, or foreign
checkpoint is logged and the servent cold-starts instead. Checkpoints are
written every --checkpoint-every protocol seconds (default 30 when
--resume-dir is given).";

struct Args {
    id: u32,
    listen: SocketAddr,
    peers: HashMap<u32, SocketAddr>,
    neighbors: Vec<u32>,
    role: ServentRole,
    minutes: u64,
    tick_ms: u64,
    seed: u64,
    query_rate_qpm: f64,
    catalog_size: usize,
    items_per_peer: usize,
    out: Option<String>,
    resume_dir: Option<String>,
    checkpoint_every: u64,
    monitor: ddp_police::MonitorBackend,
}

fn parse_args() -> Result<Args, String> {
    let mut id: Option<u32> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut peers: HashMap<u32, SocketAddr> = HashMap::new();
    let mut neighbors: Vec<u32> = Vec::new();
    let mut role_name = String::from("good");
    let mut rate_qpm: u32 = 1_500;
    let mut respond_reports = false;
    let mut minutes: u64 = 4;
    let mut tick_ms: u64 = 50;
    let mut seed: u64 = 42;
    let mut query_rate_qpm: f64 = 2.0;
    let mut catalog_size: usize = 50;
    let mut items_per_peer: usize = 8;
    let mut out: Option<String> = None;
    let mut resume_dir: Option<String> = None;
    let mut checkpoint_every: u64 = 30;
    let mut monitor = ddp_police::MonitorBackend::Exact;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--id" => id = Some(value(&mut i, flag)?.parse().map_err(|e| format!("--id: {e}"))?),
            "--listen" => {
                listen = Some(value(&mut i, flag)?.parse().map_err(|e| format!("--listen: {e}"))?)
            }
            "--peers" => {
                for pair in value(&mut i, flag)?.split(',').filter(|s| !s.is_empty()) {
                    let (pid, addr) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("--peers: `{pair}` is not id=addr"))?;
                    peers.insert(
                        pid.parse().map_err(|e| format!("--peers id `{pid}`: {e}"))?,
                        addr.parse().map_err(|e| format!("--peers addr `{addr}`: {e}"))?,
                    );
                }
            }
            "--neighbors" => {
                for part in value(&mut i, flag)?.split(',').filter(|s| !s.is_empty()) {
                    neighbors.push(part.parse().map_err(|e| format!("--neighbors `{part}`: {e}"))?);
                }
            }
            "--role" => role_name = value(&mut i, flag)?,
            "--rate-qpm" => {
                rate_qpm = value(&mut i, flag)?.parse().map_err(|e| format!("--rate-qpm: {e}"))?
            }
            "--respond-reports" => respond_reports = true,
            "--minutes" => {
                minutes = value(&mut i, flag)?.parse().map_err(|e| format!("--minutes: {e}"))?
            }
            "--tick-ms" => {
                tick_ms = value(&mut i, flag)?.parse().map_err(|e| format!("--tick-ms: {e}"))?
            }
            "--seed" => seed = value(&mut i, flag)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--query-rate-qpm" => {
                query_rate_qpm =
                    value(&mut i, flag)?.parse().map_err(|e| format!("--query-rate-qpm: {e}"))?
            }
            "--catalog-size" => {
                catalog_size =
                    value(&mut i, flag)?.parse().map_err(|e| format!("--catalog-size: {e}"))?
            }
            "--items-per-peer" => {
                items_per_peer =
                    value(&mut i, flag)?.parse().map_err(|e| format!("--items-per-peer: {e}"))?
            }
            "--out" => out = Some(value(&mut i, flag)?),
            "--resume-dir" => resume_dir = Some(value(&mut i, flag)?),
            "--checkpoint-every" => {
                checkpoint_every =
                    value(&mut i, flag)?.parse().map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--monitor" => monitor = ddp_police::MonitorBackend::parse(&value(&mut i, flag)?)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    let id = id.ok_or("--id is required")?;
    let listen = listen.ok_or("--listen is required")?;
    let role = match role_name.as_str() {
        "good" => ServentRole::Good,
        "agent" => ServentRole::FloodingAgent { rate_qpm, respond_reports },
        other => return Err(format!("--role must be good|agent, got `{other}`")),
    };
    // Deterministic from the run seed: an unsalted sketch folds the seed in,
    // so two processes with equal seeds collide identically (and a resumed
    // incarnation rebuilds the exact hash functions its checkpoint assumed).
    if let ddp_police::MonitorBackend::Sketch(ref mut p) = monitor {
        p.salt ^= seed;
    }
    Ok(Args {
        id,
        listen,
        peers,
        neighbors,
        role,
        minutes,
        tick_ms,
        seed,
        query_rate_qpm,
        catalog_size,
        items_per_peer,
        out,
        resume_dir,
        checkpoint_every,
        monitor,
    })
}

/// Canonical role string for the checkpoint config fingerprint — every knob
/// that changes the role's behavior participates.
fn role_fingerprint_name(role: ServentRole) -> String {
    match role {
        ServentRole::Good => "good".into(),
        ServentRole::FloodingAgent { rate_qpm, respond_reports } => {
            format!("agent:{rate_qpm}:{}", u8::from(respond_reports))
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ddp-servent: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let catalog: Vec<String> = (0..args.catalog_size).map(|i| format!("item-{i:03}")).collect();
    let mut cfg = ServentConfig::default();
    cfg.police.monitor = args.monitor;
    let monitor_label = match args.monitor {
        ddp_police::MonitorBackend::Exact => String::new(),
        backend => backend.label(),
    };
    if matches!(args.role, ServentRole::Good) && !catalog.is_empty() {
        // Per-process library draw; seed folded with the id so every peer
        // shares a different slice of the catalog, reproducibly.
        let mut lib_rng =
            StdRng::seed_from_u64(args.seed ^ (args.id as u64).wrapping_mul(0x9e37_79b9));
        cfg.library = (0..args.items_per_peer)
            .map(|_| catalog[lib_rng.gen_range(0..catalog.len())].clone())
            .collect();
    }
    let servent = Servent::new(NodeId(args.id), args.role, cfg);
    let listener = match TcpListener::bind(args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ddp-servent: bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let wire_cfg = WireConfig { tick_ms: args.tick_ms, ..WireConfig::default() };
    let mut wire = match WireServent::new(
        servent,
        listener,
        args.peers,
        &args.neighbors,
        wire_cfg,
        catalog,
        args.query_rate_qpm,
        // Distinct RNG stream per process: jitter never synchronizes.
        args.seed ^ ((args.id as u64) << 32),
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("ddp-servent: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut resume_error = String::new();
    if let Some(dir) = &args.resume_dir {
        let context = config_fingerprint(
            args.id,
            &role_fingerprint_name(args.role),
            args.minutes,
            args.seed,
            args.query_rate_qpm,
            args.catalog_size,
            args.items_per_peer,
            &args.neighbors,
            &monitor_label,
        );
        wire.set_checkpointing(CheckpointSpec {
            dir: std::path::PathBuf::from(dir),
            every_ticks: args.checkpoint_every,
            context,
        });
        match wire.try_resume() {
            Ok(Some(tick)) => eprintln!(
                "ddp-servent: servent {} resumed at tick {tick} (generation {})",
                args.id,
                wire.generation()
            ),
            Ok(None) => eprintln!("ddp-servent: servent {}: no checkpoint, cold start", args.id),
            Err(e) => {
                resume_error = e.kind().to_string();
                eprintln!(
                    "ddp-servent: servent {}: checkpoint rejected ({e}); cold start",
                    args.id
                );
            }
        }
    }
    let report = wire.run(args.minutes);

    let s = &wire.servent;
    let summary = WireSummary {
        id: args.id,
        role: match args.role {
            ServentRole::Good => "good".into(),
            ServentRole::FloodingAgent { .. } => "agent".into(),
        },
        protocol_secs: report.protocol_secs,
        issued: report.issued,
        resolved: s.hits.len() as u64,
        conn: report.conn,
        cuts: s.cut_log.iter().map(|&(t, p)| (t, p.0)).collect(),
        verdicts: s.verdict_log.iter().map(|&(t, p, g, si, b)| (t, p.0, g, si, b)).collect(),
        neighbors_final: s.neighbors().iter().map(|p| p.0).collect(),
        generation: report.generation,
        resume_error,
        monitor_backend: monitor_label,
    };
    if let Some(path) = &args.out {
        if let Err(e) = summary.write_file(std::path::Path::new(path)) {
            eprintln!("ddp-servent: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        print!("{}", summary.to_text());
    }
    ExitCode::SUCCESS
}
