//! Protocol-level reference implementation of a DD-POLICE servent.
//!
//! The evaluation crates (`ddp-sim`, `ddp-experiments`) use an aggregate
//! batch-flooding simulator for scale. This crate is the *fidelity* layer a
//! real deployment would start from: a complete peer state machine
//! ([`Servent`]) that speaks the actual wire protocol — every Query,
//! QueryHit, Ping/Pong, NeighborList, `Neighbor_Traffic` (0x83), and Bye is
//! **encoded to bytes and decoded back on every hop** through an in-memory
//! network ([`network::InMemNetwork`]), exercising `ddp-protocol` exactly
//! as TCP framing would.
//!
//! The servent implements:
//!
//! * Gnutella search: seen-GUID duplicate suppression, local library lookup,
//!   TTL/hops bookkeeping, QueryHits routed back along the inverse path;
//! * DD-POLICE (§3): per-neighbor per-minute In/Out counters, periodic
//!   neighbor-list exchange, warning-threshold suspicion, `Neighbor_Traffic`
//!   collection with a response deadline ("waiting for another 50 seconds")
//!   and assume-zero for silent members, General/Single indicator
//!   evaluation, and defensive disconnection via Bye (code `0x0bad`);
//! * attacker mode: a configurable query-flooding generator.
//!
//! [`harness::Harness`] drives a set of servents second-by-second and is
//! used by the integration tests to validate the protocol end to end at
//! small scale.

pub mod harness;
pub mod network;
pub mod servent;
pub mod wire;

pub use harness::{Harness, HarnessConfig, HarnessReport};
pub use network::InMemNetwork;
pub use servent::{Servent, ServentConfig, ServentRole};
pub use wire::{WireConfig, WireServent, WireSummary};
