//! Crash-recovery checkpointing for the wire runtime.
//!
//! A wire servent's defense evidence — per-neighbor traffic counters, open
//! investigations, the cut log — accumulates over protocol minutes; a crash
//! that resets it hands a flooding attacker a fresh detection window. The
//! runtime therefore periodically persists its defense-relevant state into a
//! `DDPSNAP1` container (`ddp-snapshot`'s temp+fsync+rename writer: a
//! `kill -9` mid-write leaves the previous checkpoint, never a torn file),
//! and a restarted process restores it before tick processing begins.
//!
//! What is persisted: the [`Servent`] state machine (counters, seen table,
//! investigations, verdict/cut logs, suppression clocks), the protocol
//! clock, the query-issuance RNG stream, the issued-query tally, the restart
//! generation, and the set of abandoned peers (so a cut attacker is not
//! re-dialed — or re-admitted — from amnesia). What is not: transport state
//! (sockets, send queues, dial backoff), which is rebuilt by re-dialing the
//! address book, and identity/config, which come from the command line and
//! are cross-checked via the container's context fingerprint.

use crate::servent::Servent;
use ddp_snapshot::{fnv1a64, Dec, Enc, SnapshotError};
use std::path::{Path, PathBuf};

/// Bumped whenever the wire payload layout below changes.
const WIRE_STATE_VERSION: u8 = 1;

/// Where, how often, and under which config fingerprint to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory holding `s<id>.snap` (shared by a whole mesh).
    pub dir: PathBuf,
    /// Write a checkpoint every this many protocol seconds (0 = never).
    pub every_ticks: u64,
    /// Config fingerprint stored as the container context; see
    /// [`config_fingerprint`].
    pub context: u64,
}

/// The checkpoint file for servent `id` under `dir`.
pub fn snap_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("s{id}.snap"))
}

/// Fingerprint of everything that must match between the run that wrote a
/// checkpoint and the run trying to resume it. Deliberately *excludes*
/// `tick_ms` (time compression is a harness knob, not protocol state) and
/// the address book's socket addresses (a supervisor may relaunch peers on
/// the same ids behind new ports/proxies).
#[allow(clippy::too_many_arguments)]
pub fn config_fingerprint(
    id: u32,
    role: &str,
    minutes: u64,
    seed: u64,
    query_rate_qpm: f64,
    catalog_size: usize,
    items_per_peer: usize,
    overlay: &[u32],
    monitor: &str,
) -> u64 {
    let mut neighbors: Vec<u32> = overlay.to_vec();
    neighbors.sort_unstable();
    // The monitor label participates only when non-default, so exact-mode
    // fingerprints stay identical to checkpoints written before backends
    // existed (a sketch-mode resume of an exact checkpoint — whose payload
    // lacks the sketch section — is refused here, not at decode).
    let monitor_tag =
        if monitor.is_empty() { String::new() } else { format!(" monitor={monitor}") };
    let canon = format!(
        "ddp-wire-ckpt v1 id={id} role={role} minutes={minutes} seed={seed} \
         qpm={query_rate_qpm} catalog={catalog_size} items={items_per_peer} \
         overlay={neighbors:?}{monitor_tag}"
    );
    fnv1a64(canon.as_bytes())
}

/// Runtime state restored from a checkpoint (the servent state machine is
/// restored in place by [`decode_payload`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredRun {
    /// First tick the resumed run must execute (the checkpointed tick + 1).
    pub next_tick: u64,
    /// Restart generation of the *previous* incarnation; the resumed run is
    /// `generation + 1`.
    pub generation: u32,
    /// Queries issued before the crash.
    pub issued: u64,
    /// xoshiro256** word state of the query-issuance RNG.
    pub rng: [u64; 4],
    /// Peers whose supervision had ended (we cut them, they cut us, or they
    /// died); a resumed servent must never re-dial or re-accept them.
    pub abandoned: Vec<u32>,
}

/// Serialize one checkpoint payload: runtime header plus the full servent
/// state. `abandoned` must be sorted by the caller for deterministic bytes.
pub fn encode_payload(
    tick: u64,
    generation: u32,
    issued: u64,
    rng: [u64; 4],
    abandoned: &[u32],
    servent: &Servent,
) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u8(WIRE_STATE_VERSION);
    enc.u64(tick);
    enc.u32(generation);
    enc.u64(issued);
    for word in rng {
        enc.u64(word);
    }
    enc.usize(abandoned.len());
    for &peer in abandoned {
        enc.u32(peer);
    }
    servent.save_state(&mut enc);
    enc.into_bytes()
}

/// Decode a checkpoint payload, restoring the servent state machine in
/// place. On error the servent may retain its pre-call state but the caller
/// must treat the resume as failed (cold start).
pub fn decode_payload(payload: &[u8], servent: &mut Servent) -> Result<RestoredRun, SnapshotError> {
    let mut dec = Dec::new(payload);
    let version = dec.u8()?;
    if version != WIRE_STATE_VERSION {
        return Err(SnapshotError::Unsupported { what: "wire checkpoint version" });
    }
    let tick = dec.u64()?;
    let generation = dec.u32()?;
    let issued = dec.u64()?;
    let mut rng = [0u64; 4];
    for word in rng.iter_mut() {
        *word = dec.u64()?;
    }
    let mut abandoned = Vec::new();
    for _ in 0..dec.len("abandoned peers")? {
        abandoned.push(dec.u32()?);
    }
    servent.restore_state(&mut dec)?;
    dec.finish()?;
    Ok(RestoredRun { next_tick: tick + 1, generation, issued, rng, abandoned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servent::{ServentConfig, ServentRole};
    use ddp_topology::NodeId;

    fn servent() -> Servent {
        let mut s = Servent::new(NodeId(2), ServentRole::Good, ServentConfig::default());
        s.connect(NodeId(1));
        s.connect(NodeId(5));
        s
    }

    #[test]
    fn payload_roundtrip() {
        let original = servent();
        let bytes = encode_payload(119, 2, 7, [1, 2, 3, 4], &[9, 11], &original);
        let mut restored = Servent::new(NodeId(2), ServentRole::Good, ServentConfig::default());
        let run = decode_payload(&bytes, &mut restored).expect("valid payload");
        assert_eq!(
            run,
            RestoredRun {
                next_tick: 120,
                generation: 2,
                issued: 7,
                rng: [1, 2, 3, 4],
                abandoned: vec![9, 11],
            }
        );
        assert_eq!(restored.neighbors(), original.neighbors());
    }

    #[test]
    fn fingerprint_is_sensitive_to_config_not_neighbor_order() {
        let base = config_fingerprint(3, "good", 4, 42, 2.0, 64, 3, &[1, 2, 9], "");
        let shuffled = config_fingerprint(3, "good", 4, 42, 2.0, 64, 3, &[9, 1, 2], "");
        assert_eq!(base, shuffled, "overlay order is canonicalized");
        assert_ne!(base, config_fingerprint(4, "good", 4, 42, 2.0, 64, 3, &[1, 2, 9], ""));
        assert_ne!(base, config_fingerprint(3, "flood:1500:1", 4, 42, 2.0, 64, 3, &[1, 2, 9], ""));
        assert_ne!(base, config_fingerprint(3, "good", 4, 43, 2.0, 64, 3, &[1, 2, 9], ""));
        // A different monitor backend means a different payload layout: the
        // fingerprint must refuse the cross-resume.
        assert_ne!(
            base,
            config_fingerprint(3, "good", 4, 42, 2.0, 64, 3, &[1, 2, 9], "sketch(w=2^12,d=4,k=64)")
        );
    }

    #[test]
    fn future_version_is_unsupported() {
        let mut bytes = encode_payload(0, 0, 0, [0; 4], &[], &servent());
        bytes[0] = WIRE_STATE_VERSION + 1;
        let mut s = servent();
        assert!(matches!(decode_payload(&bytes, &mut s), Err(SnapshotError::Unsupported { .. })));
    }

    #[test]
    fn truncated_payload_is_typed_error() {
        let bytes = encode_payload(60, 1, 3, [5; 4], &[4], &servent());
        let mut s = servent();
        assert!(decode_payload(&bytes[..bytes.len() - 2], &mut s).is_err());
    }
}
