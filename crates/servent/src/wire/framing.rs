//! Incremental frame reassembly off a byte stream.
//!
//! TCP delivers bytes, not frames: a single `read` may return half a header,
//! three frames and a tail, or one byte. [`FrameBuffer`] accumulates bytes
//! and yields complete, *fully validated* frames — every frame it returns
//! has survived a whole-message decode, so the servent state machine can
//! trust it.
//!
//! Hardening contract (the hostile-bytes half of the robustness story):
//!
//! * a malformed header (unknown kind, lying/oversized length) or payload
//!   surfaces as a typed [`ProtocolError`] — the caller disconnects the
//!   peer; nothing ever panics;
//! * memory is bounded: the buffer never holds more than one maximum-size
//!   frame plus one read chunk, because a valid header caps the frame at
//!   `HEADER_LEN + MAX_PAYLOAD_LEN` and an invalid one errors immediately.

use bytes::Bytes;
use ddp_protocol::header::{Header, HEADER_LEN, MAX_PAYLOAD_LEN};
use ddp_protocol::{decode_message, ProtocolError};

/// Largest frame the wire accepts: header plus the codec's payload cap.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + MAX_PAYLOAD_LEN;

/// Stream-to-frame reassembly buffer.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Bytes currently buffered (an incomplete frame prefix).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Append `data` and pop every complete frame now available, in order.
    ///
    /// On error the connection is poisoned: the typed error describes the
    /// first offense and the caller must drop the peer (any frames decoded
    /// from the same push before the offense are still returned via
    /// `Err`-free earlier calls only — an erroring push yields no frames,
    /// matching "hostile bytes disconnect").
    pub fn push(&mut self, data: &[u8]) -> Result<Vec<Bytes>, ProtocolError> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < HEADER_LEN {
                break;
            }
            // Validate the header first: unknown kinds and oversized length
            // fields error before any payload is awaited, so a hostile peer
            // cannot park us waiting for 4 GiB that never comes.
            let mut head = Bytes::from(self.buf[..HEADER_LEN].to_vec());
            let header = Header::decode(&mut head)?;
            let total = HEADER_LEN + header.payload_len as usize;
            debug_assert!(total <= MAX_FRAME_LEN, "Header::decode enforces the cap");
            if self.buf.len() < total {
                break;
            }
            let rest = self.buf.split_off(total);
            let frame_bytes = std::mem::replace(&mut self.buf, rest);
            let frame = Bytes::from(frame_bytes);
            // Full-message validation: payload decodes cleanly with no
            // trailing garbage. The frame is handed on as bytes — the state
            // machine re-decodes, but only after this proof it can.
            let mut probe = frame.clone();
            decode_message(&mut probe)?;
            out.push(frame);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_protocol::{encode_message, Guid, Message, Payload, Ping, Query};

    fn query_frame(seq: u64) -> Bytes {
        encode_message(&Message::new(
            Guid::derived(1, seq),
            5,
            Payload::Query(Query { min_speed: 0, criteria: format!("q-{seq}") }),
        ))
    }

    #[test]
    fn one_byte_dribble_reassembles_every_frame() {
        let frames: Vec<Bytes> = (0..4).map(query_frame).collect();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.to_vec()).collect();
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in stream {
            got.extend(fb.push(&[b]).expect("clean stream"));
        }
        assert_eq!(got, frames);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn burst_with_tail_yields_complete_frames_and_keeps_the_tail() {
        let a = query_frame(1);
        let b = query_frame(2);
        let mut stream = a.to_vec();
        stream.extend_from_slice(&b[..10]);
        let mut fb = FrameBuffer::new();
        let got = fb.push(&stream).unwrap();
        assert_eq!(got, vec![a]);
        assert_eq!(fb.pending(), 10);
        let got2 = fb.push(&b[10..]).unwrap();
        assert_eq!(got2, vec![b]);
    }

    #[test]
    fn unknown_kind_errors_instead_of_waiting_for_payload() {
        let mut frame = query_frame(1).to_vec();
        frame[16] = 0x42; // bogus descriptor byte
        let mut fb = FrameBuffer::new();
        assert!(matches!(fb.push(&frame), Err(ProtocolError::UnknownPayloadKind(0x42))));
    }

    #[test]
    fn lying_oversized_length_errors_before_buffering_the_claim() {
        let mut frame = query_frame(1).to_vec();
        frame[19..23].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut fb = FrameBuffer::new();
        assert!(matches!(fb.push(&frame), Err(ProtocolError::OversizedPayload { .. })));
        // The buffer never grew toward the lie.
        assert!(fb.pending() <= frame.len());
    }

    #[test]
    fn corrupt_payload_is_detected_at_reassembly() {
        let msg = Message::new(Guid::derived(3, 3), 5, Payload::Ping(Ping));
        let mut frame = encode_message(&msg).to_vec();
        frame[19] = 2; // claim 2 payload bytes that are not a valid Ping body
        frame.extend_from_slice(&[0xde, 0xad]);
        let mut fb = FrameBuffer::new();
        assert!(fb.push(&frame).is_err());
    }
}
