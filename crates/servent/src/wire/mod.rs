//! Real-socket deployment of the servent: the same [`Servent`] state
//! machine the in-memory harness drives, bound to `std::net` TCP with a
//! threaded reactor (no async runtime — the whole workspace is offline,
//! dependency-free Rust).
//!
//! Layering, bottom up:
//!
//! * [`framing`] — stream-to-frame reassembly with hostile-input hardening;
//! * [`backoff`] — capped exponential reconnect schedule with deterministic
//!   jitter;
//! * [`conn`] — handshake, bounded drop-oldest send queues, per-connection
//!   reader/writer threads;
//! * [`checkpoint`] — periodic crash-recovery snapshots of the defense
//!   state, and resume-on-start;
//! * [`runtime`] — the supervised core loop ([`WireServent`]);
//! * [`summary`] — the per-process result file the testbed collects.
//!
//! [`Servent`]: crate::servent::Servent

pub mod backoff;
pub mod checkpoint;
pub mod conn;
pub mod framing;
pub mod runtime;
pub mod summary;

pub use backoff::Backoff;
pub use checkpoint::{config_fingerprint, snap_path, CheckpointSpec};
pub use conn::{CloseReason, HandshakeError, SendQueue, WireStats};
pub use framing::{FrameBuffer, MAX_FRAME_LEN};
pub use runtime::{WireConfig, WireRunReport, WireServent};
pub use summary::{WireIoError, WireSummary, SUMMARY_MAGIC};
