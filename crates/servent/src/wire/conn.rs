//! Socket-level connection plumbing: handshake, bounded send queues, and
//! the per-connection reader/writer threads.
//!
//! Ownership model (one supervised connection):
//!
//! * the **core loop** owns the canonical [`TcpStream`] and the
//!   [`SendQueue`] handle; it is the only thread that decides a link's fate;
//! * the **reader thread** owns a clone of the stream, reassembles frames
//!   through [`FrameBuffer`](super::framing::FrameBuffer), and reports
//!   frames/closures to the core over the bounded event channel (blocking on
//!   a full channel is deliberate — it extends TCP backpressure into the
//!   process instead of buffering without bound);
//! * the **writer thread** owns another clone, drains the bounded
//!   [`SendQueue`] (drop-oldest under overflow, every eviction counted), and
//!   shuts the socket down when the queue is finished — which is how both
//!   graceful drain and cut-after-Bye terminate a link.

use super::framing::FrameBuffer;
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Leading magic of the connection hello.
pub const HELLO_MAGIC: [u8; 8] = *b"DDPWIRE1";
/// Hello length: magic + node id (u32 LE) + listen port (u16 LE) + reserved.
pub const HELLO_LEN: usize = 16;

/// Why a handshake failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// TCP connect failed or timed out.
    Connect(String),
    /// The hello did not arrive within the deadline (half-open peer).
    Timeout,
    /// Socket error mid-handshake.
    Io(String),
    /// The first 8 bytes were not [`HELLO_MAGIC`] — not a DD-POLICE wire
    /// peer (or a hostile probe).
    BadMagic,
    /// The far side claims our own node id.
    SelfConnect,
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Connect(e) => write!(f, "connect failed: {e}"),
            HandshakeError::Timeout => write!(f, "handshake deadline exceeded"),
            HandshakeError::Io(e) => write!(f, "handshake I/O error: {e}"),
            HandshakeError::BadMagic => write!(f, "bad hello magic"),
            HandshakeError::SelfConnect => write!(f, "peer claims our own id"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Encode our hello.
pub fn encode_hello(id: u32, listen_port: u16) -> [u8; HELLO_LEN] {
    let mut out = [0u8; HELLO_LEN];
    out[..8].copy_from_slice(&HELLO_MAGIC);
    out[8..12].copy_from_slice(&id.to_le_bytes());
    out[12..14].copy_from_slice(&listen_port.to_le_bytes());
    out
}

/// Decode a peer hello: `(peer_id, peer_listen_port)`.
pub fn decode_hello(raw: &[u8; HELLO_LEN]) -> Result<(u32, u16), HandshakeError> {
    if raw[..8] != HELLO_MAGIC {
        return Err(HandshakeError::BadMagic);
    }
    let id = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]);
    let port = u16::from_le_bytes([raw[12], raw[13]]);
    Ok((id, port))
}

fn io_or_timeout(e: std::io::Error) -> HandshakeError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HandshakeError::Timeout,
        _ => HandshakeError::Io(e.to_string()),
    }
}

fn exchange_hello(
    stream: &mut TcpStream,
    my_id: u32,
    my_port: u16,
    timeout_ms: u64,
    send_first: bool,
) -> Result<(u32, u16), HandshakeError> {
    let deadline = Duration::from_millis(timeout_ms.max(1));
    stream.set_read_timeout(Some(deadline)).map_err(|e| HandshakeError::Io(e.to_string()))?;
    stream.set_write_timeout(Some(deadline)).map_err(|e| HandshakeError::Io(e.to_string()))?;
    let mut theirs = [0u8; HELLO_LEN];
    if send_first {
        stream.write_all(&encode_hello(my_id, my_port)).map_err(io_or_timeout)?;
        stream.read_exact(&mut theirs).map_err(io_or_timeout)?;
    } else {
        stream.read_exact(&mut theirs).map_err(io_or_timeout)?;
        stream.write_all(&encode_hello(my_id, my_port)).map_err(io_or_timeout)?;
    }
    let (peer_id, peer_port) = decode_hello(&theirs)?;
    if peer_id == my_id {
        return Err(HandshakeError::SelfConnect);
    }
    Ok((peer_id, peer_port))
}

/// Dial `addr` and run the hello exchange (dialer speaks first). Returns the
/// connected stream and the peer's claimed `(id, listen_port)`.
pub fn dial(
    addr: SocketAddr,
    my_id: u32,
    my_port: u16,
    connect_timeout_ms: u64,
    handshake_timeout_ms: u64,
) -> Result<(TcpStream, u32, u16), HandshakeError> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_millis(connect_timeout_ms.max(1)))
            .map_err(|e| HandshakeError::Connect(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    let (peer_id, peer_port) =
        exchange_hello(&mut stream, my_id, my_port, handshake_timeout_ms, true)?;
    Ok((stream, peer_id, peer_port))
}

/// Complete the hello exchange on an accepted socket (acceptor answers).
pub fn accept_hello(
    mut stream: TcpStream,
    my_id: u32,
    my_port: u16,
    handshake_timeout_ms: u64,
) -> Result<(TcpStream, u32, u16), HandshakeError> {
    let _ = stream.set_nodelay(true);
    let (peer_id, peer_port) =
        exchange_hello(&mut stream, my_id, my_port, handshake_timeout_ms, false)?;
    Ok((stream, peer_id, peer_port))
}

/// Shared atomic telemetry for one wire servent (all connections).
#[derive(Debug, Default)]
pub struct WireStats {
    pub dials_ok: AtomicU64,
    pub dials_failed: AtomicU64,
    pub accepts: AtomicU64,
    pub handshake_failures: AtomicU64,
    pub reconnects: AtomicU64,
    pub idle_closes: AtomicU64,
    pub codec_disconnects: AtomicU64,
    pub frames_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub frames_received: AtomicU64,
    pub bytes_received: AtomicU64,
    pub frames_dropped: AtomicU64,
    pub frames_unroutable: AtomicU64,
    pub checkpoints_written: AtomicU64,
    pub checkpoint_failures: AtomicU64,
    pub resumes: AtomicU64,
}

impl WireStats {
    /// Snapshot into the plain metrics struct.
    pub fn counters(&self) -> ddp_metrics::ConnCounters {
        ddp_metrics::ConnCounters {
            dials_ok: self.dials_ok.load(Ordering::Relaxed),
            dials_failed: self.dials_failed.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            handshake_failures: self.handshake_failures.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            idle_closes: self.idle_closes.load(Ordering::Relaxed),
            codec_disconnects: self.codec_disconnects.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            frames_unroutable: self.frames_unroutable.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
        }
    }
}

/// Bounded frame queue between the core loop and one writer thread.
///
/// Backpressure policy: **drop-oldest** — when the queue is full the oldest
/// queued frame is evicted (and counted) to admit the new one, so the
/// freshest control traffic survives a flood and memory stays bounded.
#[derive(Debug)]
pub struct SendQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    capacity: usize,
}

#[derive(Debug, Default)]
struct QueueInner {
    frames: VecDeque<Bytes>,
    /// No more pushes; writer drains what is left, then exits.
    finished: bool,
    /// Hard stop: writer exits immediately, remaining frames abandoned.
    aborted: bool,
    dropped: u64,
}

impl SendQueue {
    /// Queue holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        SendQueue {
            inner: Mutex::new(QueueInner::default()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a frame. Returns the number of frames evicted to make room
    /// (0 or 1). Pushing to a finished queue drops the frame (counted).
    pub fn push(&self, frame: Bytes) -> u64 {
        let mut q = self.inner.lock().expect("send queue poisoned");
        if q.finished || q.aborted {
            q.dropped += 1;
            return 1;
        }
        let mut evicted = 0;
        if q.frames.len() >= self.capacity {
            q.frames.pop_front();
            q.dropped += 1;
            evicted = 1;
        }
        q.frames.push_back(frame);
        self.cv.notify_one();
        evicted
    }

    /// Writer side: next frame, or `None` when the queue is finished and
    /// empty, aborted, or `timeout` elapsed with nothing to send (the writer
    /// uses the timeout wake-up to notice an aborted socket).
    pub fn pop(&self, timeout: Duration) -> PopResult {
        let mut q = self.inner.lock().expect("send queue poisoned");
        loop {
            if q.aborted {
                return PopResult::Closed;
            }
            if let Some(f) = q.frames.pop_front() {
                return PopResult::Frame(f);
            }
            if q.finished {
                return PopResult::Closed;
            }
            let (guard, res) = self.cv.wait_timeout(q, timeout).expect("send queue poisoned");
            q = guard;
            if res.timed_out() && q.frames.is_empty() && !q.finished && !q.aborted {
                return PopResult::Idle;
            }
        }
    }

    /// Close for new pushes; the writer drains the backlog then exits.
    pub fn finish(&self) {
        let mut q = self.inner.lock().expect("send queue poisoned");
        q.finished = true;
        self.cv.notify_all();
    }

    /// Hard-stop the writer, abandoning queued frames (counted as dropped).
    pub fn abort(&self) {
        let mut q = self.inner.lock().expect("send queue poisoned");
        q.aborted = true;
        q.dropped += q.frames.len() as u64;
        q.frames.clear();
        self.cv.notify_all();
    }

    /// Frames waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("send queue poisoned").frames.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total frames evicted/abandoned so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("send queue poisoned").dropped
    }
}

/// Outcome of a [`SendQueue::pop`].
#[derive(Debug)]
pub enum PopResult {
    /// A frame to write.
    Frame(Bytes),
    /// Timed out with nothing queued; poll liveness and try again.
    Idle,
    /// Queue finished/aborted; writer should exit.
    Closed,
}

/// Events the connection threads report to the core loop.
#[derive(Debug)]
pub enum ConnEvent {
    /// A validated inbound frame from `peer` on connection `conn_gen`.
    Frame { peer: u32, conn_gen: u64, frame: Bytes },
    /// Connection `conn_gen` to `peer` is gone.
    Closed { peer: u32, conn_gen: u64, reason: CloseReason },
    /// An accepted socket finished its handshake.
    Accepted { stream: TcpStream, peer_id: u32, peer_port: u16 },
    /// An outbound dial attempt finished.
    DialDone { peer: u32, result: Result<TcpStream, HandshakeError> },
}

/// Why a live connection ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloseReason {
    /// Clean EOF from the peer.
    Eof,
    /// The peer sent bytes the codec rejects — hostile or corrupt.
    Codec(String),
    /// Socket I/O error (reset, broken pipe, severed mid-frame).
    Io(String),
    /// The write side failed or timed out.
    WriteFailed(String),
    /// Writer drained a finished queue (graceful close).
    Drained,
}

/// Spawn the reader thread for an established connection.
///
/// Reads with `read_timeout_ms` granularity so the `shutdown` flag is
/// honored promptly; every complete frame is validated before it is
/// reported. A codec error reports `Closed(Codec)` and stops reading —
/// hostile bytes disconnect, never panic.
pub fn spawn_reader(
    stream: TcpStream,
    peer: u32,
    conn_gen: u64,
    tx: SyncSender<ConnEvent>,
    stats: Arc<WireStats>,
    shutdown: Arc<AtomicBool>,
    read_timeout_ms: u64,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ddp-read-{peer}"))
        .spawn(move || {
            let _ = stream.set_read_timeout(Some(Duration::from_millis(read_timeout_ms.max(1))));
            let mut stream = stream;
            let mut fb = FrameBuffer::new();
            let mut chunk = [0u8; 8192];
            let close = |reason: CloseReason, tx: &SyncSender<ConnEvent>| {
                let _ = tx.send(ConnEvent::Closed { peer, conn_gen, reason });
            };
            loop {
                if shutdown.load(Ordering::Relaxed) {
                    return; // core is tearing everything down; no event needed
                }
                match stream.read(&mut chunk) {
                    Ok(0) => return close(CloseReason::Eof, &tx),
                    Ok(n) => {
                        stats.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
                        match fb.push(&chunk[..n]) {
                            Ok(frames) => {
                                for frame in frames {
                                    stats.frames_received.fetch_add(1, Ordering::Relaxed);
                                    if tx.send(ConnEvent::Frame { peer, conn_gen, frame }).is_err()
                                    {
                                        return; // core gone
                                    }
                                }
                            }
                            Err(e) => {
                                let _ = stream.shutdown(Shutdown::Both);
                                return close(CloseReason::Codec(e.to_string()), &tx);
                            }
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return close(CloseReason::Io(e.to_string()), &tx),
                }
            }
        })
        .expect("spawn reader thread")
}

/// Spawn the writer thread for an established connection.
///
/// Drains the queue until it is finished (then shuts the socket down — the
/// graceful-drain path) or a write fails. Frame/byte counts land in `stats`
/// only for bytes actually written.
pub fn spawn_writer(
    stream: TcpStream,
    peer: u32,
    conn_gen: u64,
    queue: Arc<SendQueue>,
    tx: SyncSender<ConnEvent>,
    stats: Arc<WireStats>,
    write_timeout_ms: u64,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ddp-write-{peer}"))
        .spawn(move || {
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(write_timeout_ms.max(1))));
            loop {
                match queue.pop(Duration::from_millis(200)) {
                    PopResult::Frame(frame) => match stream.write_all(&frame) {
                        Ok(()) => {
                            stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                            stats.bytes_sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
                        }
                        Err(e) => {
                            queue.abort();
                            let _ = stream.shutdown(Shutdown::Both);
                            let _ = tx.send(ConnEvent::Closed {
                                peer,
                                conn_gen,
                                reason: CloseReason::WriteFailed(e.to_string()),
                            });
                            return;
                        }
                    },
                    PopResult::Idle => continue,
                    PopResult::Closed => {
                        // Graceful: everything queued has been written (or the
                        // link was aborted). Closing the socket wakes the
                        // peer's reader with EOF.
                        let _ = stream.shutdown(Shutdown::Both);
                        let _ = tx.send(ConnEvent::Closed {
                            peer,
                            conn_gen,
                            reason: CloseReason::Drained,
                        });
                        return;
                    }
                }
            }
        })
        .expect("spawn writer thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let raw = encode_hello(42, 6346);
        assert_eq!(decode_hello(&raw).unwrap(), (42, 6346));
    }

    #[test]
    fn hello_rejects_foreign_magic() {
        let mut raw = encode_hello(1, 1);
        raw[0] = b'X';
        assert_eq!(decode_hello(&raw), Err(HandshakeError::BadMagic));
    }

    #[test]
    fn queue_drop_oldest_under_overflow() {
        let q = SendQueue::new(3);
        for i in 0..5u8 {
            q.push(Bytes::from(vec![i]));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.dropped(), 2);
        // Oldest two were evicted; 2,3,4 remain in order.
        match q.pop(Duration::from_millis(1)) {
            PopResult::Frame(f) => assert_eq!(f.as_ref(), &[2]),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn finished_queue_drains_then_closes() {
        let q = SendQueue::new(8);
        q.push(Bytes::from_static(b"a"));
        q.push(Bytes::from_static(b"b"));
        q.finish();
        assert!(matches!(q.pop(Duration::from_millis(1)), PopResult::Frame(_)));
        assert!(matches!(q.pop(Duration::from_millis(1)), PopResult::Frame(_)));
        assert!(matches!(q.pop(Duration::from_millis(1)), PopResult::Closed));
        // Late pushes are refused and counted.
        assert_eq!(q.push(Bytes::from_static(b"late")), 1);
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn aborted_queue_abandons_and_counts_the_backlog() {
        let q = SendQueue::new(8);
        q.push(Bytes::from_static(b"a"));
        q.push(Bytes::from_static(b"b"));
        q.abort();
        assert!(matches!(q.pop(Duration::from_millis(1)), PopResult::Closed));
        assert_eq!(q.dropped(), 2);
    }

    #[test]
    fn empty_unfinished_queue_reports_idle() {
        let q = SendQueue::new(2);
        assert!(matches!(q.pop(Duration::from_millis(5)), PopResult::Idle));
    }
}
