//! Per-servent run summary: the file a `ddp-servent` process writes on
//! graceful exit and the testbed collector reads back.
//!
//! The format is a versioned, TAB-separated key/value text file — trivially
//! greppable, order-stable, and append-proof (a truncated file fails to
//! parse because the `end` sentinel is missing, which is exactly what the
//! collector wants to detect after a SIGKILL).

use ddp_metrics::ConnCounters;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Magic first line (bump the version when the schema changes).
pub const SUMMARY_MAGIC: &str = "ddp-wire-summary v1";

/// Everything one servent process reports about its run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireSummary {
    pub id: u32,
    /// `"good"` or `"agent"`.
    pub role: String,
    pub protocol_secs: u64,
    /// Queries issued (Good role).
    pub issued: u64,
    /// Queries that got at least one hit.
    pub resolved: u64,
    pub conn: ConnCounters,
    /// Defensive disconnections: (protocol second, suspect id).
    pub cuts: Vec<(u64, u32)>,
    /// Concluded investigations: (second, suspect, g, s, cut).
    pub verdicts: Vec<(u64, u32, f64, f64, bool)>,
    /// Overlay neighbors at the end of the run.
    pub neighbors_final: Vec<u32>,
    /// Restart generation: 0 = cold start, incremented on every successful
    /// resume-from-checkpoint. Carried on the `end` sentinel line so the
    /// testbed collector can chain summaries from successive incarnations.
    pub generation: u32,
    /// Why a requested resume degraded to a cold start: the
    /// `SnapshotError` variant name (`"ChecksumMismatch"`, `"Truncated"`,
    /// ...), or empty when the resume succeeded / was never requested.
    pub resume_error: String,
    /// Traffic-monitor backend label (`"sketch(w=2^16,d=4,k=512)"`), or
    /// empty under the exact default — omitted from the text form, so
    /// exact-mode summaries are byte-identical to pre-backend writers and
    /// old parsers skip the key as an unknown line.
    pub monitor_backend: String,
}

/// Typed, path-naming I/O error for summary files.
#[derive(Debug)]
pub enum WireIoError {
    /// The underlying filesystem operation failed.
    Io { op: &'static str, path: PathBuf, source: std::io::Error },
    /// The file exists but does not parse as a summary.
    Parse { path: PathBuf, line: usize, reason: String },
}

impl std::fmt::Display for WireIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireIoError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            WireIoError::Parse { path, line, reason } => {
                write!(f, "parse {}:{line}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for WireIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireIoError::Io { source, .. } => Some(source),
            WireIoError::Parse { .. } => None,
        }
    }
}

fn parse_generation(raw: &str) -> Result<u32, String> {
    raw.parse::<u32>().map_err(|e| format!("end sentinel generation: bad integer `{raw}`: {e}"))
}

impl WireSummary {
    /// Serialize to the text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(SUMMARY_MAGIC);
        s.push('\n');
        s.push_str(&format!("id\t{}\n", self.id));
        s.push_str(&format!("role\t{}\n", self.role));
        s.push_str(&format!("protocol_secs\t{}\n", self.protocol_secs));
        s.push_str(&format!("issued\t{}\n", self.issued));
        s.push_str(&format!("resolved\t{}\n", self.resolved));
        for (name, value) in self.conn.fields() {
            s.push_str(&format!("{name}\t{value}\n"));
        }
        for &(t, suspect) in &self.cuts {
            s.push_str(&format!("cut\t{t}\t{suspect}\n"));
        }
        for &(t, suspect, g, si, bad) in &self.verdicts {
            s.push_str(&format!("verdict\t{t}\t{suspect}\t{g:.6}\t{si:.6}\t{}\n", u8::from(bad)));
        }
        let neigh: Vec<String> = self.neighbors_final.iter().map(u32::to_string).collect();
        s.push_str(&format!("neighbors_final\t{}\n", neigh.join(",")));
        if !self.resume_error.is_empty() {
            s.push_str(&format!("resume_error\t{}\n", self.resume_error));
        }
        if !self.monitor_backend.is_empty() {
            s.push_str(&format!("monitor_backend\t{}\n", self.monitor_backend));
        }
        // The generation rides on the sentinel itself: a truncated file can
        // neither claim completion nor misattribute its incarnation.
        s.push_str(&format!("end\t{}\n", self.generation));
        s
    }

    /// Parse the text format. `path` is used only for error naming; pass
    /// `"<memory>"` when parsing a buffer.
    pub fn from_reader<R: BufRead>(reader: R, path: &Path) -> Result<WireSummary, WireIoError> {
        let perr = |line: usize, reason: String| WireIoError::Parse {
            path: path.to_path_buf(),
            line,
            reason,
        };
        let mut out = WireSummary::default();
        let mut saw_magic = false;
        let mut saw_end = false;
        for (idx, line) in reader.lines().enumerate() {
            let lineno = idx + 1;
            let line = line.map_err(|e| WireIoError::Io {
                op: "read",
                path: path.to_path_buf(),
                source: e,
            })?;
            if idx == 0 {
                if line != SUMMARY_MAGIC {
                    return Err(perr(1, format!("expected `{SUMMARY_MAGIC}`, got `{line}`")));
                }
                saw_magic = true;
                continue;
            }
            if line == "end" || line.starts_with("end\t") {
                // Bare `end` (pre-generation writers) parses as generation 0.
                if let Some(rest) = line.strip_prefix("end\t") {
                    out.generation =
                        parse_generation(rest).map_err(|reason| perr(lineno, reason))?;
                }
                saw_end = true;
                break;
            }
            let mut parts = line.split('\t');
            let key = parts.next().unwrap_or("");
            let fields: Vec<&str> = parts.collect();
            let one = |what: &str| -> Result<&str, WireIoError> {
                fields
                    .first()
                    .copied()
                    .ok_or_else(|| perr(lineno, format!("{what}: missing value")))
            };
            let parse_u64 = |s: &str, what: &str| -> Result<u64, WireIoError> {
                s.parse::<u64>()
                    .map_err(|e| perr(lineno, format!("{what}: bad integer `{s}`: {e}")))
            };
            match key {
                "id" => out.id = parse_u64(one("id")?, "id")? as u32,
                "role" => out.role = one("role")?.to_string(),
                "protocol_secs" => {
                    out.protocol_secs = parse_u64(one("protocol_secs")?, "protocol_secs")?
                }
                "issued" => out.issued = parse_u64(one("issued")?, "issued")?,
                "resolved" => out.resolved = parse_u64(one("resolved")?, "resolved")?,
                "cut" => {
                    if fields.len() != 2 {
                        return Err(perr(
                            lineno,
                            format!("cut: want 2 fields, got {}", fields.len()),
                        ));
                    }
                    out.cuts.push((
                        parse_u64(fields[0], "cut time")?,
                        parse_u64(fields[1], "cut suspect")? as u32,
                    ));
                }
                "verdict" => {
                    if fields.len() != 5 {
                        return Err(perr(
                            lineno,
                            format!("verdict: want 5 fields, got {}", fields.len()),
                        ));
                    }
                    let g = fields[2].parse::<f64>().map_err(|e| {
                        perr(lineno, format!("verdict g: bad float `{}`: {e}", fields[2]))
                    })?;
                    let si = fields[3].parse::<f64>().map_err(|e| {
                        perr(lineno, format!("verdict s: bad float `{}`: {e}", fields[3]))
                    })?;
                    out.verdicts.push((
                        parse_u64(fields[0], "verdict time")?,
                        parse_u64(fields[1], "verdict suspect")? as u32,
                        g,
                        si,
                        fields[4] == "1",
                    ));
                }
                "neighbors_final" => {
                    let raw = fields.first().copied().unwrap_or("");
                    if !raw.is_empty() {
                        for part in raw.split(',') {
                            out.neighbors_final.push(parse_u64(part, "neighbors_final")? as u32);
                        }
                    }
                }
                "resume_error" => out.resume_error = one("resume_error")?.to_string(),
                "monitor_backend" => out.monitor_backend = one("monitor_backend")?.to_string(),
                _ => {
                    // Counter fields route through ConnCounters; unknown keys
                    // are skipped for forward compatibility.
                    if let Ok(v) = parse_u64(one(key)?, key) {
                        let _ = out.conn.set_field(key, v);
                    }
                }
            }
        }
        if !saw_magic {
            return Err(perr(1, "empty file".into()));
        }
        if !saw_end {
            return Err(perr(0, "missing `end` sentinel (truncated summary?)".into()));
        }
        Ok(out)
    }

    /// Write atomically (temp file + rename) so the collector never reads a
    /// half-written summary. Creates the parent directory if needed — the
    /// failure is a typed [`WireIoError`], mirroring how `write_snapshot`
    /// reports its staging errors.
    pub fn write_file(&self, path: &Path) -> Result<(), WireIoError> {
        fn io(op: &'static str, p: &Path, e: std::io::Error) -> WireIoError {
            WireIoError::Io { op, path: p.to_path_buf(), source: e }
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io("create_dir", parent, e))?;
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io("create", &tmp, e))?;
            f.write_all(self.to_text().as_bytes()).map_err(|e| io("write", &tmp, e))?;
            f.sync_all().map_err(|e| io("sync", &tmp, e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io("rename", path, e))
    }

    /// Read a summary file.
    pub fn read_file(path: &Path) -> Result<WireSummary, WireIoError> {
        let f = std::fs::File::open(path).map_err(|e| WireIoError::Io {
            op: "open",
            path: path.to_path_buf(),
            source: e,
        })?;
        WireSummary::from_reader(BufReader::new(f), path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireSummary {
        let conn = ConnCounters {
            dials_ok: 3,
            frames_sent: 1_234,
            frames_dropped: 7,
            ..ConnCounters::default()
        };
        WireSummary {
            id: 4,
            role: "agent".into(),
            protocol_secs: 240,
            issued: 0,
            resolved: 0,
            conn,
            cuts: vec![(110, 9)],
            verdicts: vec![(110, 9, 25.5, 24.25, true), (170, 9, 0.5, 0.25, false)],
            neighbors_final: vec![1, 2, 7],
            generation: 2,
            resume_error: String::new(),
            monitor_backend: String::new(),
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let s = sample();
        let text = s.to_text();
        let back =
            WireSummary::from_reader(text.as_bytes(), Path::new("<memory>")).expect("parses");
        assert_eq!(s, back);
    }

    #[test]
    fn empty_neighbor_list_roundtrips() {
        let mut s = sample();
        s.neighbors_final.clear();
        let back = WireSummary::from_reader(s.to_text().as_bytes(), Path::new("<memory>"))
            .expect("parses");
        assert_eq!(back.neighbors_final, Vec::<u32>::new());
    }

    #[test]
    fn truncated_summary_is_rejected_with_the_path_named() {
        let s = sample();
        let text = s.to_text();
        let cut = &text[..text.rfind("end\t").unwrap()]; // chop the `end` sentinel
        let err = WireSummary::from_reader(cut.as_bytes(), Path::new("victim.summary"))
            .expect_err("truncation must fail");
        let msg = err.to_string();
        assert!(msg.contains("victim.summary"), "error names the path: {msg}");
        assert!(msg.contains("end"), "error names the missing sentinel: {msg}");
    }

    #[test]
    fn generation_rides_the_end_sentinel() {
        let s = sample();
        let text = s.to_text();
        assert!(text.ends_with("end\t2\n"), "sentinel carries the generation: {text}");
        let back =
            WireSummary::from_reader(text.as_bytes(), Path::new("<memory>")).expect("parses");
        assert_eq!(back.generation, 2);
        // Pre-generation writers emitted a bare `end`: still generation 0.
        let legacy = text.replace("end\t2", "end");
        let back =
            WireSummary::from_reader(legacy.as_bytes(), Path::new("<memory>")).expect("parses");
        assert_eq!(back.generation, 0);
    }

    #[test]
    fn monitor_backend_roundtrips_and_is_omitted_when_exact() {
        let mut s = sample();
        s.monitor_backend = "sketch(w=2^16,d=4,k=512)".into();
        let back = WireSummary::from_reader(s.to_text().as_bytes(), Path::new("<memory>"))
            .expect("parses");
        assert_eq!(back.monitor_backend, "sketch(w=2^16,d=4,k=512)");
        assert!(
            !sample().to_text().contains("monitor_backend"),
            "exact-mode summaries stay byte-identical to pre-backend writers"
        );
    }

    #[test]
    fn resume_error_roundtrips_and_defaults_empty() {
        let mut s = sample();
        s.resume_error = "ChecksumMismatch".into();
        let back = WireSummary::from_reader(s.to_text().as_bytes(), Path::new("<memory>"))
            .expect("parses");
        assert_eq!(back.resume_error, "ChecksumMismatch");
        assert!(!sample().to_text().contains("resume_error"), "empty field is omitted");
    }

    #[test]
    fn file_roundtrip_via_temp_rename() {
        // The parent directory does not exist: write_file creates it through
        // its typed error path (no raw unwrap anywhere in the helper).
        let dir = std::env::temp_dir()
            .join(format!("ddp-wire-summary-test-{}", std::process::id()))
            .join("nested");
        let path = dir.join("s4.summary");
        let s = sample();
        s.write_file(&path).expect("write creates the parent directory");
        let back = WireSummary::read_file(&path).expect("read");
        assert_eq!(s, back);
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn unwritable_parent_is_a_typed_create_dir_error() {
        // A path whose parent cannot be created (a file stands in the way)
        // must surface as WireIoError::Io{op:"create_dir"} — never a panic.
        let base = std::env::temp_dir().join(format!("ddp-wire-flat-{}", std::process::id()));
        std::fs::write(&base, b"not a directory").unwrap();
        let path = base.join("sub").join("s1.summary");
        let err = sample().write_file(&path).expect_err("must fail");
        match &err {
            WireIoError::Io { op, .. } => assert_eq!(*op, "create_dir", "got {err}"),
            other => panic!("expected Io error, got {other}"),
        }
        let _ = std::fs::remove_file(&base);
    }

    #[test]
    fn missing_file_error_names_the_operation_and_path() {
        let err = WireSummary::read_file(Path::new("/no/such/ddp-summary")).expect_err("must fail");
        let msg = err.to_string();
        assert!(msg.starts_with("open "), "op named: {msg}");
        assert!(msg.contains("/no/such/ddp-summary"), "path named: {msg}");
    }
}
