//! Capped exponential reconnect backoff with deterministic jitter.
//!
//! Reconnect storms are the classic way a recovering overlay finishes the
//! attacker's job. Every supervised connection retries on a schedule that
//! doubles from `base_ms` up to `cap_ms`, with *equal jitter* (half fixed,
//! half uniform-random) drawn from the servent's own seeded RNG — runs are
//! reproducible given the seed, yet no two peers synchronize their dials.

use rand::rngs::StdRng;
use rand::Rng;

/// The reconnect schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First-retry delay, milliseconds.
    pub base_ms: u64,
    /// Hard ceiling on the exponential term, milliseconds.
    pub cap_ms: u64,
}

impl Backoff {
    /// Delay before attempt `attempt` (0-based: the delay *after* the first
    /// failure has `attempt == 0`).
    ///
    /// `delay = exp/2 + uniform(0 ..= exp/2)` where
    /// `exp = min(base * 2^attempt, cap)` — so the delay is always within
    /// `[exp/2, exp]`, grows exponentially, and saturates at `cap_ms`
    /// without overflow for any attempt count.
    pub fn delay_ms(&self, attempt: u32, rng: &mut StdRng) -> u64 {
        let exp = self.exp_ms(attempt);
        let half = exp / 2;
        half + rng.gen_range(0..half.max(1) + 1)
    }

    /// The un-jittered exponential term for `attempt`.
    pub fn exp_ms(&self, attempt: u32) -> u64 {
        let doubled = match 1u64.checked_shl(attempt) {
            Some(f) => self.base_ms.saturating_mul(f),
            None => u64::MAX,
        };
        doubled.min(self.cap_ms).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const B: Backoff = Backoff { base_ms: 100, cap_ms: 3_000 };

    #[test]
    fn exponential_growth_until_the_cap() {
        assert_eq!(B.exp_ms(0), 100);
        assert_eq!(B.exp_ms(1), 200);
        assert_eq!(B.exp_ms(2), 400);
        assert_eq!(B.exp_ms(4), 1_600);
        assert_eq!(B.exp_ms(5), 3_000, "capped");
        assert_eq!(B.exp_ms(6), 3_000);
    }

    #[test]
    fn cap_holds_for_absurd_attempt_counts_without_overflow() {
        for attempt in [10, 32, 63, 64, 65, 1_000, u32::MAX] {
            assert_eq!(B.exp_ms(attempt), 3_000, "attempt {attempt}");
            let mut rng = StdRng::seed_from_u64(attempt as u64);
            let d = B.delay_ms(attempt, &mut rng);
            assert!((1_500..=3_000).contains(&d), "attempt {attempt}: delay {d}");
        }
    }

    #[test]
    fn jitter_stays_in_the_equal_jitter_window() {
        let mut rng = StdRng::seed_from_u64(7);
        for attempt in 0..12 {
            let exp = B.exp_ms(attempt);
            for _ in 0..50 {
                let d = B.delay_ms(attempt, &mut rng);
                assert!(
                    d >= exp / 2 && d <= exp,
                    "attempt {attempt}: {d} not in [{}, {exp}]",
                    exp / 2
                );
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|i| B.delay_ms(i, &mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|i| B.delay_ms(i, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_base_still_progresses() {
        let z = Backoff { base_ms: 0, cap_ms: 10 };
        let mut rng = StdRng::seed_from_u64(1);
        // base 0 clamps to 1 ms — the schedule never divides by zero or
        // busy-loops at 0 ms.
        assert_eq!(z.exp_ms(0), 1);
        assert!(z.delay_ms(0, &mut rng) <= 1);
    }
}
