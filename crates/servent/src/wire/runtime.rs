//! The threaded socket runtime: one [`Servent`] state machine driven by real
//! TCP connections.
//!
//! Thread model (see DESIGN.md "Wire deployment"):
//!
//! * **core loop** (the thread that calls [`WireServent::run`]) — owns the
//!   state machine, the link table, and all supervision decisions; receives
//!   every frame/close/dial/accept event over one bounded channel;
//! * **acceptor** — nonblocking `accept` poll; hands each socket to a
//!   one-shot handshake thread so a slow-lorising dialer cannot stall the
//!   listen queue;
//! * **per-connection reader/writer** — see [`super::conn`];
//! * **one-shot dial threads** — a dial in progress never blocks the tick.
//!
//! Protocol time is decoupled from wall time: tick `t` (one protocol second)
//! fires at `start + t * tick_ms`, so a whole four-minute experiment runs in
//! seconds of wall clock while timeouts keep their protocol-relative
//! meaning.

use super::backoff::Backoff;
use super::checkpoint::{self, CheckpointSpec};
use super::conn::{self, CloseReason, ConnEvent, HandshakeError, SendQueue, WireStats};
use crate::servent::{Outbox, Servent, ServentRole};
use bytes::Bytes;
use ddp_metrics::ConnCounters;
use ddp_snapshot::SnapshotError;
use ddp_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the socket runtime. All timeouts that supervise *protocol*
/// behavior are in ticks (protocol seconds) so they scale with time
/// compression; transport-level deadlines are wall milliseconds.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Wall milliseconds per protocol second.
    pub tick_ms: u64,
    /// TCP connect deadline, wall ms.
    pub connect_timeout_ms: u64,
    /// Hello exchange deadline, wall ms (half-open peers die here).
    pub handshake_timeout_ms: u64,
    /// Reader poll granularity, wall ms.
    pub read_timeout_ms: u64,
    /// Per-frame write deadline, wall ms (a stalled peer trips this).
    pub write_timeout_ms: u64,
    /// Close a link heard from nothing for this many ticks; the silent
    /// neighbor then feeds the assume-zero report path.
    pub idle_timeout_ticks: u64,
    /// Logically disconnect an overlay neighbor whose transport has been
    /// down this long (SIGKILL'd process, unreachable host).
    pub peer_death_ticks: u64,
    /// Reconnect backoff base, wall ms.
    pub reconnect_base_ms: u64,
    /// Reconnect backoff cap, wall ms.
    pub reconnect_cap_ms: u64,
    /// Bounded send-queue capacity, frames (drop-oldest beyond).
    pub send_queue_frames: usize,
    /// Wall-clock budget for the graceful drain at shutdown.
    pub drain_timeout_ms: u64,
    /// Wall-clock head start for establishing the initial overlay links
    /// before protocol tick 0.
    pub connect_grace_ms: u64,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            tick_ms: 50,
            connect_timeout_ms: 1_000,
            handshake_timeout_ms: 1_000,
            read_timeout_ms: 50,
            write_timeout_ms: 1_000,
            idle_timeout_ticks: 180,
            peer_death_ticks: 300,
            reconnect_base_ms: 100,
            reconnect_cap_ms: 3_000,
            send_queue_frames: 1_024,
            drain_timeout_ms: 2_000,
            connect_grace_ms: 500,
        }
    }
}

/// End-of-run transport telemetry (the state machine's own logs live on the
/// [`Servent`] the runtime hands back).
#[derive(Debug, Clone)]
pub struct WireRunReport {
    /// Protocol seconds the run covered.
    pub protocol_secs: u64,
    /// Queries issued by this servent (Good role only).
    pub issued: u64,
    /// Connection-lifecycle counters.
    pub conn: ConnCounters,
    /// Restart generation: 0 for a cold start, previous generation + 1
    /// after a successful resume-from-checkpoint.
    pub generation: u32,
}

/// One live transport connection.
struct Link {
    /// Generation tag: events from a replaced connection carry a stale gen
    /// and are ignored.
    gen: u64,
    queue: Arc<SendQueue>,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
    last_heard_tick: u64,
    /// A Bye is queued; the writer flushes and closes, and supervision is
    /// abandoned — do not reconnect to a peer we cut.
    close_after_drain: bool,
}

/// Supervision state for one peer (outlives any individual connection).
struct Sup {
    /// Overlay neighbor (reconnect proactively, peer-death applies) versus
    /// Buddy-Group direct link (dialed on demand, dropped when idle).
    overlay: bool,
    /// Consecutive failed/lost connections since the last success.
    attempts: u32,
    next_dial_at: Option<Instant>,
    dialing: bool,
    /// Frames waiting for a transport, bounded like a send queue.
    pending: VecDeque<Bytes>,
    /// Supervision is over: we cut them, they cut us, or they died.
    abandoned: bool,
    ever_connected: bool,
    /// Last tick a connection to this peer existed (for peer-death).
    last_link_tick: u64,
}

impl Sup {
    fn new(overlay: bool) -> Self {
        Sup {
            overlay,
            attempts: 0,
            next_dial_at: None,
            dialing: false,
            pending: VecDeque::new(),
            abandoned: false,
            ever_connected: false,
            last_link_tick: 0,
        }
    }
}

/// A [`Servent`] bound to a real TCP listener.
pub struct WireServent {
    /// The protocol state machine (read its logs after [`run`](Self::run)).
    pub servent: Servent,
    my_id: u32,
    listen_port: u16,
    listener: Option<TcpListener>,
    cfg: WireConfig,
    backoff: Backoff,
    /// peer id -> transport address (driver-provided; hello fills gaps).
    book: HashMap<u32, SocketAddr>,
    links: HashMap<u32, Link>,
    sups: HashMap<u32, Sup>,
    gen_counter: u64,
    stats: Arc<WireStats>,
    shutdown: Arc<AtomicBool>,
    rng: StdRng,
    catalog: Vec<String>,
    query_rate_qpm: f64,
    issued: u64,
    /// Joined at shutdown: threads of replaced/closed connections.
    graveyard: Vec<JoinHandle<()>>,
    /// Periodic crash-recovery checkpointing (None = disabled).
    checkpoint: Option<CheckpointSpec>,
    /// Restart generation (0 = cold start; bumped by a successful resume).
    generation: u32,
    /// First tick [`run`](Self::run) executes (nonzero after a resume).
    start_tick: u64,
}

impl WireServent {
    /// Bind the servent to `listener`. `overlay` lists overlay neighbors
    /// (the servent connects them logically up front, exactly like the
    /// in-memory harness, and supervises their transports); `book` maps
    /// every reachable peer id to an address — Buddy-Group members are
    /// dialed from it on demand.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mut servent: Servent,
        listener: TcpListener,
        book: HashMap<u32, SocketAddr>,
        overlay: &[u32],
        cfg: WireConfig,
        catalog: Vec<String>,
        query_rate_qpm: f64,
        seed: u64,
    ) -> std::io::Result<Self> {
        let listen_port = listener.local_addr()?.port();
        let my_id = servent.id.0;
        let mut sups = HashMap::new();
        for &peer in overlay {
            servent.connect(NodeId(peer));
            sups.insert(peer, Sup::new(true));
        }
        Ok(WireServent {
            servent,
            my_id,
            listen_port,
            listener: Some(listener),
            backoff: Backoff { base_ms: cfg.reconnect_base_ms, cap_ms: cfg.reconnect_cap_ms },
            cfg,
            book,
            links: HashMap::new(),
            sups,
            gen_counter: 0,
            stats: Arc::new(WireStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            rng: StdRng::seed_from_u64(seed),
            catalog,
            query_rate_qpm,
            issued: 0,
            graveyard: Vec::new(),
            checkpoint: None,
            generation: 0,
            start_tick: 0,
        })
    }

    /// Enable periodic checkpointing under `spec` (call before
    /// [`run`](Self::run)).
    pub fn set_checkpointing(&mut self, spec: CheckpointSpec) {
        self.checkpoint = Some(spec);
    }

    /// Restart generation: 0 until a successful [`try_resume`](Self::try_resume).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Attempt to resume from the checkpoint configured via
    /// [`set_checkpointing`](Self::set_checkpointing).
    ///
    /// Returns `Ok(None)` when no checkpoint file exists (a plain cold
    /// start), `Ok(Some(next_tick))` after restoring state, and a typed
    /// [`SnapshotError`] for anything invalid — truncated or bit-flipped
    /// container, foreign config fingerprint, undecodable payload. The
    /// caller logs the error and proceeds with a cold start; this method
    /// never panics on hostile input and leaves the runtime cold-start-clean
    /// on failure.
    pub fn try_resume(&mut self) -> Result<Option<u64>, SnapshotError> {
        let Some(spec) = self.checkpoint.clone() else { return Ok(None) };
        let path = checkpoint::snap_path(&spec.dir, self.my_id);
        if !path.exists() {
            return Ok(None);
        }
        let (found, payload) = ddp_snapshot::read_snapshot(&path)?;
        if found != spec.context {
            return Err(SnapshotError::ContextMismatch { expected: spec.context, found });
        }
        let run = checkpoint::decode_payload(&payload, &mut self.servent)?;
        self.start_tick = run.next_tick;
        self.generation = run.generation + 1;
        self.issued = run.issued;
        self.rng = StdRng::from_state(run.rng);
        for peer in run.abandoned {
            self.sups.entry(peer).or_insert_with(|| Sup::new(false)).abandoned = true;
        }
        // The restored protocol clock is ahead of every transport timestamp;
        // give surviving supervision a full death horizon from here instead
        // of judging peers against pre-crash zeros.
        for sup in self.sups.values_mut() {
            if !sup.abandoned {
                sup.last_link_tick = self.start_tick;
            }
        }
        self.stats.resumes.fetch_add(1, Ordering::Relaxed);
        Ok(Some(self.start_tick))
    }

    /// Write one checkpoint: protocol clock, RNG stream, issuance tally,
    /// abandoned-peer set, and the full servent defense state. Failures are
    /// counted, not fatal — a missed checkpoint costs recovery freshness,
    /// not uptime.
    fn write_checkpoint(&mut self, tick: u64) {
        let Some(spec) = &self.checkpoint else { return };
        let mut abandoned: Vec<u32> =
            self.sups.iter().filter(|(_, s)| s.abandoned).map(|(&p, _)| p).collect();
        abandoned.sort_unstable();
        let payload = checkpoint::encode_payload(
            tick,
            self.generation,
            self.issued,
            self.rng.state(),
            &abandoned,
            &self.servent,
        );
        let path = checkpoint::snap_path(&spec.dir, self.my_id);
        match ddp_snapshot::write_snapshot(&path, spec.context, &payload) {
            Ok(()) => {
                self.stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.stats.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                eprintln!("servent {}: checkpoint write failed: {e}", self.my_id);
            }
        }
    }

    /// Whether this side owns (re)dialing the link to `peer`: overlay links
    /// are dialed by the lower id; direct links by whoever has frames.
    fn i_dial(&self, peer: u32, sup: &Sup) -> bool {
        if sup.overlay {
            self.my_id < peer
        } else {
            !sup.pending.is_empty()
        }
    }

    /// Drive the servent for `minutes` protocol minutes, then drain.
    pub fn run(&mut self, minutes: u64) -> WireRunReport {
        let total_secs = minutes * 60;
        let (tx, rx) = sync_channel::<ConnEvent>(4_096);
        let acceptor = self.spawn_acceptor(tx.clone());

        // Connection grace: dial the overlay links we own before tick 0 so
        // minute 0 counts over (mostly) live links — the harness's links
        // exist from t=0 too.
        self.sweep_dials(tx.clone());
        let grace_end = Instant::now() + Duration::from_millis(self.cfg.connect_grace_ms);
        let start_tick = self.start_tick;
        self.pump_events_until(&rx, &tx, grace_end, start_tick);

        let start = Instant::now();
        for t in start_tick..=total_secs {
            self.do_tick(t, &tx);
            let deadline = start + Duration::from_millis((t + 1 - start_tick) * self.cfg.tick_ms);
            self.pump_events_until(&rx, &tx, deadline, t);
        }

        // Graceful drain: stop pushing, let writers flush their queues.
        for link in self.links.values() {
            link.queue.finish();
        }
        let drain_end = Instant::now() + Duration::from_millis(self.cfg.drain_timeout_ms);
        while !self.links.is_empty() && Instant::now() < drain_end {
            let left = drain_end.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left.max(Duration::from_millis(1))) {
                Ok(ConnEvent::Closed { peer, conn_gen, .. }) => {
                    if self.links.get(&peer).is_some_and(|l| l.gen == conn_gen) {
                        let link = self.links.remove(&peer).expect("just checked");
                        self.graveyard.push(link.reader);
                        self.graveyard.push(link.writer);
                    }
                }
                Ok(_) => {} // late frames/dials: no longer relevant
                Err(_) => break,
            }
        }
        self.shutdown.store(true, Ordering::Relaxed);
        for (_, link) in self.links.drain() {
            self.stats.frames_dropped.fetch_add(link.queue.len() as u64, Ordering::Relaxed);
            link.queue.abort();
            self.graveyard.push(link.reader);
            self.graveyard.push(link.writer);
        }
        // Unblock any thread parked on a full event channel, then join.
        drop(tx);
        drop(rx);
        for h in self.graveyard.drain(..) {
            let _ = h.join();
        }
        let _ = acceptor.join();

        WireRunReport {
            protocol_secs: total_secs,
            issued: self.issued,
            conn: self.stats.counters(),
            generation: self.generation,
        }
    }

    /// Process connection events until `deadline`.
    fn pump_events_until(
        &mut self,
        rx: &std::sync::mpsc::Receiver<ConnEvent>,
        tx: &SyncSender<ConnEvent>,
        deadline: Instant,
        cur_tick: u64,
    ) {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(ev) => self.handle_event(ev, tx, cur_tick),
                Err(RecvTimeoutError::Timeout) => return,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    fn handle_event(&mut self, ev: ConnEvent, tx: &SyncSender<ConnEvent>, cur_tick: u64) {
        match ev {
            ConnEvent::Accepted { stream, peer_id, peer_port } => {
                self.stats.accepts.fetch_add(1, Ordering::Relaxed);
                // Learn addresses from the hello, but never overwrite the
                // driver-provided book — chaos proxies route through it.
                if let Ok(peer_sock) = stream.peer_addr() {
                    self.book
                        .entry(peer_id)
                        .or_insert_with(|| SocketAddr::new(peer_sock.ip(), peer_port));
                }
                if self.sups.get(&peer_id).is_some_and(|s| s.abandoned) {
                    // We cut this peer (or it died); refuse the transport.
                    return;
                }
                self.install_link(peer_id, stream, false, tx, cur_tick);
            }
            ConnEvent::DialDone { peer, result } => {
                if let Some(sup) = self.sups.get_mut(&peer) {
                    sup.dialing = false;
                }
                match result {
                    Ok(stream) => {
                        self.stats.dials_ok.fetch_add(1, Ordering::Relaxed);
                        if self.sups.get(&peer).is_some_and(|s| s.abandoned) {
                            return;
                        }
                        self.install_link(peer, stream, true, tx, cur_tick);
                    }
                    Err(e) => {
                        self.stats.dials_failed.fetch_add(1, Ordering::Relaxed);
                        if !matches!(e, HandshakeError::Connect(_)) {
                            // TCP worked but the hello did not: half-open or
                            // hostile listener.
                            self.stats.handshake_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        self.schedule_redial(peer);
                    }
                }
            }
            ConnEvent::Frame { peer, conn_gen, frame } => {
                let live = self.links.get_mut(&peer).filter(|l| l.gen == conn_gen);
                let Some(link) = live else { return };
                link.last_heard_tick = cur_tick;
                if let Some(sup) = self.sups.get_mut(&peer) {
                    sup.last_link_tick = cur_tick;
                }
                let kind = frame.get(16).copied();
                let from = NodeId(peer);
                // Same admission rule as the in-memory harness: overlay
                // traffic needs a neighbor link; Bye (0x02), Neighbor_Traffic
                // (0x83) and BG liveness Ping/Pong (0x00/0x01) run direct.
                let mut outbox = Outbox::new();
                if self.servent.is_neighbor(from)
                    || matches!(kind, Some(0x02) | Some(0x83) | Some(0x00) | Some(0x01))
                {
                    self.servent.handle_frame(from, frame, cur_tick, &mut outbox);
                }
                self.flush(outbox, tx, cur_tick);
                if kind == Some(0x02) {
                    // The peer cut us (Bye): the state machine already
                    // dropped the neighbor; retire the transport too.
                    self.abandon(peer);
                    if let Some(link) = self.links.get_mut(&peer) {
                        link.close_after_drain = true;
                        link.queue.finish();
                    }
                }
            }
            ConnEvent::Closed { peer, conn_gen, reason } => {
                let stale = self.links.get(&peer).is_none_or(|l| l.gen != conn_gen);
                if stale {
                    return;
                }
                let link = self.links.remove(&peer).expect("gen matched");
                self.stats.frames_dropped.fetch_add(link.queue.len() as u64, Ordering::Relaxed);
                link.queue.abort();
                self.graveyard.push(link.reader);
                self.graveyard.push(link.writer);
                if matches!(reason, CloseReason::Codec(_)) {
                    self.stats.codec_disconnects.fetch_add(1, Ordering::Relaxed);
                    // Hostile bytes: treat like a cut — no reconnect.
                    self.abandon(peer);
                    return;
                }
                if link.close_after_drain {
                    return; // intentional close; supervision already over
                }
                self.schedule_redial(peer);
            }
        }
    }

    /// Put a handshaken connection into service (tie-breaking duplicates:
    /// the connection dialed by the lower id wins).
    fn install_link(
        &mut self,
        peer: u32,
        stream: TcpStream,
        dialed_by_me: bool,
        tx: &SyncSender<ConnEvent>,
        cur_tick: u64,
    ) {
        if self.links.contains_key(&peer) {
            let new_dialer = if dialed_by_me { self.my_id } else { peer };
            let old_dialer = if dialed_by_me { peer } else { self.my_id };
            if new_dialer > old_dialer {
                return; // keep the existing connection, drop the new socket
            }
            let old = self.links.remove(&peer).expect("just checked");
            self.stats.frames_dropped.fetch_add(old.queue.len() as u64, Ordering::Relaxed);
            old.queue.abort();
            self.graveyard.push(old.reader);
            self.graveyard.push(old.writer);
        }
        let Ok(read_half) = stream.try_clone() else { return };
        self.gen_counter += 1;
        let gen = self.gen_counter;
        let queue = Arc::new(SendQueue::new(self.cfg.send_queue_frames));
        let reader = conn::spawn_reader(
            read_half,
            peer,
            gen,
            tx.clone(),
            self.stats.clone(),
            self.shutdown.clone(),
            self.cfg.read_timeout_ms,
        );
        let writer = conn::spawn_writer(
            stream,
            peer,
            gen,
            queue.clone(),
            tx.clone(),
            self.stats.clone(),
            self.cfg.write_timeout_ms,
        );
        let sup = self.sups.entry(peer).or_insert_with(|| Sup::new(false));
        sup.attempts = 0;
        sup.next_dial_at = None;
        sup.last_link_tick = cur_tick;
        if sup.ever_connected {
            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        sup.ever_connected = true;
        let backlog: Vec<Bytes> = sup.pending.drain(..).collect();
        let was_new_overlay = sup.overlay && !self.servent.is_neighbor(NodeId(peer));
        self.links.insert(
            peer,
            Link {
                gen,
                queue: queue.clone(),
                reader,
                writer,
                last_heard_tick: cur_tick,
                close_after_drain: false,
            },
        );
        for frame in backlog {
            let evicted = queue.push(frame);
            self.stats.frames_dropped.fetch_add(evicted, Ordering::Relaxed);
        }
        if was_new_overlay {
            // A supervised overlay link (re)appeared after the state machine
            // had given the peer up: reattach and re-announce the list.
            self.servent.connect(NodeId(peer));
            let mut out = Outbox::new();
            self.servent.announce_neighbor_list(&mut out);
            self.flush(out, tx, cur_tick);
        }
    }

    /// Supervision is over for `peer`; queued frames are accounted dropped.
    fn abandon(&mut self, peer: u32) {
        if let Some(sup) = self.sups.get_mut(&peer) {
            sup.abandoned = true;
            sup.next_dial_at = None;
            self.stats.frames_dropped.fetch_add(sup.pending.len() as u64, Ordering::Relaxed);
            sup.pending.clear();
        }
    }

    fn schedule_redial(&mut self, peer: u32) {
        let Some(sup) = self.sups.get_mut(&peer) else { return };
        if sup.abandoned || sup.dialing {
            return;
        }
        let responsible = if sup.overlay { self.my_id < peer } else { !sup.pending.is_empty() };
        if !responsible {
            return;
        }
        let delay = self.backoff.delay_ms(sup.attempts, &mut self.rng);
        sup.attempts = sup.attempts.saturating_add(1);
        sup.next_dial_at = Some(Instant::now() + Duration::from_millis(delay));
    }

    /// Route one outbound frame: live link, else pending + dial, else count
    /// it unroutable.
    fn route(&mut self, to: u32, frame: Bytes, tx: &SyncSender<ConnEvent>) {
        let is_bye = frame.get(16) == Some(&0x02);
        if let Some(link) = self.links.get_mut(&to) {
            if link.close_after_drain {
                self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let evicted = link.queue.push(frame);
            self.stats.frames_dropped.fetch_add(evicted, Ordering::Relaxed);
            if is_bye {
                // Flush everything queued (the Bye last), then close; never
                // dial this peer again.
                link.close_after_drain = true;
                link.queue.finish();
                self.abandon(to);
            }
            return;
        }
        if is_bye {
            // Cutting a peer we have no transport to: nothing to flush.
            self.abandon(to);
            self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !self.book.contains_key(&to) {
            self.stats.frames_unroutable.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let cap = self.cfg.send_queue_frames;
        let sup = self.sups.entry(to).or_insert_with(|| Sup::new(false));
        if sup.abandoned {
            self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if sup.pending.len() >= cap {
            sup.pending.pop_front();
            self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
        }
        sup.pending.push_back(frame);
        if !sup.dialing && sup.next_dial_at.is_none() {
            sup.next_dial_at = Some(Instant::now());
        }
        self.sweep_dials(tx.clone());
    }

    fn flush(&mut self, outbox: Outbox, tx: &SyncSender<ConnEvent>, _cur_tick: u64) {
        for (to, frame) in outbox {
            self.route(to.0, frame, tx);
        }
    }

    /// Start every dial that is due and not already in flight.
    fn sweep_dials(&mut self, tx: SyncSender<ConnEvent>) {
        let now = Instant::now();
        let due: Vec<(u32, SocketAddr)> = self
            .sups
            .iter()
            .filter(|(peer, sup)| {
                !sup.abandoned
                    && !sup.dialing
                    && !self.links.contains_key(peer)
                    && (sup.next_dial_at.is_some_and(|at| at <= now)
                        || (sup.next_dial_at.is_none() && self.i_dial(**peer, sup)))
            })
            .filter_map(|(&peer, _)| self.book.get(&peer).map(|&a| (peer, a)))
            .collect();
        for (peer, addr) in due {
            let sup = self.sups.get_mut(&peer).expect("listed above");
            sup.dialing = true;
            sup.next_dial_at = None;
            let tx = tx.clone();
            let (my_id, my_port) = (self.my_id, self.listen_port);
            let (ct, ht) = (self.cfg.connect_timeout_ms, self.cfg.handshake_timeout_ms);
            std::thread::spawn(move || {
                let result =
                    conn::dial(addr, my_id, my_port, ct, ht).and_then(|(stream, peer_id, _)| {
                        if peer_id == peer {
                            Ok(stream)
                        } else {
                            Err(HandshakeError::Io(format!(
                                "dialed peer {peer}, got hello from {peer_id}"
                            )))
                        }
                    });
                let _ = tx.send(ConnEvent::DialDone { peer, result });
            });
        }
    }

    /// One protocol second. Mirrors the in-memory harness's step order:
    /// (deliveries happen continuously between ticks), query issuance,
    /// `on_second`, then the minute boundary.
    fn do_tick(&mut self, t: u64, tx: &SyncSender<ConnEvent>) {
        if t > 0 {
            if matches!(self.servent.role(), ServentRole::Good)
                && !self.catalog.is_empty()
                && self.rng.gen::<f64>() < self.query_rate_qpm / 60.0
            {
                let target = self.catalog[self.rng.gen_range(0..self.catalog.len())].clone();
                let mut out = Outbox::new();
                self.servent.issue_query(&target, t, &mut out);
                self.issued += 1;
                self.flush(out, tx, t);
            }
            let mut out = Outbox::new();
            self.servent.on_second(t, &mut out);
            self.flush(out, tx, t);
        }
        if t.is_multiple_of(60) {
            let mut out = Outbox::new();
            self.servent.on_minute(t, t / 60, &mut out);
            self.flush(out, tx, t);
        }
        self.supervise(t, tx);
        let due = self.checkpoint.as_ref().is_some_and(|s| {
            s.every_ticks > 0 && t > self.start_tick && t.is_multiple_of(s.every_ticks)
        });
        if due {
            self.write_checkpoint(t);
        }
    }

    /// Periodic supervision: idle closes, peer-death, due redials.
    fn supervise(&mut self, t: u64, tx: &SyncSender<ConnEvent>) {
        // Idle links: nothing heard for the horizon — close and (if owned)
        // redial. The silent peer's reports go assume-zero upstream.
        let idle: Vec<u32> = self
            .links
            .iter()
            .filter(|(_, l)| {
                !l.close_after_drain
                    && t.saturating_sub(l.last_heard_tick) > self.cfg.idle_timeout_ticks
            })
            .map(|(&p, _)| p)
            .collect();
        for peer in idle {
            let link = self.links.remove(&peer).expect("listed above");
            self.stats.idle_closes.fetch_add(1, Ordering::Relaxed);
            self.stats.frames_dropped.fetch_add(link.queue.len() as u64, Ordering::Relaxed);
            link.queue.abort();
            self.graveyard.push(link.reader);
            self.graveyard.push(link.writer);
            self.schedule_redial(peer);
        }
        // Peer death: a supervised overlay transport that has stayed down
        // past the horizon. The state machine drops the neighbor (its
        // counters stop mattering) and the membership change is announced.
        let dead: Vec<u32> = self
            .sups
            .iter()
            .filter(|(peer, sup)| {
                sup.overlay
                    && !sup.abandoned
                    && !self.links.contains_key(peer)
                    && t.saturating_sub(sup.last_link_tick) > self.cfg.peer_death_ticks
            })
            .map(|(&p, _)| p)
            .collect();
        for peer in dead {
            self.abandon(peer);
            self.servent.disconnect(NodeId(peer));
            let mut out = Outbox::new();
            self.servent.announce_neighbor_list(&mut out);
            self.flush(out, tx, t);
        }
        self.sweep_dials(tx.clone());
    }

    fn spawn_acceptor(&mut self, tx: SyncSender<ConnEvent>) -> JoinHandle<()> {
        let listener = self.listener.take().expect("run called once");
        listener.set_nonblocking(true).expect("nonblocking listener");
        let stats = self.stats.clone();
        let shutdown = self.shutdown.clone();
        let (my_id, my_port) = (self.my_id, self.listen_port);
        let ht = self.cfg.handshake_timeout_ms;
        std::thread::Builder::new()
            .name(format!("ddp-accept-{my_id}"))
            .spawn(move || loop {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        // One-shot handshake thread: a dialer that connects
                        // and then stalls only costs its own thread, not the
                        // accept loop.
                        let _ = stream.set_nonblocking(false);
                        let tx = tx.clone();
                        let stats = stats.clone();
                        std::thread::spawn(move || {
                            match conn::accept_hello(stream, my_id, my_port, ht) {
                                Ok((s, peer_id, peer_port)) => {
                                    let _ = tx.send(ConnEvent::Accepted {
                                        stream: s,
                                        peer_id,
                                        peer_port,
                                    });
                                }
                                Err(_) => {
                                    stats.handshake_failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            })
            .expect("spawn acceptor thread")
    }
}
