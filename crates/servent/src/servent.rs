//! The peer state machine.

use bytes::Bytes;
use ddp_police::indicator::{general_indicator, is_bad, single_indicator};
use ddp_police::{DdPoliceConfig, MonitorBackend};
use ddp_protocol::routing::Offer;
use ddp_protocol::{
    decode_message, encode_message, Bye, Guid, Message, NeighborList, NeighborTraffic, Payload,
    PeerAddr, Pong, Query, QueryHit, QueryHitResult, Receipt, SeenTable,
};
use ddp_sketch::SketchMonitor;
use ddp_topology::NodeId;
use std::collections::{BTreeMap, HashMap};

/// What kind of peer this servent is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServentRole {
    /// A regular peer: searches, forwards, polices.
    Good,
    /// A DDoS agent: floods `rate_qpm` distinct queries per minute per
    /// neighbor; does not police. When `respond_reports` is false it also
    /// refuses `Neighbor_Traffic` and list exchanges (§3.4's choice 3).
    FloodingAgent { rate_qpm: u32, respond_reports: bool },
}

/// Servent configuration.
#[derive(Debug, Clone)]
pub struct ServentConfig {
    /// DD-POLICE parameters (thresholds, exchange period, q, CT).
    pub police: DdPoliceConfig,
    /// Query TTL.
    pub ttl: u8,
    /// Seconds an investigation waits for reports ("waiting for another 50
    /// seconds", §3.3).
    pub report_deadline_secs: u64,
    /// Strings this servent shares (query criteria it answers).
    pub library: Vec<String>,
}

impl Default for ServentConfig {
    fn default() -> Self {
        ServentConfig {
            police: DdPoliceConfig::default(),
            ttl: 5,
            report_deadline_secs: 50,
            library: Vec::new(),
        }
    }
}

/// Per-neighbor link state.
#[derive(Debug, Clone, Default)]
struct LinkState {
    /// Queries sent to this neighbor in the current minute (wire count).
    out_cur: u32,
    /// *Fresh* (non-duplicate) queries received from this neighbor in the
    /// current minute — the receiver-side `In_query` the indicators need.
    in_cur: u32,
    /// Finalized previous-minute counters (the reporting window).
    out_prev: u32,
    in_prev: u32,
    /// The neighbor's latest receipt: how many fresh queries *it* accepted
    /// from us last minute (the trustworthy-when-honest `Q_{me→them}`).
    receipt_prev: u32,
    /// Last neighbor list announced by this neighbor.
    announced: Option<Vec<NodeId>>,
}

/// An open Buddy-Group investigation of one suspect.
#[derive(Debug, Clone)]
struct Investigation {
    deadline: u64,
    members: Vec<NodeId>,
    /// member -> (Q_{m→suspect}, Q_{suspect→m}) as reported.
    reports: HashMap<u32, (u32, u32)>,
}

/// Outbound frames produced by one handler call.
pub type Outbox = Vec<(NodeId, Bytes)>;

/// A complete DD-POLICE servent.
#[derive(Debug)]
pub struct Servent {
    pub id: NodeId,
    addr: PeerAddr,
    role: ServentRole,
    cfg: ServentConfig,
    links: BTreeMap<u32, LinkState>,
    seen: SeenTable,
    guid_seq: u64,
    /// GUIDs of queries this servent issued, with issue time.
    issued: HashMap<Guid, u64>,
    /// Resolved queries: issue time -> first-hit latency (secs).
    pub hits: Vec<(u64, u64)>,
    investigations: BTreeMap<u32, Investigation>,
    /// suspect -> last time we broadcast a Neighbor_Traffic about it.
    last_nt: HashMap<u32, u64>,
    /// Peers this servent defensively disconnected, with time.
    pub cut_log: Vec<(u64, NodeId)>,
    /// Missing-list grace bookkeeping per suspect.
    missing_list_strikes: HashMap<u32, u8>,
    /// Every concluded investigation: (second, suspect, g, s, cut).
    pub verdict_log: Vec<(u64, NodeId, f64, f64, bool)>,
    /// Scheduled Neighbor_Traffic broadcasts: (due, suspect, members).
    /// Deferred a couple of seconds so the current minute's receipts land
    /// before the reports that quote them.
    pending_nt: Vec<(u64, NodeId, Vec<NodeId>)>,
    /// Buddy-Group liveness (§3.1: "A peer ping members within the same BG
    /// periodically to make sure that other members are online"): last time
    /// we heard anything from each known member.
    member_last_seen: HashMap<u32, u64>,
    /// Sketch traffic monitor when `cfg.police.monitor` selects the sketch
    /// backend; `None` under the exact default (per-link counters, exactly
    /// the pre-backend behavior). When active, the live-minute counting goes
    /// through the count-min window instead of `out_cur`/`in_cur`, and the
    /// minute rollover materializes `out_prev`/`in_prev` from estimates —
    /// every downstream consumer (receipts, suspicion scan, reports) then
    /// reads estimates without knowing the backend changed.
    monitor: Option<SketchMonitor>,
}

impl Servent {
    /// New servent with the given role and config.
    pub fn new(id: NodeId, role: ServentRole, cfg: ServentConfig) -> Self {
        let monitor = match cfg.police.monitor {
            MonitorBackend::Exact => None,
            MonitorBackend::Sketch(params) => Some(SketchMonitor::new(params)),
        };
        Servent {
            id,
            addr: PeerAddr::from_node_index(id.0),
            role,
            cfg,
            links: BTreeMap::new(),
            seen: SeenTable::new(600),
            guid_seq: 0,
            issued: HashMap::new(),
            hits: Vec::new(),
            investigations: BTreeMap::new(),
            last_nt: HashMap::new(),
            cut_log: Vec::new(),
            missing_list_strikes: HashMap::new(),
            verdict_log: Vec::new(),
            pending_nt: Vec::new(),
            member_last_seen: HashMap::new(),
            monitor,
        }
    }

    /// The active monitor-backend label (`""` for exact) — run attribution.
    pub fn monitor_backend(&self) -> String {
        match self.cfg.police.monitor {
            MonitorBackend::Exact => String::new(),
            backend => backend.label(),
        }
    }

    /// The servent's role.
    pub fn role(&self) -> ServentRole {
        self.role
    }

    /// Current neighbors.
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.links.keys().map(|&k| NodeId(k)).collect()
    }

    /// Whether `peer` is a neighbor.
    pub fn is_neighbor(&self, peer: NodeId) -> bool {
        self.links.contains_key(&peer.0)
    }

    /// Attach a neighbor (handshake done out of band).
    pub fn connect(&mut self, peer: NodeId) {
        self.links.entry(peer.0).or_default();
    }

    /// Detach a neighbor locally (the far side is told via Bye elsewhere).
    pub fn disconnect(&mut self, peer: NodeId) {
        self.links.remove(&peer.0);
        self.investigations.remove(&peer.0);
        self.missing_list_strikes.remove(&peer.0);
        // The heavy-hitter slot (and its bucket) dies with the link.
        if let Some(m) = self.monitor.as_mut() {
            m.forget_sender(peer.0);
        }
    }

    /// Send the current neighbor list to every neighbor, immediately.
    ///
    /// The in-memory harness announces by running `on_minute(0, 0)` at build
    /// time; transports where links come up (or back) asynchronously call
    /// this when overlay membership changes so Buddy Groups re-form without
    /// waiting for the next exchange period. Respects the role's
    /// announcement policy (a stonewalling agent stays silent).
    pub fn announce_neighbor_list(&mut self, out: &mut Outbox) {
        let announces = match self.role {
            ServentRole::Good => true,
            ServentRole::FloodingAgent { respond_reports, .. } => respond_reports,
        };
        if !announces {
            return;
        }
        let list = NeighborList {
            neighbors: self.neighbors().iter().map(|p| PeerAddr::from_node_index(p.0)).collect(),
        };
        let msg = Message::new(self.next_guid(), 1, Payload::NeighborList(list));
        let frame = self.frame(&msg);
        for peer in self.neighbors() {
            out.push((peer, frame.clone()));
        }
    }

    fn next_guid(&mut self) -> Guid {
        self.guid_seq += 1;
        Guid::derived(self.id.0, self.guid_seq)
    }

    fn frame(&self, msg: &Message) -> Bytes {
        encode_message(msg)
    }

    fn send_query_to(&mut self, to: NodeId, msg: &Message, out: &mut Outbox) {
        if let Some(link) = self.links.get_mut(&to.0) {
            match self.monitor.as_mut() {
                Some(m) => m.record_flow(self.id.0, to.0, 1),
                None => link.out_cur += 1,
            }
            out.push((to, encode_message(msg)));
        }
    }

    /// Issue one search for `criteria`, flooding all neighbors.
    pub fn issue_query(&mut self, criteria: &str, now: u64, out: &mut Outbox) {
        let guid = self.next_guid();
        self.issued.insert(guid, now);
        // Mark our own query as seen so echoes die here.
        self.seen.offer(guid, self.id.0, now);
        let msg = Message::new(
            guid,
            self.cfg.ttl,
            Payload::Query(Query { min_speed: 0, criteria: criteria.into() }),
        );
        for peer in self.neighbors() {
            self.send_query_to(peer, &msg, out);
        }
    }

    /// One wall-clock second: attackers emit their flood share; everyone
    /// concludes investigations whose deadline passed.
    pub fn on_second(&mut self, now: u64, out: &mut Outbox) {
        if let ServentRole::FloodingAgent { rate_qpm, .. } = self.role {
            let per_second = (rate_qpm / 60).max(1);
            for peer in self.neighbors() {
                for _ in 0..per_second {
                    let guid = self.next_guid();
                    self.seen.offer(guid, self.id.0, now);
                    let msg = Message::new(
                        guid,
                        self.cfg.ttl,
                        Payload::Query(Query {
                            min_speed: 0,
                            criteria: format!("bogus-{}", self.guid_seq),
                        }),
                    );
                    self.send_query_to(peer, &msg, out);
                }
            }
        }
        // Drain deferred Neighbor_Traffic broadcasts.
        let due: Vec<(u64, NodeId, Vec<NodeId>)> = {
            let (ready, later): (Vec<_>, Vec<_>) =
                std::mem::take(&mut self.pending_nt).into_iter().partition(|&(t, ..)| now >= t);
            self.pending_nt = later;
            ready
        };
        for (_, suspect, members) in due {
            self.broadcast_nt(suspect, &members, now, out);
        }
        self.conclude_due_investigations(now, out);
        self.seen.sweep(now);
    }

    /// Minute boundary: finalize counters, run the DD-POLICE steps.
    pub fn on_minute(&mut self, now: u64, minute: u64, out: &mut Outbox) {
        match self.monitor.as_mut() {
            None => {
                for link in self.links.values_mut() {
                    link.out_prev = link.out_cur;
                    link.in_prev = link.in_cur;
                    link.out_cur = 0;
                    link.in_cur = 0;
                }
            }
            Some(m) => {
                // Materialize the closing minute from the sketch window
                // (overestimate-only: a flooder cannot hide in an estimate
                // that never reads low), feed each sender's aggregate to the
                // heavy-hitter table, then open the next window — which also
                // drains the sustained-rate buckets by the warning budget.
                let me = self.id.0;
                for (&peer, link) in self.links.iter_mut() {
                    link.out_prev = m.estimate(me, peer);
                    link.in_prev = m.estimate(peer, me);
                    link.out_cur = 0;
                    link.in_cur = 0;
                    m.note_sender_total(peer, link.in_prev as u64);
                }
                m.begin_tick(self.cfg.police.warning_threshold_qpm as u64);
            }
        }
        let polices = matches!(self.role, ServentRole::Good);
        let announces = match self.role {
            ServentRole::Good => true,
            ServentRole::FloodingAgent { respond_reports, .. } => respond_reports,
        };
        // Neighbor-list exchange (§3.1) on the periodic schedule.
        let period = match self.cfg.police.exchange {
            ddp_police::ExchangePolicy::Periodic { minutes } => minutes.max(1) as u64,
            ddp_police::ExchangePolicy::EventDriven => 1,
        };
        if announces && minute.is_multiple_of(period) {
            let list = NeighborList {
                neighbors: self
                    .neighbors()
                    .iter()
                    .map(|p| PeerAddr::from_node_index(p.0))
                    .collect(),
            };
            let msg = Message::new(self.next_guid(), 1, Payload::NeighborList(list));
            let frame = self.frame(&msg);
            for peer in self.neighbors() {
                out.push((peer, frame.clone()));
            }
        }
        // Per-link receipts (every minute): tell each neighbor how many
        // fresh queries we accepted from it. Receiver-side counting is what
        // lets Buddy Groups discount an attacker's own echoes.
        if announces {
            for peer in self.neighbors() {
                let fresh = self.links.get(&peer.0).map_or(0, |l| l.in_prev);
                let r = Receipt {
                    subject_ip: PeerAddr::from_node_index(peer.0).ip,
                    fresh_queries: fresh,
                };
                let msg = Message::new(self.next_guid(), 1, Payload::Receipt(r));
                out.push((peer, self.frame(&msg)));
            }
        }
        if !polices {
            return;
        }
        // BG liveness pings (§3.1): probe Buddy-Group members we have not
        // heard from this minute. Their Pong (or any other frame) refreshes
        // `member_last_seen`; members silent past the staleness horizon are
        // excluded from report collection (they count as assume-zero anyway,
        // but we stop spending messages on them).
        let mut to_ping: Vec<NodeId> = Vec::new();
        for link in self.links.values() {
            if let Some(members) = &link.announced {
                for &m in members {
                    if m == self.id {
                        continue;
                    }
                    let stale = self
                        .member_last_seen
                        .get(&m.0)
                        .is_none_or(|&t| now.saturating_sub(t) >= 60);
                    if stale && !to_ping.contains(&m) {
                        to_ping.push(m);
                    }
                }
            }
        }
        for m in to_ping {
            let ping = Message::new(self.next_guid(), 1, Payload::Ping(ddp_protocol::Ping));
            out.push((m, self.frame(&ping)));
        }
        // Suspicion scan (§3.3) over the finalized minute.
        let suspects: Vec<NodeId> = self
            .links
            .iter()
            .filter(|(_, l)| l.in_prev > self.cfg.police.warning_threshold_qpm)
            .map(|(&k, _)| NodeId(k))
            .collect();
        for suspect in suspects {
            self.open_investigation(suspect, now, out);
        }
    }

    fn open_investigation(&mut self, suspect: NodeId, now: u64, _out: &mut Outbox) {
        if self.investigations.contains_key(&suspect.0) {
            return;
        }
        let members: Vec<NodeId> =
            match self.links.get(&suspect.0).and_then(|l| l.announced.clone()) {
                Some(list) => {
                    self.missing_list_strikes.remove(&suspect.0);
                    list
                }
                None => {
                    // No list yet: wait out the grace period, then judge solo.
                    let strikes = self.missing_list_strikes.entry(suspect.0).or_insert(0);
                    *strikes = strikes.saturating_add(1);
                    if *strikes < self.cfg.police.missing_list_grace {
                        return;
                    }
                    vec![self.id]
                }
            };
        self.investigations.insert(
            suspect.0,
            Investigation {
                deadline: now + self.cfg.report_deadline_secs,
                members: members.clone(),
                reports: HashMap::new(),
            },
        );
        // Deferred so this minute's receipts arrive before the reports.
        self.pending_nt.push((now + 2, suspect, members));
    }

    /// Send our Neighbor_Traffic report about `suspect` to the other Buddy
    /// Group members (50-second suppression).
    fn broadcast_nt(&mut self, suspect: NodeId, members: &[NodeId], now: u64, out: &mut Outbox) {
        if let Some(&last) = self.last_nt.get(&suspect.0) {
            if now.saturating_sub(last) < 50 {
                return;
            }
        }
        self.last_nt.insert(suspect.0, now);
        let Some(link) = self.links.get(&suspect.0) else { return };
        // Members not heard from in over three minutes are treated as
        // offline (BG ping failures) and skipped.
        let horizon = 180u64;
        let nt = NeighborTraffic {
            source_ip: self.addr.ip,
            suspect_ip: PeerAddr::from_node_index(suspect.0).ip,
            timestamp: now as u32,
            // Out_query(suspect): the suspect's receipt for our traffic —
            // receiver-measured, duplicate-filtered (0 if it never receipts).
            outgoing_queries: link.receipt_prev,
            // In_query(suspect): our own fresh count from the suspect.
            incoming_queries: link.in_prev,
        };
        let msg = Message::new(self.next_guid(), 1, Payload::NeighborTraffic(nt));
        let frame = self.frame(&msg);
        for &m in members {
            if m == self.id {
                continue;
            }
            let dead =
                self.member_last_seen.get(&m.0).is_some_and(|&t| now.saturating_sub(t) > horizon)
                    && now > horizon;
            if !dead {
                out.push((m, frame.clone()));
            }
        }
    }

    fn conclude_due_investigations(&mut self, now: u64, out: &mut Outbox) {
        let due: Vec<u32> = self
            .investigations
            .iter()
            .filter(|(_, inv)| now >= inv.deadline)
            .map(|(&k, _)| k)
            .collect();
        for suspect_key in due {
            let inv = self.investigations.remove(&suspect_key).expect("just listed");
            let suspect = NodeId(suspect_key);
            let Some(link) = self.links.get(&suspect_key) else { continue };
            // Assemble the sums: own counters plus reports; missing => 0.
            // Q_{me→j} uses the suspect's receipt (its fresh-In from us);
            // a suspect that issues no receipts forfeits the discount.
            let mut sum_out_of_suspect = link.in_prev as f64; // Q_{j→me}
            let mut sum_into_suspect = link.receipt_prev as f64; // Q_{me→j}
            let mut k = 1usize;
            for &m in &inv.members {
                if m == self.id {
                    continue;
                }
                k += 1;
                if let Some(&(m_to_j, j_to_m)) = inv.reports.get(&m.0) {
                    sum_into_suspect += m_to_j as f64;
                    sum_out_of_suspect += j_to_m as f64;
                }
            }
            let q = self.cfg.police.q_qpm;
            let g = general_indicator(sum_out_of_suspect, sum_into_suspect, k, q);
            let s = single_indicator(
                link.in_prev as f64,
                sum_into_suspect - link.receipt_prev as f64,
                q,
            );
            let bad = is_bad(g, s, self.cfg.police.cut_threshold);
            self.verdict_log.push((now, suspect, g, s, bad));
            if bad {
                let bye = Message::new(
                    self.next_guid(),
                    1,
                    Payload::Bye(Bye {
                        code: Bye::CODE_DDOS_SUSPECT,
                        reason: format!("g={g:.1} s={s:.1} exceeded CT"),
                    }),
                );
                out.push((suspect, self.frame(&bye)));
                self.disconnect(suspect);
                self.cut_log.push((now, suspect));
            }
        }
    }

    /// Handle one inbound frame. Unknown/undecodable frames are dropped (a
    /// real servent closes the connection; the harness has no byte errors).
    pub fn handle_frame(&mut self, from: NodeId, frame: Bytes, now: u64, out: &mut Outbox) {
        let mut cursor = frame;
        let Ok(msg) = decode_message(&mut cursor) else { return };
        self.member_last_seen.insert(from.0, now);
        self.handle_message(from, msg, now, out);
    }

    fn handle_message(&mut self, from: NodeId, msg: Message, now: u64, out: &mut Outbox) {
        match msg.payload {
            Payload::Query(ref q) => self.handle_query(from, &msg, q.clone(), now, out),
            Payload::QueryHit(ref qh) => self.handle_hit(&msg, qh.clone(), now, out),
            Payload::Ping(_) => {
                let pong = Message::new(
                    msg.header.guid,
                    1,
                    Payload::Pong(Pong {
                        addr: self.addr,
                        shared_files: self.cfg.library.len() as u32,
                        shared_kb: 0,
                    }),
                );
                out.push((from, self.frame(&pong)));
            }
            Payload::Pong(_) => {}
            Payload::NeighborList(nl) => {
                if let Some(link) = self.links.get_mut(&from.0) {
                    link.announced =
                        Some(nl.neighbors.iter().map(|a| NodeId(a.node_index())).collect());
                }
            }
            Payload::NeighborTraffic(nt) => self.handle_nt(from, nt, now, out),
            Payload::Receipt(r) => {
                if let Some(link) = self.links.get_mut(&from.0) {
                    link.receipt_prev = r.fresh_queries;
                }
            }
            Payload::Bye(_) => self.disconnect(from),
        }
    }

    fn handle_query(&mut self, from: NodeId, msg: &Message, q: Query, now: u64, out: &mut Outbox) {
        if !self.links.contains_key(&from.0) {
            return;
        }
        if self.seen.offer(msg.header.guid, from.0, now) == Offer::Duplicate {
            return; // duplicates are dropped *and excluded from In_query*
        }
        match self.monitor.as_mut() {
            Some(m) => m.record_flow(from.0, self.id.0, 1),
            None => {
                if let Some(link) = self.links.get_mut(&from.0) {
                    link.in_cur += 1;
                }
            }
        }
        // Local lookup: answer with a QueryHit routed back to `from`.
        if self.cfg.library.iter().any(|item| item == &q.criteria) {
            let hit = Message::new(
                msg.header.guid,
                msg.header.hops.saturating_add(2),
                Payload::QueryHit(QueryHit {
                    addr: self.addr,
                    speed_kbps: 1_000,
                    results: vec![QueryHitResult {
                        file_index: 0,
                        file_size: 1,
                        file_name: q.criteria.clone(),
                    }],
                    servent_id: *Guid::derived(self.id.0, 0).as_bytes(),
                }),
            );
            out.push((from, self.frame(&hit)));
        }
        // Forward with decremented TTL to all other neighbors.
        if let Some(header) = msg.header.forwarded() {
            let fwd = Message { header, payload: Payload::Query(q) };
            for peer in self.neighbors() {
                if peer != from {
                    self.send_query_to(peer, &fwd, out);
                }
            }
        }
    }

    fn handle_hit(&mut self, msg: &Message, qh: QueryHit, now: u64, out: &mut Outbox) {
        if let Some(&issued_at) = self.issued.get(&msg.header.guid) {
            self.hits.push((issued_at, now - issued_at));
            self.issued.remove(&msg.header.guid);
            return;
        }
        // Route back along the inverse path.
        if let Some(back) = self.seen.reverse_route(&msg.header.guid) {
            let to = NodeId(back);
            if self.is_neighbor(to) {
                let fwd = Message { header: msg.header, payload: Payload::QueryHit(qh) };
                out.push((to, self.frame(&fwd)));
            }
        }
    }

    fn handle_nt(&mut self, from: NodeId, nt: NeighborTraffic, now: u64, _out: &mut Outbox) {
        let suspect = NodeId(PeerAddr { ip: nt.suspect_ip, port: 0 }.node_index());
        // Record the report if we are investigating this suspect.
        if let Some(inv) = self.investigations.get_mut(&suspect.0) {
            if inv.members.contains(&from) {
                inv.reports.insert(from.0, (nt.outgoing_queries, nt.incoming_queries));
            }
        }
        // §3.3: "On receiving a Neighbor_Traffic message, a peer in the BG
        // will check whether it has sent a Neighbor_Traffic message to other
        // members in this BG in past 50 seconds. If not, it will send such a
        // message to other members."
        let responds = match self.role {
            ServentRole::Good => true,
            ServentRole::FloodingAgent { respond_reports, .. } => respond_reports,
        };
        if responds && self.is_neighbor(suspect) {
            let members = self
                .links
                .get(&suspect.0)
                .and_then(|l| l.announced.clone())
                .unwrap_or_else(|| vec![from]);
            self.pending_nt.push((now + 2, suspect, members));
        }
    }

    /// Previous-minute (Out, In) counters for a neighbor — test telemetry.
    pub fn prev_minute_counters(&self, peer: NodeId) -> Option<(u32, u32)> {
        self.links.get(&peer.0).map(|l| (l.out_prev, l.in_prev))
    }
}

// ---------------------------------------------------------------------------
// Checkpointing: the defense-relevant mutable state, nothing else.
//
// Identity and configuration (id, addr, role, cfg) are deliberately NOT
// serialized — a resumed servent rebuilds them from its command line, and the
// snapshot container's context fingerprint rejects a checkpoint written under
// a different configuration. What *is* persisted is everything an attacker
// would love to see reset: per-neighbor In/Out counters and receipts, the
// duplicate-suppression table, open investigations and their reports, the
// cut/verdict logs, and the report-suppression clocks.
// ---------------------------------------------------------------------------

use ddp_snapshot::{Dec, Enc, SnapshotError};

/// Bumped whenever the layout below changes; a mismatch is a typed error so
/// an old checkpoint degrades to a cold start instead of misparsing.
const SERVENT_STATE_VERSION: u8 = 1;

fn enc_guid(enc: &mut Enc, g: &Guid) {
    for &b in g.as_bytes() {
        enc.u8(b);
    }
}

fn dec_guid(dec: &mut Dec) -> Result<Guid, SnapshotError> {
    let mut bytes = [0u8; 16];
    for b in bytes.iter_mut() {
        *b = dec.u8()?;
    }
    Ok(Guid(bytes))
}

/// Serialize a `HashMap` deterministically: sorted by key so identical state
/// always produces identical bytes (the snapshot suite hashes payloads).
fn sorted<K: Ord + Copy, V: Clone>(map: &HashMap<K, V>) -> Vec<(K, V)> {
    let mut v: Vec<(K, V)> = map.iter().map(|(&k, val)| (k, val.clone())).collect();
    v.sort_unstable_by_key(|&(k, _)| k);
    v
}

impl Servent {
    /// Append this servent's mutable defense state to `enc`.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.u8(SERVENT_STATE_VERSION);
        enc.usize(self.links.len());
        for (&peer, l) in &self.links {
            enc.u32(peer);
            enc.u32(l.out_cur);
            enc.u32(l.in_cur);
            enc.u32(l.out_prev);
            enc.u32(l.in_prev);
            enc.u32(l.receipt_prev);
            match &l.announced {
                None => enc.bool(false),
                Some(list) => {
                    enc.bool(true);
                    enc.usize(list.len());
                    for n in list {
                        enc.u32(n.0);
                    }
                }
            }
        }
        enc.u64(self.seen.horizon());
        let seen = self.seen.snapshot_entries();
        enc.usize(seen.len());
        for (guid, from, seen_at) in &seen {
            enc_guid(enc, guid);
            enc.u32(*from);
            enc.u64(*seen_at);
        }
        enc.u64(self.guid_seq);
        let issued = {
            let mut v: Vec<(Guid, u64)> = self.issued.iter().map(|(&g, &t)| (g, t)).collect();
            v.sort_unstable_by_key(|&(g, _)| g);
            v
        };
        enc.usize(issued.len());
        for (guid, at) in &issued {
            enc_guid(enc, guid);
            enc.u64(*at);
        }
        enc.usize(self.hits.len());
        for &(at, latency) in &self.hits {
            enc.u64(at);
            enc.u64(latency);
        }
        enc.usize(self.investigations.len());
        for (&suspect, inv) in &self.investigations {
            enc.u32(suspect);
            enc.u64(inv.deadline);
            enc.usize(inv.members.len());
            for m in &inv.members {
                enc.u32(m.0);
            }
            let reports = sorted(&inv.reports);
            enc.usize(reports.len());
            for (member, (m_to_j, j_to_m)) in &reports {
                enc.u32(*member);
                enc.u32(*m_to_j);
                enc.u32(*j_to_m);
            }
        }
        let last_nt = sorted(&self.last_nt);
        enc.usize(last_nt.len());
        for (suspect, at) in &last_nt {
            enc.u32(*suspect);
            enc.u64(*at);
        }
        enc.usize(self.cut_log.len());
        for &(at, peer) in &self.cut_log {
            enc.u64(at);
            enc.u32(peer.0);
        }
        let strikes = sorted(&self.missing_list_strikes);
        enc.usize(strikes.len());
        for (suspect, n) in &strikes {
            enc.u32(*suspect);
            enc.u8(*n);
        }
        enc.usize(self.verdict_log.len());
        for &(at, suspect, g, s, cut) in &self.verdict_log {
            enc.u64(at);
            enc.u32(suspect.0);
            enc.f64(g);
            enc.f64(s);
            enc.bool(cut);
        }
        enc.usize(self.pending_nt.len());
        for (due, suspect, members) in &self.pending_nt {
            enc.u64(*due);
            enc.u32(suspect.0);
            enc.usize(members.len());
            for m in members {
                enc.u32(m.0);
            }
        }
        let seen_members = sorted(&self.member_last_seen);
        enc.usize(seen_members.len());
        for (member, at) in &seen_members {
            enc.u32(*member);
            enc.u64(*at);
        }
        // Present iff the config selects the sketch backend — and the wire
        // checkpoint's config fingerprint covers the backend label, so a
        // reader always agrees with the writer about this section existing.
        if let Some(m) = &self.monitor {
            ddp_snapshot::Snapshottable::save(m, enc);
        }
    }

    /// Replace this servent's mutable defense state with one written by
    /// [`Servent::save_state`]. Identity/config fields are untouched. On any
    /// decode error the servent is left unchanged (everything is staged in
    /// locals before the final assignment).
    pub fn restore_state(&mut self, dec: &mut Dec) -> Result<(), SnapshotError> {
        let version = dec.u8()?;
        if version != SERVENT_STATE_VERSION {
            return Err(SnapshotError::Unsupported { what: "servent state version" });
        }
        let mut links = BTreeMap::new();
        for _ in 0..dec.len("links")? {
            let peer = dec.u32()?;
            let mut l = LinkState {
                out_cur: dec.u32()?,
                in_cur: dec.u32()?,
                out_prev: dec.u32()?,
                in_prev: dec.u32()?,
                receipt_prev: dec.u32()?,
                announced: None,
            };
            if dec.bool()? {
                let mut list = Vec::new();
                for _ in 0..dec.len("announced list")? {
                    list.push(NodeId(dec.u32()?));
                }
                l.announced = Some(list);
            }
            links.insert(peer, l);
        }
        let horizon = dec.u64()?;
        let mut seen_entries = Vec::new();
        for _ in 0..dec.len("seen table")? {
            let guid = dec_guid(dec)?;
            let from = dec.u32()?;
            let seen_at = dec.u64()?;
            seen_entries.push((guid, from, seen_at));
        }
        let guid_seq = dec.u64()?;
        let mut issued = HashMap::new();
        for _ in 0..dec.len("issued queries")? {
            let guid = dec_guid(dec)?;
            let at = dec.u64()?;
            issued.insert(guid, at);
        }
        let mut hits = Vec::new();
        for _ in 0..dec.len("hits")? {
            let at = dec.u64()?;
            let latency = dec.u64()?;
            hits.push((at, latency));
        }
        let mut investigations = BTreeMap::new();
        for _ in 0..dec.len("investigations")? {
            let suspect = dec.u32()?;
            let deadline = dec.u64()?;
            let mut members = Vec::new();
            for _ in 0..dec.len("investigation members")? {
                members.push(NodeId(dec.u32()?));
            }
            let mut reports = HashMap::new();
            for _ in 0..dec.len("investigation reports")? {
                let member = dec.u32()?;
                let m_to_j = dec.u32()?;
                let j_to_m = dec.u32()?;
                reports.insert(member, (m_to_j, j_to_m));
            }
            investigations.insert(suspect, Investigation { deadline, members, reports });
        }
        let mut last_nt = HashMap::new();
        for _ in 0..dec.len("nt suppression clocks")? {
            let suspect = dec.u32()?;
            let at = dec.u64()?;
            last_nt.insert(suspect, at);
        }
        let mut cut_log = Vec::new();
        for _ in 0..dec.len("cut log")? {
            let at = dec.u64()?;
            let peer = dec.u32()?;
            cut_log.push((at, NodeId(peer)));
        }
        let mut missing_list_strikes = HashMap::new();
        for _ in 0..dec.len("missing-list strikes")? {
            let suspect = dec.u32()?;
            let n = dec.u8()?;
            missing_list_strikes.insert(suspect, n);
        }
        let mut verdict_log = Vec::new();
        for _ in 0..dec.len("verdict log")? {
            let at = dec.u64()?;
            let suspect = dec.u32()?;
            let g = dec.f64()?;
            let s = dec.f64()?;
            let cut = dec.bool()?;
            verdict_log.push((at, NodeId(suspect), g, s, cut));
        }
        let mut pending_nt = Vec::new();
        for _ in 0..dec.len("pending nt broadcasts")? {
            let due = dec.u64()?;
            let suspect = dec.u32()?;
            let mut members = Vec::new();
            for _ in 0..dec.len("pending nt members")? {
                members.push(NodeId(dec.u32()?));
            }
            pending_nt.push((due, NodeId(suspect), members));
        }
        let mut member_last_seen = HashMap::new();
        for _ in 0..dec.len("member liveness")? {
            let member = dec.u32()?;
            let at = dec.u64()?;
            member_last_seen.insert(member, at);
        }
        // Staged like everything above: restore into a fresh monitor so a
        // decode error leaves `self` untouched.
        let monitor = match &self.monitor {
            None => None,
            Some(live) => {
                let mut fresh = SketchMonitor::new(live.params());
                fresh.restore_into(dec)?;
                Some(fresh)
            }
        };
        self.links = links;
        self.seen = SeenTable::from_entries(horizon, seen_entries);
        self.guid_seq = guid_seq;
        self.issued = issued;
        self.hits = hits;
        self.investigations = investigations;
        self.last_nt = last_nt;
        self.cut_log = cut_log;
        self.missing_list_strikes = missing_list_strikes;
        self.verdict_log = verdict_log;
        self.pending_nt = pending_nt;
        self.member_last_seen = member_last_seen;
        self.monitor = monitor;
        Ok(())
    }
}

#[cfg(test)]
mod state_tests {
    use super::*;

    fn busy_servent() -> Servent {
        let mut s = Servent::new(NodeId(3), ServentRole::Good, ServentConfig::default());
        let mut out = Outbox::new();
        for p in [1u32, 2, 7] {
            s.connect(NodeId(p));
        }
        s.issue_query("alpha", 5, &mut out);
        s.handle_frame(
            NodeId(1),
            encode_message(&Message::new(
                Guid::derived(1, 1),
                3,
                Payload::Query(Query { min_speed: 0, criteria: "beta".into() }),
            )),
            6,
            &mut out,
        );
        s.on_minute(60, 1, &mut out);
        s.on_second(61, &mut out);
        s.cut_log.push((61, NodeId(9)));
        s.verdict_log.push((61, NodeId(9), 12.0, 3.0, true));
        s
    }

    fn state_bytes(s: &Servent) -> Vec<u8> {
        let mut enc = Enc::new();
        s.save_state(&mut enc);
        enc.into_bytes()
    }

    #[test]
    fn state_roundtrip_is_bit_identical() {
        let original = busy_servent();
        let bytes = state_bytes(&original);
        let mut restored = Servent::new(NodeId(3), ServentRole::Good, ServentConfig::default());
        let mut dec = Dec::new(&bytes);
        restored.restore_state(&mut dec).expect("valid state restores");
        dec.finish().expect("payload fully consumed");
        assert_eq!(bytes, state_bytes(&restored), "save→load→save is bit-identical");
        assert_eq!(original.neighbors(), restored.neighbors());
        assert_eq!(original.cut_log, restored.cut_log);
    }

    #[test]
    fn truncated_state_is_typed_error_not_panic() {
        let bytes = state_bytes(&busy_servent());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut s = Servent::new(NodeId(3), ServentRole::Good, ServentConfig::default());
            let mut dec = Dec::new(&bytes[..cut]);
            assert!(s.restore_state(&mut dec).is_err(), "truncation at {cut} must error");
        }
    }

    #[test]
    fn future_state_version_is_unsupported() {
        let mut bytes = state_bytes(&busy_servent());
        bytes[0] = SERVENT_STATE_VERSION + 1;
        let mut s = Servent::new(NodeId(3), ServentRole::Good, ServentConfig::default());
        let mut dec = Dec::new(&bytes);
        assert!(matches!(s.restore_state(&mut dec), Err(SnapshotError::Unsupported { .. })));
    }
}
