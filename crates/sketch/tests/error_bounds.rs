//! Error-bound property tests: every sketch primitive against a `HashMap`
//! (or fold) shadow model, plus the classical count-min guarantee measured
//! over seeded trials.
//!
//! The detection-parity suite in `ddp-police` leans on two analytic facts:
//!
//! 1. **Overestimate-only.** A count-min estimate is never below the true
//!    count, and a space-saving `count` never undercounts a tracked key —
//!    so a sketch can only make DD-POLICE *more* suspicious, never hide
//!    traffic (missed cuts come from indicator compression, not
//!    undercounting).
//! 2. **Bounded excess.** For width `w = 2^b` the per-key overestimate
//!    exceeds `εN` with `ε = e/w` (N = items in the window) with probability
//!    at most `e^-depth` — the bound the parity suite's borderline tolerance
//!    is derived from.
//!
//! Both properties get mutant-teeth tests: the `set_underestimate` sabotage
//! lever must make the same checkers fail, proving they can actually reject
//! an undercounting implementation.

use ddp_sketch::{edge_key, CountMinSketch, LeakyBucket, SketchMonitor, SketchParams, SpaceSaving};
use proptest::prelude::*;
use std::collections::HashMap;

/// Deterministic splitmix64 — the tests are seeded trials, not sampled ones.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Count-min is overestimate-only: for every key in the stream the
    /// estimate is at least the `HashMap` shadow's true sum, at every
    /// geometry and salt.
    #[test]
    fn cms_never_undercounts(
        stream in proptest::collection::vec((0u64..200, 1u32..50), 1..400),
        width_log2 in 4u8..9,
        depth in 1u8..5,
        salt in proptest::prelude::any::<u64>(),
    ) {
        let mut cms = CountMinSketch::new(width_log2, depth, salt);
        let mut truth: HashMap<u64, u32> = HashMap::new();
        for &(key, count) in &stream {
            cms.record(key, count);
            *truth.entry(key).or_insert(0) += count;
        }
        for (&key, &t) in &truth {
            prop_assert!(
                cms.estimate(key) >= t,
                "undercount: key {key} true {t} est {}",
                cms.estimate(key)
            );
        }
    }

    /// Window rotation (`advance_window`) reshuffles the row hashes but
    /// never breaks overestimate-only within the new window.
    #[test]
    fn cms_overestimates_after_rotation(
        stream in proptest::collection::vec((0u64..100, 1u32..20), 1..200),
        windows in 1u64..5,
    ) {
        let mut cms = CountMinSketch::new(6, 3, 7);
        for _ in 0..windows {
            cms.clear();
            cms.advance_window();
        }
        let mut truth: HashMap<u64, u32> = HashMap::new();
        for &(key, count) in &stream {
            cms.record(key, count);
            *truth.entry(key).or_insert(0) += count;
        }
        for (&key, &t) in &truth {
            prop_assert!(cms.estimate(key) >= t);
        }
    }

    /// Space-saving against the `HashMap` shadow: tracked counts never
    /// undercount, `count - err` never overcounts, and every key whose true
    /// aggregate exceeds `N / capacity` is guaranteed a table slot
    /// (Metwally's recall guarantee).
    #[test]
    fn space_saving_shadow_guarantees(
        stream in proptest::collection::vec((0u32..60, 1u64..100), 1..300),
        cap in 4usize..32,
    ) {
        let mut ss = SpaceSaving::new(cap);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let mut total: u64 = 0;
        for &(key, count) in &stream {
            ss.offer(key, count);
            *truth.entry(key).or_insert(0) += count;
            total += count;
        }
        for hh in ss.top() {
            let t = truth[&hh.key];
            prop_assert!(hh.count >= t, "undercount: key {} true {t} count {}", hh.key, hh.count);
            prop_assert!(
                hh.count - hh.err <= t,
                "err bound broken: key {} true {t} count {} err {}",
                hh.key, hh.count, hh.err
            );
        }
        let threshold = total / cap as u64;
        for (&key, &t) in &truth {
            if t > threshold {
                prop_assert!(
                    ss.count_of(key).is_some(),
                    "guaranteed heavy hitter evicted: key {key} true {t} > N/cap {threshold}"
                );
            }
        }
    }

    /// The leaky bucket is exactly the saturating fold of its fill/drain
    /// history (true = fill, false = drain).
    #[test]
    fn leaky_bucket_matches_fold(
        ops in proptest::collection::vec((proptest::prelude::any::<bool>(), 0u64..1000), 0..60),
        initial in 0u64..500,
    ) {
        let mut bucket = LeakyBucket::with_level(initial);
        let mut shadow = initial;
        for &(fill, amount) in &ops {
            if fill {
                bucket.fill(amount);
                shadow = shadow.saturating_add(amount);
            } else {
                bucket.drain(amount);
                shadow = shadow.saturating_sub(amount);
            }
            prop_assert_eq!(bucket.level(), shadow);
        }
    }
}

/// Count the monitor's overestimate-only violations against a shadow — the
/// checker both the honest test and the mutant-teeth test run.
fn undercount_violations(mon: &SketchMonitor, truth: &HashMap<(u32, u32), u32>) -> usize {
    truth.iter().filter(|(&(s, d), &t)| mon.estimate(s, d) < t).count()
}

/// Feed a deterministic flow mix into a monitor and its shadow.
fn seeded_flows(mon: &mut SketchMonitor, rng: &mut u64, n: usize) -> HashMap<(u32, u32), u32> {
    let mut truth: HashMap<(u32, u32), u32> = HashMap::new();
    for _ in 0..n {
        let src = (splitmix(rng) % 40) as u32;
        let dst = (splitmix(rng) % 40) as u32;
        let count = (splitmix(rng) % 8 + 1) as u32;
        mon.record_flow(src, dst, count);
        *truth.entry((src, dst)).or_insert(0) += count;
    }
    truth
}

#[test]
fn monitor_estimates_never_undercount() {
    let mut rng = 0x5eed;
    let mut mon =
        SketchMonitor::new(SketchParams { width_log2: 8, depth: 3, ..SketchParams::default() });
    mon.begin_tick(500);
    let truth = seeded_flows(&mut mon, &mut rng, 2000);
    assert_eq!(undercount_violations(&mon, &truth), 0);
}

/// Teeth: the planted underestimating-sketch mutant must trip the exact
/// checker the honest test uses — otherwise that test proves nothing.
#[test]
fn undercount_checker_catches_planted_mutant() {
    let mut rng = 0x5eed;
    let mut mon =
        SketchMonitor::new(SketchParams { width_log2: 8, depth: 3, ..SketchParams::default() });
    mon.begin_tick(500);
    let truth = seeded_flows(&mut mon, &mut rng, 2000);
    mon.set_underestimate(3);
    assert!(
        undercount_violations(&mon, &truth) > 0,
        "the undercount checker failed to flag a sketch biased low by 3 — it has no teeth"
    );
}

/// The classical count-min bound, measured: over seeded trials, the fraction
/// of (key, trial) samples whose excess exceeds `εN` (ε = e/width) must stay
/// within the stated `e^-depth` confidence. Conservative update makes the
/// realized failure rate far lower; the assertion still uses the analytic
/// bound so the test pins the guarantee, not the implementation's slack.
#[test]
fn cms_excess_within_epsilon_n_at_stated_confidence() {
    const WIDTH_LOG2: u8 = 6; // deliberately tight: 64 cells vs ~500 keys
    const DEPTH: u8 = 2;
    const TRIALS: u64 = 60;
    const ITEMS: usize = 4000;
    let width = 1usize << WIDTH_LOG2;
    let allowed_fraction = (-(DEPTH as f64)).exp();

    let (mut samples, mut failures) = (0usize, 0usize);
    let mut worst_ratio = 0.0f64;
    for trial in 0..TRIALS {
        let mut rng = 0xe440 + trial;
        let mut cms = CountMinSketch::new(WIDTH_LOG2, DEPTH, splitmix(&mut rng));
        let mut truth: HashMap<u64, u32> = HashMap::new();
        let mut n: u64 = 0;
        for _ in 0..ITEMS {
            // Zipf-ish key mix: squaring the draw skews mass onto low keys.
            let draw = splitmix(&mut rng) % 500;
            let key = edge_key((draw * draw / 500) as u32, (draw % 7) as u32);
            let count = (splitmix(&mut rng) % 6 + 1) as u32;
            cms.record(key, count);
            *truth.entry(key).or_insert(0) += count;
            n += count as u64;
        }
        let eps_n = std::f64::consts::E * n as f64 / width as f64;
        for (&key, &t) in &truth {
            let excess = (cms.estimate(key) - t) as f64;
            samples += 1;
            if excess > eps_n {
                failures += 1;
            }
            worst_ratio = worst_ratio.max(excess / eps_n);
        }
    }
    let realized = failures as f64 / samples as f64;
    assert!(
        realized <= allowed_fraction,
        "εN bound broken: {failures}/{samples} samples over the bound \
         (realized {realized:.4} > allowed {allowed_fraction:.4}, worst excess/εN {worst_ratio:.2})"
    );
}

/// Teeth for the bound test: shrink the claimed ε below what the geometry
/// delivers and the same measurement must overflow the confidence budget,
/// proving the measurement can reject a sketch that is worse than claimed.
#[test]
fn epsilon_bound_measurement_has_teeth() {
    const WIDTH_LOG2: u8 = 6;
    const DEPTH: u8 = 1; // single row: plain CMS, maximal collisions
    let width = 1usize << WIDTH_LOG2;
    let allowed_fraction = (-(DEPTH as f64)).exp(); // e^-1 ≈ 0.368

    let (mut samples, mut failures) = (0usize, 0usize);
    for trial in 0..20u64 {
        let mut rng = 0xbad0 + trial;
        let mut cms = CountMinSketch::new(WIDTH_LOG2, DEPTH, splitmix(&mut rng));
        let mut truth: HashMap<u64, u32> = HashMap::new();
        let mut n: u64 = 0;
        for _ in 0..4000 {
            let key = splitmix(&mut rng) % 500;
            cms.record(key, 1);
            *truth.entry(key).or_insert(0) += 1;
            n += 1;
        }
        // A mutant that *claims* a 64x tighter ε than its width provides.
        let claimed_eps_n = std::f64::consts::E * n as f64 / (width * 64) as f64;
        for (&key, &t) in &truth {
            samples += 1;
            if (cms.estimate(key) - t) as f64 > claimed_eps_n {
                failures += 1;
            }
        }
    }
    let realized = failures as f64 / samples as f64;
    assert!(
        realized > allowed_fraction,
        "measurement failed to reject a 64x-overclaimed ε ({realized:.4} <= {allowed_fraction:.4})"
    );
}
