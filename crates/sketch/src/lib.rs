//! `ddp-sketch` — approximate traffic monitoring for DD-POLICE.
//!
//! The paper's exact defense keeps one `[sent, accepted]` counter pair per
//! directed half-edge: O(E) memory and an O(E) per-minute reset. This crate
//! provides the ALBUS-style probabilistic alternative (PAPERS.md, arXiv
//! 2306.14328) behind the pluggable `TrafficMonitor` backend selection:
//!
//! * [`CountMinSketch`] — per-neighbor query counts keyed by directed edge,
//!   with *conservative update*. Estimates never undercount (`estimate ≥
//!   true`), and the classic bound caps the excess at `εN` per query with
//!   `ε = e / width` at confidence `1 − e^-depth` over the tick's `N`
//!   ingested queries. Overestimation is the safe direction for flood
//!   detection: a too-high `In_query` reading triggers an investigation the
//!   Buddy Group then settles, while an undercount could hide an attacker.
//! * [`SpaceSaving`] — the top-k heavy-hitter table over *senders*; any peer
//!   whose aggregate output exceeds `N / capacity` is guaranteed present.
//! * [`LeakyBucket`] — per-heavy-hitter sustained-rate state: filled by each
//!   tick's volume, drained by the 500 q/min warning budget, so a sender
//!   only reads as a *sustained* warner after its burst outlives one minute.
//!
//! Everything is deterministic from [`SketchParams`] (hash salts derive from
//! `salt`, which callers seed from the run seed) and [`Snapshottable`], so
//! checkpoint/resume and the parallel tick engine's per-tick state hash stay
//! bit-identical across worker counts.

use ddp_snapshot::{Dec, Enc, SnapshotError, Snapshottable};

/// Geometry and seeding of the sketch backend. `Copy` so it can live inside
/// `DdPoliceConfig` (whose `Debug` rendering feeds the snapshot config
/// digest — changing any field refuses foreign checkpoints, as intended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// log2 of the count-min width (columns per row). Width 2^16 × depth 4
    /// × 4-byte counters ≈ 1 MiB — vs ~4.8 MiB of exact per-edge counters
    /// at 100k peers (BA m=3).
    pub width_log2: u8,
    /// Count-min depth (independent rows; failure probability `e^-depth`).
    pub depth: u8,
    /// Space-saving capacity: the top-k suspect table size.
    pub topk: u16,
    /// Hash-salt seed. Callers pass the run seed so the whole monitor is a
    /// pure function of it; two runs with equal seeds collide identically.
    pub salt: u64,
}

impl Default for SketchParams {
    fn default() -> Self {
        SketchParams { width_log2: 12, depth: 4, topk: 64, salt: 0xddb5_eed5_a11b_05ed }
    }
}

/// Which traffic-monitor backend the defense reads its per-neighbor query
/// counts from. `Exact` is the default and is tick-for-tick inert: the
/// defense reads the overlay's exact counters exactly as it always has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorBackend {
    /// The paper's exact per-neighbor `In_query`/`Out_query` counters.
    #[default]
    Exact,
    /// Count-min + space-saving + leaky buckets ([`SketchMonitor`]).
    Sketch(SketchParams),
}

impl MonitorBackend {
    /// Stable human-readable label for summaries and BENCH rows.
    pub fn label(&self) -> String {
        match self {
            MonitorBackend::Exact => "exact".into(),
            MonitorBackend::Sketch(p) => {
                format!("sketch(w=2^{},d={},k={})", p.width_log2, p.depth, p.topk)
            }
        }
    }

    /// Parse a CLI flag value: `exact`, `sketch`, or
    /// `sketch:w=WIDTH_LOG2,d=DEPTH,k=TOPK` (any subset, any order).
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "exact" {
            return Ok(MonitorBackend::Exact);
        }
        let Some(rest) = s.strip_prefix("sketch") else {
            return Err(format!(
                "unknown monitor backend `{s}` (want exact|sketch[:w=..,d=..,k=..])"
            ));
        };
        let mut p = SketchParams::default();
        if rest.is_empty() {
            return Ok(MonitorBackend::Sketch(p));
        }
        let Some(args) = rest.strip_prefix(':') else {
            return Err(format!("unknown monitor backend `{s}`"));
        };
        for kv in args.split(',') {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("monitor backend: want key=value, got `{kv}`"))?;
            let parse = |what: &str| {
                v.parse::<u64>().map_err(|e| format!("monitor backend {what}: `{v}`: {e}"))
            };
            match k {
                "w" => {
                    let w = parse("width_log2")?;
                    if !(4..=28).contains(&w) {
                        return Err(format!("monitor backend w={w} out of range 4..=28"));
                    }
                    p.width_log2 = w as u8;
                }
                "d" => {
                    let d = parse("depth")?;
                    if !(1..=8).contains(&d) {
                        return Err(format!("monitor backend d={d} out of range 1..=8"));
                    }
                    p.depth = d as u8;
                }
                "k" => {
                    let t = parse("topk")?;
                    if !(1..=65_535).contains(&t) {
                        return Err(format!("monitor backend k={t} out of range 1..=65535"));
                    }
                    p.topk = t as u16;
                }
                "salt" => p.salt = parse("salt")?,
                other => return Err(format!("monitor backend: unknown key `{other}`")),
            }
        }
        Ok(MonitorBackend::Sketch(p))
    }
}

/// SplitMix64 finalizer — the workspace's standard cheap mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The directed-edge key `src → dst` the count-min sketch counts under.
#[inline]
pub fn edge_key(src: u32, dst: u32) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Count-min sketch with conservative update over `u32` counters.
///
/// Conservative update only raises each row cell to `estimate + count`, the
/// least value consistent with the stream — realized overestimates shrink by
/// an order of magnitude on skewed (flood-dominated) streams while the
/// overestimate-only invariant is preserved: every row cell still
/// upper-bounds every key hashed into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    width_mask: u32,
    depth: u8,
    /// The configured salt (row seeds also fold in the window epoch).
    salt: u64,
    /// Monotonic window counter; each window re-keys every row, so two keys
    /// that collide in one window almost surely part ways in the next.
    /// Without this, a heavy cell-mate masks the same victim key *every*
    /// window — a persistent, not transient, estimation error.
    epoch: u64,
    /// Per-row hash seeds, derived from `salt` and `epoch`.
    seeds: Vec<u64>,
    /// `depth` rows of `width` counters, flattened row-major.
    cells: Vec<u32>,
}

impl CountMinSketch {
    /// A zeroed sketch of `2^width_log2 × depth` cells.
    pub fn new(width_log2: u8, depth: u8, salt: u64) -> Self {
        let width = 1usize << width_log2;
        let depth = depth.max(1);
        let mut cms = CountMinSketch {
            width_mask: (width - 1) as u32,
            depth,
            salt,
            epoch: 0,
            seeds: vec![0; depth as usize],
            cells: vec![0; width * depth as usize],
        };
        cms.reseed();
        cms
    }

    fn reseed(&mut self) {
        for (r, s) in self.seeds.iter_mut().enumerate() {
            *s = mix64(self.salt ^ mix64(self.epoch).rotate_left(17) ^ mix64(r as u64 + 1));
        }
    }

    /// Advance to the next window: re-key every row. Callers clear the
    /// counters separately ([`clear`](Self::clear)); the split keeps both
    /// operations individually testable.
    pub fn advance_window(&mut self) {
        self.set_window(self.epoch.wrapping_add(1));
    }

    /// Jump to a specific window epoch (snapshot restore).
    pub fn set_window(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.reseed();
    }

    /// The current window epoch.
    pub fn window(&self) -> u64 {
        self.epoch
    }

    /// Number of columns per row.
    pub fn width(&self) -> usize {
        self.width_mask as usize + 1
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    #[inline]
    fn cell_index(&self, row: usize, key: u64) -> usize {
        let h = mix64(key ^ self.seeds[row]);
        row * self.width() + (h as u32 & self.width_mask) as usize
    }

    /// Add `count` occurrences of `key` (conservative update).
    #[inline]
    pub fn record(&mut self, key: u64, count: u32) {
        let target = self.estimate(key).saturating_add(count);
        for row in 0..self.depth as usize {
            let i = self.cell_index(row, key);
            if self.cells[i] < target {
                self.cells[i] = target;
            }
        }
    }

    /// Point estimate: the minimum over rows, never below the true count.
    #[inline]
    pub fn estimate(&self, key: u64) -> u32 {
        let mut est = u32::MAX;
        for row in 0..self.depth as usize {
            est = est.min(self.cells[self.cell_index(row, key)]);
        }
        est
    }

    /// Zero every counter — the per-minute window reset. O(width × depth),
    /// independent of the overlay's edge count.
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }

    /// Bytes of counter state (the memory the backend actually pays for).
    pub fn state_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<u32>()
    }
}

/// One space-saving table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The sender this entry tracks.
    pub key: u32,
    /// Upper-bound count (true count ≤ `count`, true count ≥ `count - err`).
    pub count: u64,
    /// Overestimation inherited from the entry evicted at takeover.
    pub err: u64,
    /// Sustained-rate leaky bucket attached to this sender.
    pub bucket: LeakyBucket,
}

/// Metwally's space-saving top-k: any key whose true aggregate exceeds
/// `N / capacity` is guaranteed a table entry, and `count` never undercounts.
/// Lookups scan the (small, fixed-capacity) table: with the default k = 64
/// and one aggregated offer per sender per tick this is far off the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving {
    cap: usize,
    entries: Vec<HeavyHitter>,
}

impl SpaceSaving {
    /// An empty table of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        SpaceSaving { cap: capacity.max(1), entries: Vec::new() }
    }

    /// Record `count` more output from `key`, filling its leaky bucket. When
    /// the table is full the minimum-count entry is evicted and its count
    /// inherited (the space-saving overestimate), bucket reset to the new
    /// arrival's own volume.
    pub fn offer(&mut self, key: u32, count: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.count += count;
            e.bucket.fill(count);
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push(HeavyHitter {
                key,
                count,
                err: 0,
                bucket: LeakyBucket::with_level(count),
            });
            return;
        }
        // Evict the minimum; ties break on the lowest key so the takeover is
        // deterministic regardless of insertion history.
        let (mut min_i, mut min) = (0usize, (u64::MAX, u32::MAX));
        for (i, e) in self.entries.iter().enumerate() {
            if (e.count, e.key) < min {
                min = (e.count, e.key);
                min_i = i;
            }
        }
        let evicted = self.entries[min_i].count;
        self.entries[min_i] = HeavyHitter {
            key,
            count: evicted + count,
            err: evicted,
            bucket: LeakyBucket::with_level(count),
        };
    }

    /// Drain every entry's bucket by `budget` (called once per tick with the
    /// warning budget, so only senders sustaining > budget/tick stay over).
    pub fn drain_buckets(&mut self, budget: u64) {
        for e in &mut self.entries {
            e.bucket.drain(budget);
        }
    }

    /// Entries sorted by descending count (key ascending on ties).
    pub fn top(&self) -> Vec<HeavyHitter> {
        let mut v = self.entries.clone();
        v.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        v
    }

    /// The upper-bound count for `key`, if tracked.
    pub fn count_of(&self, key: u32) -> Option<u64> {
        self.entries.iter().find(|e| e.key == key).map(|e| e.count)
    }

    /// Senders whose leaky bucket is still over `budget` after the drain —
    /// i.e. sustained (not one-burst) rate offenders.
    pub fn sustained_over(&self, budget: u64) -> Vec<u32> {
        let mut v: Vec<u32> =
            self.entries.iter().filter(|e| e.bucket.level() > budget).map(|e| e.key).collect();
        v.sort_unstable();
        v
    }

    /// Drop `key`'s entry, if tracked. For departed/reset peers: the slot's
    /// next occupant must not inherit a stranger's count or bucket level.
    pub fn remove(&mut self, key: u32) {
        self.entries.retain(|e| e.key != key);
    }

    /// Slots in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of table state at full capacity (what the backend budgets for).
    pub fn state_bytes(&self) -> usize {
        self.cap * std::mem::size_of::<HeavyHitter>()
    }
}

/// A leaky bucket: `fill` adds volume, `drain` subtracts the per-tick budget
/// (saturating at empty). A level still positive after the drain means the
/// source exceeded the budget this window; a level that *stays* positive
/// across drains means the overrun is sustained, not a single burst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeakyBucket {
    level: u64,
}

impl LeakyBucket {
    /// A bucket pre-filled to `level`.
    pub fn with_level(level: u64) -> Self {
        LeakyBucket { level }
    }

    /// Add `amount` to the bucket.
    pub fn fill(&mut self, amount: u64) {
        self.level = self.level.saturating_add(amount);
    }

    /// Remove up to `budget` from the bucket.
    pub fn drain(&mut self, budget: u64) {
        self.level = self.level.saturating_sub(budget);
    }

    /// Current fill level.
    pub fn level(&self) -> u64 {
        self.level
    }
}

/// The sketch `TrafficMonitor` backend: one pooled count-min arena over
/// directed-edge keys (the fleet's aggregate sketch capacity — per-peer
/// isolation would only change *which* keys collide, not the εN bound over
/// the pooled stream), a space-saving top-k over senders, and that table's
/// leaky buckets for the sustained-warning signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchMonitor {
    params: SketchParams,
    cms: CountMinSketch,
    hh: SpaceSaving,
    /// Queries ingested this tick (the `N` of the εN error bound).
    items_tick: u64,
    /// Test-only sabotage: subtract this from every estimate, violating the
    /// overestimate-only invariant. The error-bound proptests and the
    /// detection-parity suite both plant it to prove they catch a sketch
    /// that undercounts. Never set outside tests.
    underestimate_bias: u32,
}

impl SketchMonitor {
    /// A fresh monitor with zeroed state.
    pub fn new(params: SketchParams) -> Self {
        SketchMonitor {
            params,
            cms: CountMinSketch::new(params.width_log2, params.depth, params.salt),
            hh: SpaceSaving::new(params.topk as usize),
            items_tick: 0,
            underestimate_bias: 0,
        }
    }

    /// The configured geometry.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Open a new one-minute window: clear the count-min counters, re-key
    /// the rows for the new window (so any key masked by a heavy cell-mate
    /// this window almost surely escapes it next window), zero the ingest
    /// tally, and drain every heavy hitter's bucket by `budget`.
    pub fn begin_tick(&mut self, budget: u64) {
        self.cms.clear();
        self.cms.advance_window();
        self.items_tick = 0;
        self.hh.drain_buckets(budget);
    }

    /// Ingest `count` accepted queries on the directed edge `src → dst`.
    #[inline]
    pub fn record_flow(&mut self, src: u32, dst: u32, count: u32) {
        self.cms.record(edge_key(src, dst), count);
        self.items_tick += count as u64;
    }

    /// Ingest `total` as `src`'s aggregate output this tick (one offer per
    /// sender per tick keeps the top-k scan off the per-edge hot path).
    #[inline]
    pub fn note_sender_total(&mut self, src: u32, total: u64) {
        if total > 0 {
            self.hh.offer(src, total);
        }
    }

    /// Estimated accepted queries on `src → dst` this tick (≥ true count,
    /// unless sabotaged by [`set_underestimate`](Self::set_underestimate)).
    #[inline]
    pub fn estimate(&self, src: u32, dst: u32) -> u32 {
        self.cms.estimate(edge_key(src, dst)).saturating_sub(self.underestimate_bias)
    }

    /// Queries ingested this tick (the εN bound's `N`).
    pub fn items_this_tick(&self) -> u64 {
        self.items_tick
    }

    /// The count-min window epoch currently folded into the row hashes.
    pub fn window(&self) -> u64 {
        self.cms.window()
    }

    /// The proven per-query overestimate bound for this geometry over the
    /// current tick's stream: `εN = e · N / width`, at confidence
    /// `1 − e^-depth` per query.
    pub fn epsilon_n(&self) -> f64 {
        std::f64::consts::E * self.items_tick as f64 / self.cms.width() as f64
    }

    /// Top-k suspects by claimed output, descending.
    pub fn top_suspects(&self) -> Vec<HeavyHitter> {
        self.hh.top()
    }

    /// Senders whose leaky bucket stayed over `budget` after this tick's
    /// drain — sustained warning-rate offenders.
    pub fn sustained_warners(&self, budget: u64) -> Vec<u32> {
        self.hh.sustained_over(budget)
    }

    /// Bytes of monitor state: the count-min arena plus the full-capacity
    /// heavy-hitter table. Compare against [`exact_state_bytes`].
    pub fn state_bytes(&self) -> usize {
        self.cms.state_bytes() + self.hh.state_bytes()
    }

    /// Forget everything attributed to sender `key` in the cross-tick
    /// heavy-hitter table (its count and bucket). Called when a peer departs
    /// or resets, before the identity slot is recycled. The count-min window
    /// needs no treatment: it is cleared wholesale every tick.
    pub fn forget_sender(&mut self, key: u32) {
        self.hh.remove(key);
    }

    /// Sabotage lever: make every estimate undercount by `bias`. See the
    /// field doc; exists only so the test suites can prove their teeth.
    #[doc(hidden)]
    pub fn set_underestimate(&mut self, bias: u32) {
        self.underestimate_bias = bias;
    }
}

/// Bytes the exact backend pays for the same job: one `[sent, accepted]`
/// `u32` pair per directed half-edge in the overlay arena.
pub fn exact_state_bytes(directed_half_edges: usize) -> usize {
    directed_half_edges * 2 * std::mem::size_of::<u32>()
}

impl Snapshottable for LeakyBucket {
    fn save(&self, enc: &mut Enc) {
        enc.u64(self.level);
    }
    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(LeakyBucket { level: dec.u64()? })
    }
}

impl Snapshottable for HeavyHitter {
    fn save(&self, enc: &mut Enc) {
        enc.u32(self.key);
        enc.u64(self.count);
        enc.u64(self.err);
        enc.put(&self.bucket);
    }
    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(HeavyHitter { key: dec.u32()?, count: dec.u64()?, err: dec.u64()?, bucket: dec.get()? })
    }
}

impl Snapshottable for SketchMonitor {
    /// Geometry is owned by the config (whose digest the defense already
    /// embeds), so only the mutable state is serialized — in declaration
    /// order, so the engine's per-tick state hash covers every bit of it.
    fn save(&self, enc: &mut Enc) {
        enc.put(&self.cms.cells);
        enc.u64(self.cms.epoch);
        enc.usize(self.hh.entries.len());
        for e in &self.hh.entries {
            enc.put(e);
        }
        enc.u64(self.items_tick);
        enc.u32(self.underestimate_bias);
    }
    fn load(_dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Err(SnapshotError::Unsupported {
            what: "SketchMonitor::load — use restore_into (geometry comes from config)",
        })
    }
}

impl SketchMonitor {
    /// Restore state saved by [`Snapshottable::save`] into a monitor built
    /// from the same [`SketchParams`]. A cell-count mismatch means the
    /// snapshot came from a different geometry and is refused.
    pub fn restore_into(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapshotError> {
        let cells: Vec<u32> = dec.get()?;
        if cells.len() != self.cms.cells.len() {
            return Err(SnapshotError::ContextMismatch {
                expected: self.cms.cells.len() as u64,
                found: cells.len() as u64,
            });
        }
        self.cms.cells = cells;
        self.cms.set_window(dec.u64()?);
        let n = dec.len("heavy hitters")?;
        if n > self.hh.cap {
            return Err(SnapshotError::ContextMismatch {
                expected: self.hh.cap as u64,
                found: n as u64,
            });
        }
        self.hh.entries.clear();
        for _ in 0..n {
            self.hh.entries.push(dec.get()?);
        }
        self.items_tick = dec.u64()?;
        self.underestimate_bias = dec.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_never_undercounts() {
        let mut cms = CountMinSketch::new(6, 3, 7); // tiny: collisions certain
        let mut truth = std::collections::HashMap::new();
        let mut st = 99u64;
        for _ in 0..2_000 {
            let key = mix64(st) % 300;
            st = st.wrapping_add(1);
            let c = (mix64(st) % 50) as u32 + 1;
            st = st.wrapping_add(1);
            cms.record(key, c);
            *truth.entry(key).or_insert(0u64) += c as u64;
        }
        for (&k, &t) in &truth {
            assert!(
                cms.estimate(k) as u64 >= t,
                "undercount: key {k} true {t} est {}",
                cms.estimate(k)
            );
        }
    }

    #[test]
    fn clear_zeroes_the_window() {
        let mut cms = CountMinSketch::new(8, 4, 1);
        cms.record(42, 1000);
        assert!(cms.estimate(42) >= 1000);
        cms.clear();
        assert_eq!(cms.estimate(42), 0);
    }

    #[test]
    fn same_salt_same_cells_different_salt_different_hashing() {
        let mut a = CountMinSketch::new(8, 4, 5);
        let mut b = CountMinSketch::new(8, 4, 5);
        let mut c = CountMinSketch::new(8, 4, 6);
        for k in 0..500u64 {
            a.record(k, 3);
            b.record(k, 3);
            c.record(k, 3);
        }
        assert_eq!(a, b, "same salt must be bit-identical");
        assert_ne!(a.cells, c.cells, "different salt must hash differently");
    }

    #[test]
    fn space_saving_guarantees_heavy_keys() {
        let mut ss = SpaceSaving::new(8);
        let mut n = 0u64;
        // One elephant among many mice.
        for round in 0..100u32 {
            ss.offer(7, 50);
            n += 50;
            for mouse in 100..120u32 {
                ss.offer(mouse + (round % 3) * 100, 1);
                n += 1;
            }
        }
        // true(7) = 5000 > N/cap, so 7 must be present with count ≥ truth.
        assert!(5000 > n / 8);
        let c = ss.count_of(7).expect("guaranteed heavy hitter evicted");
        assert!(c >= 5000, "count {c} undercounts truth 5000");
    }

    #[test]
    fn buckets_separate_sustained_from_burst() {
        let mut ss = SpaceSaving::new(4);
        // Sender 1 bursts once; sender 2 sustains. Budget 100 per tick.
        ss.offer(1, 150);
        ss.offer(2, 150);
        ss.drain_buckets(100);
        assert_eq!(ss.sustained_over(100), Vec::<u32>::new(), "one burst drains away");
        for _ in 0..5 {
            ss.offer(2, 250);
            ss.drain_buckets(100);
        }
        assert_eq!(ss.sustained_over(100), vec![2], "sustained overrun accumulates");
    }

    #[test]
    fn monitor_snapshot_roundtrip_is_bit_identical() {
        let p = SketchParams { width_log2: 8, depth: 3, topk: 8, salt: 404 };
        let mut m = SketchMonitor::new(p);
        m.begin_tick(500);
        for i in 0..200u32 {
            m.record_flow(i % 40, (i + 1) % 40, i + 1);
        }
        for s in 0..40u32 {
            m.note_sender_total(s, (s as u64 + 1) * 10);
        }
        let mut enc = Enc::new();
        enc.put(&m);
        let mut back = SketchMonitor::new(p);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        back.restore_into(&mut dec).expect("restore");
        dec.finish().expect("no trailing bytes");
        assert_eq!(m, back);
        // And the restored monitor re-serializes to the same bytes.
        let mut enc2 = Enc::new();
        enc2.put(&back);
        assert_eq!(bytes, enc2.into_bytes());
    }

    #[test]
    fn monitor_refuses_foreign_geometry() {
        let mut m = SketchMonitor::new(SketchParams { width_log2: 8, depth: 3, topk: 8, salt: 1 });
        m.record_flow(1, 2, 3);
        let mut enc = Enc::new();
        enc.put(&m);
        let bytes = enc.into_bytes();
        let mut other =
            SketchMonitor::new(SketchParams { width_log2: 9, depth: 3, topk: 8, salt: 1 });
        let err = other.restore_into(&mut Dec::new(&bytes)).expect_err("must refuse");
        assert!(matches!(err, SnapshotError::ContextMismatch { .. }), "got {err:?}");
    }

    #[test]
    fn backend_labels_and_parsing_roundtrip() {
        assert_eq!(MonitorBackend::parse("exact").unwrap(), MonitorBackend::Exact);
        assert_eq!(
            MonitorBackend::parse("sketch").unwrap(),
            MonitorBackend::Sketch(SketchParams::default())
        );
        let p = MonitorBackend::parse("sketch:w=16,d=2,k=128").unwrap();
        match p {
            MonitorBackend::Sketch(p) => {
                assert_eq!((p.width_log2, p.depth, p.topk), (16, 2, 128));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.label(), "sketch(w=2^16,d=2,k=128)");
        assert!(MonitorBackend::parse("bogus").is_err());
        assert!(MonitorBackend::parse("sketch:w=99").is_err());
        assert!(MonitorBackend::parse("sketch:q=1").is_err());
    }

    #[test]
    fn underestimate_sabotage_breaks_the_invariant() {
        let mut m = SketchMonitor::new(SketchParams::default());
        m.record_flow(1, 2, 100);
        assert!(m.estimate(1, 2) >= 100);
        m.set_underestimate(40);
        assert!(m.estimate(1, 2) < 100, "sabotage must actually undercount");
    }

    #[test]
    fn memory_ratio_at_scale_favors_the_sketch() {
        // 100k peers, BA m=3: ~300k edges, ~600k directed half-edges.
        let exact = exact_state_bytes(600_000);
        let sketch =
            SketchMonitor::new(SketchParams { width_log2: 16, depth: 4, topk: 512, salt: 0 })
                .state_bytes();
        assert!(exact >= 4 * sketch, "exact {exact} must be ≥4× sketch {sketch} at 100k peers");
    }
}
