//! Shared helpers for the benchmark suite.
//!
//! The benches live in `benches/`; each paper figure has a regenerator bench
//! (reduced scale — the shapes, not the wall-clock, are the figure's point)
//! and each hot component has a microbench.

use ddp_police::{DdPolice, DdPoliceConfig};
use ddp_sim::{NoDefense, SimConfig, Simulation};
use ddp_topology::{TopologyConfig, TopologyModel};

// The peak-RSS proxy used by the benches and by `ddp-experiments scale`;
// install as `#[global_allocator]` in a bench target to read peak/live heap
// bytes around a measured region.
pub use ddp_metrics::CountingAlloc;

/// A small but non-trivial engine configuration for benches.
pub fn bench_sim_config(peers: usize) -> SimConfig {
    SimConfig {
        topology: TopologyConfig { n: peers, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn: false,
        ..SimConfig::default()
    }
}

/// A ready-to-step undefended simulation.
pub fn bench_simulation(peers: usize, seed: u64) -> Simulation<NoDefense> {
    Simulation::new(bench_sim_config(peers), NoDefense, seed)
}

/// A ready-to-step simulation defended by DD-POLICE at paper defaults, with
/// `attackers` flooders installed — the hot-kernel benches' workload.
pub fn bench_police_simulation(peers: usize, attackers: usize, seed: u64) -> Simulation<DdPolice> {
    let cfg = bench_sim_config(peers);
    let police = DdPolice::new(DdPoliceConfig::default(), peers);
    let mut sim = Simulation::new(cfg, police, seed);
    for i in 0..attackers {
        // Spread attackers across the id space so they do not cluster on the
        // oldest (highest-degree) BA nodes only.
        let id = (i * peers / attackers.max(1)) as u32;
        sim.make_attacker(ddp_topology::NodeId(id), ddp_sim::ReportBehavior::Honest);
    }
    sim
}
