//! Shared helpers for the benchmark suite.
//!
//! The benches live in `benches/`; each paper figure has a regenerator bench
//! (reduced scale — the shapes, not the wall-clock, are the figure's point)
//! and each hot component has a microbench.

use ddp_sim::{NoDefense, SimConfig, Simulation};
use ddp_topology::{TopologyConfig, TopologyModel};

/// A small but non-trivial engine configuration for benches.
pub fn bench_sim_config(peers: usize) -> SimConfig {
    SimConfig {
        topology: TopologyConfig { n: peers, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn: false,
        ..SimConfig::default()
    }
}

/// A ready-to-step undefended simulation.
pub fn bench_simulation(peers: usize, seed: u64) -> Simulation<NoDefense> {
    Simulation::new(bench_sim_config(peers), NoDefense, seed)
}
