//! DD-POLICE component benches: indicator math and the full per-tick
//! detection pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ddp_bench::bench_sim_config;
use ddp_police::indicator::{general_indicator, is_bad, single_indicator};
use ddp_police::{DdPolice, DdPoliceConfig, ExchangePolicy, NaiveRateLimit};
use ddp_sim::{ReportBehavior, Simulation};
use ddp_topology::NodeId;
use std::hint::black_box;

fn bench_indicator_math(c: &mut Criterion) {
    c.bench_function("indicators_1m_evaluations", |b| {
        b.iter(|| {
            let mut flagged = 0u64;
            for i in 0..1_000_000u64 {
                let out = (i % 30_000) as f64;
                let inn = ((i * 7) % 10_000) as f64;
                let g = general_indicator(out, inn, 6, 100);
                let s = single_indicator(out / 6.0, inn * 0.8, 100);
                flagged += is_bad(g, s, 5.0) as u64;
            }
            black_box(flagged)
        })
    });
}

/// Cost of one detection pass over a 2,000-peer overlay under attack — the
/// defense must stay negligible next to the flooding itself.
fn bench_detection_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection_pass_2000");
    g.sample_size(20);
    for (name, exchange) in [
        ("periodic_s2", ExchangePolicy::Periodic { minutes: 2 }),
        ("event_driven", ExchangePolicy::EventDriven),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let cfg = DdPoliceConfig { exchange, ..DdPoliceConfig::default() };
                    let police = DdPolice::new(cfg, 2_000);
                    let mut sim = Simulation::new(bench_sim_config(2_000), police, 1);
                    for i in 0..50u32 {
                        sim.make_attacker(NodeId(i * 31 % 2_000), ReportBehavior::Honest);
                    }
                    sim
                },
                |mut sim| {
                    // One full tick includes flooding + the detection pass;
                    // compared against the NoDefense tick bench, the delta is
                    // the defense cost.
                    sim.step();
                    black_box(sim.tick())
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_naive_baseline_pass(c: &mut Criterion) {
    c.bench_function("naive_rate_limit_tick_2000", |b| {
        b.iter_batched(
            || {
                let mut sim =
                    Simulation::new(bench_sim_config(2_000), NaiveRateLimit::default(), 1);
                for i in 0..50u32 {
                    sim.make_attacker(NodeId(i * 31 % 2_000), ReportBehavior::Honest);
                }
                sim
            },
            |mut sim| {
                sim.step();
                black_box(sim.tick())
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_indicator_math, bench_detection_pass, bench_naive_baseline_pass);
criterion_main!(benches);
