//! Topology substrate benches: generator throughput and dynamic-graph churn
//! operations (the per-tick mutation load of the simulator).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ddp_topology::{generate, DynamicGraph, NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_generate");
    for &n in &[2_000usize, 20_000] {
        g.bench_with_input(BenchmarkId::new("barabasi_albert_m3", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(generate::barabasi_albert(n, 3, &mut rng))
            })
        });
    }
    g.bench_function("erdos_renyi_2000", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(generate::erdos_renyi(2_000, 6.0, &mut rng))
        })
    });
    g.bench_function("waxman_500", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(generate::waxman(500, 0.15, 0.15, &mut rng))
        })
    });
    g.finish();
}

fn bench_churn_ops(c: &mut Criterion) {
    // A tick's worth of churn on a 2,000-peer overlay: ~200 departures
    // (isolate) + rejoins (add_edge x3).
    let base = TopologyConfig::default().generate(&mut StdRng::seed_from_u64(3));
    c.bench_function("churn_200_departures_and_rejoins", |b| {
        b.iter_batched(
            || (base.clone(), StdRng::seed_from_u64(11)),
            |(mut g, mut rng)| {
                for _ in 0..200 {
                    let u = NodeId(rng.gen_range(0..2_000u32));
                    g.isolate(u);
                    for _ in 0..3 {
                        let v = NodeId(rng.gen_range(0..2_000u32));
                        g.add_edge(u, v);
                    }
                }
                g
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let g = TopologyConfig::default().generate(&mut StdRng::seed_from_u64(3));
    c.bench_function("csr_snapshot_2000", |b| b.iter(|| black_box(g.to_graph())));
}

fn bench_edge_lookup(c: &mut Criterion) {
    let mut g = DynamicGraph::new(1_000);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..3_000 {
        g.add_edge(NodeId(rng.gen_range(0..1_000)), NodeId(rng.gen_range(0..1_000)));
    }
    c.bench_function("contains_edge_10k_lookups", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            let mut rng = StdRng::seed_from_u64(6);
            for _ in 0..10_000 {
                let u = NodeId(rng.gen_range(0..1_000));
                let v = NodeId(rng.gen_range(0..1_000));
                hits += g.contains_edge(u, v) as u32;
            }
            black_box(hits)
        })
    });
}

fn bench_model_comparison(c: &mut Criterion) {
    // Ablation: generator model choice at fixed size.
    let mut grp = c.benchmark_group("topology_models_2000");
    for (name, model) in [
        ("ba", TopologyModel::BarabasiAlbert { m: 3 }),
        ("er", TopologyModel::ErdosRenyi { mean_degree: 6.0 }),
    ] {
        grp.bench_function(name, |b| {
            let cfg = TopologyConfig { n: 2_000, model };
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(cfg.generate(&mut rng))
            })
        });
    }
    grp.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_churn_ops,
    bench_snapshot,
    bench_edge_lookup,
    bench_model_comparison
);
criterion_main!(benches);
