//! One bench per paper table/figure: each measures the cost of regenerating
//! that artifact at reduced scale (the regenerated *values* are checked by
//! the test suite; here we keep the pipelines warm and track their cost).

use criterion::{criterion_group, criterion_main, Criterion};
use ddp_experiments::runners;
use ddp_experiments::ExpOptions;
use std::hint::black_box;

fn tiny() -> ExpOptions {
    ExpOptions { peers: 240, ticks: 5, seed: 13, agents: 10, ..ExpOptions::default() }
}

fn bench_static_figures(c: &mut Criterion) {
    c.bench_function("table1_layout", |b| b.iter(|| black_box(runners::table1())));
    c.bench_function("fig2_indicator_example", |b| b.iter(|| black_box(runners::fig2())));
    c.bench_function("fig5_sent_vs_processed", |b| b.iter(|| black_box(runners::fig5())));
    c.bench_function("fig6_drop_rate", |b| b.iter(|| black_box(runners::fig6())));
}

fn bench_consequence_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("consequences");
    g.sample_size(10);
    g.bench_function("fig9_10_11_sweep_240", |b| {
        b.iter(|| black_box(runners::consequences(&tiny())))
    });
    g.finish();
}

fn bench_ct_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("ct_figures");
    g.sample_size(10);
    g.bench_function("fig12_damage_over_time_240", |b| {
        b.iter(|| black_box(runners::fig12(&tiny())))
    });
    g.bench_function("fig13_14_ct_sweep_240", |b| {
        b.iter(|| {
            let rows = runners::ct_sweep(&tiny(), &[3.0, 5.0, 7.0]);
            black_box((runners::fig13(&rows), runners::fig14(&rows)))
        })
    });
    g.finish();
}

fn bench_policy_studies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_studies");
    g.sample_size(10);
    g.bench_function("exchange_policy_240", |b| b.iter(|| black_box(runners::exchange(&tiny()))));
    g.bench_function("cheating_strategies_240", |b| {
        b.iter(|| black_box(runners::cheating(&tiny())))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("warning_threshold_240", |b| {
        b.iter(|| black_box(runners::ablate_warning(&tiny())))
    });
    g.bench_function("forwarding_policy_240", |b| {
        b.iter(|| black_box(runners::ablate_forwarding(&tiny())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_static_figures,
    bench_consequence_sweep,
    bench_ct_figures,
    bench_policy_studies,
    bench_ablations
);
criterion_main!(benches);
