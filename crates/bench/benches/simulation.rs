//! Whole-engine benches: cost of one simulated minute under each regime.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ddp_bench::bench_sim_config;
use ddp_police::{DdPolice, DdPoliceConfig};
use ddp_sim::{NoDefense, ReportBehavior, Simulation};
use ddp_topology::NodeId;
use std::hint::black_box;

fn bench_tick_baseline(c: &mut Criterion) {
    c.bench_function("tick_baseline_2000", |b| {
        b.iter_batched(
            || Simulation::new(bench_sim_config(2_000), NoDefense, 1),
            |mut sim| {
                sim.step();
                black_box(sim.tick())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_tick_under_attack(c: &mut Criterion) {
    c.bench_function("tick_100_attackers_2000", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(bench_sim_config(2_000), NoDefense, 1);
                for i in 0..100u32 {
                    sim.make_attacker(NodeId(i * 17 % 2_000), ReportBehavior::Honest);
                }
                sim
            },
            |mut sim| {
                sim.step();
                black_box(sim.tick())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_tick_with_dd_police(c: &mut Criterion) {
    c.bench_function("tick_100_attackers_dd_police_2000", |b| {
        b.iter_batched(
            || {
                let police = DdPolice::new(DdPoliceConfig::default(), 2_000);
                let mut sim = Simulation::new(bench_sim_config(2_000), police, 1);
                for i in 0..100u32 {
                    sim.make_attacker(NodeId(i * 17 % 2_000), ReportBehavior::Honest);
                }
                sim
            },
            |mut sim| {
                sim.step();
                black_box(sim.tick())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("simulation_construction_2000", |b| {
        b.iter(|| black_box(Simulation::new(bench_sim_config(2_000), NoDefense, 1)))
    });
}

criterion_group!(
    benches,
    bench_tick_baseline,
    bench_tick_under_attack,
    bench_tick_with_dd_police,
    bench_construction
);
criterion_main!(benches);
