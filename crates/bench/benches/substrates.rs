//! Benches for the two extension substrates: the Chord-like DHT (§5 future
//! work) and the protocol-level servent layer.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ddp_dht::{DhtAttack, DhtConfig, DhtPolice, DhtSimulation, Key, Ring, Router};
use ddp_servent::{Harness, HarnessConfig, ServentRole};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ring_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht_ring_build");
    for &n in &[1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            b.iter(|| black_box(Ring::build(&nodes, n)))
        });
    }
    g.finish();
}

fn bench_lookup_throughput(c: &mut Criterion) {
    let n = 10_000usize;
    let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let ring = Ring::build(&nodes, n);
    let capacity = vec![u32::MAX; n];
    c.bench_function("dht_route_1k_lookups_10k_ring", |b| {
        b.iter_batched(
            || (vec![0u32; n], vec![0u64; n], vec![0u64; n]),
            |(mut used, mut sent, mut recv)| {
                let mut router = Router {
                    ring: &ring,
                    node_used: &mut used,
                    capacity: &capacity,
                    sent: &mut sent,
                    received: &mut recv,
                    hop_latency_secs: 0.05,
                    max_hops: 64,
                };
                let mut resolved = 0u32;
                for i in 0..1_000u64 {
                    let out = router.route(
                        NodeId((i as u32 * 37) % n as u32),
                        Key::from_object(i * 2_654_435_761),
                        1,
                    );
                    resolved += out.resolved as u32;
                }
                black_box(resolved)
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_dht_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht_tick_2000");
    g.sample_size(20);
    for (name, defense) in [("undefended", None), ("detector", Some(DhtPolice::default()))] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim = DhtSimulation::new(
                        DhtConfig {
                            peers: 2_000,
                            attack: DhtAttack::Uniform,
                            defense: defense.clone(),
                            ..DhtConfig::default()
                        },
                        5,
                    );
                    sim.compromise(100);
                    sim
                },
                |mut sim| {
                    sim.step();
                    black_box(())
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_servent_minute(c: &mut Criterion) {
    // One protocol-level minute (3,600 handler invocations + frames) on a
    // 30-servent overlay with one active agent.
    let graph = TopologyConfig { n: 30, model: TopologyModel::BarabasiAlbert { m: 3 } }
        .generate(&mut StdRng::seed_from_u64(2));
    let mut g = c.benchmark_group("servent_protocol_minute");
    g.sample_size(10);
    g.bench_function("30_peers_one_agent", |b| {
        b.iter_batched(
            || {
                Harness::new(
                    &graph,
                    &[(
                        NodeId(4),
                        ServentRole::FloodingAgent { rate_qpm: 600, respond_reports: true },
                    )],
                    HarnessConfig::default(),
                    9,
                )
            },
            |mut h| {
                h.run_minutes(1);
                black_box(h.report().frames)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ring_build,
    bench_lookup_throughput,
    bench_dht_tick,
    bench_servent_minute
);
criterion_main!(benches);
