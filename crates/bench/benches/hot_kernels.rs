//! Microbenches for the three hottest tick-engine kernels: flood propagation,
//! the DD-POLICE indicator update, and the neighbor-list exchange.
//!
//! These are the kernels the scale refactor targets; `BENCH_scale.json`
//! tracks the end-to-end ticks/sec, this file tracks the kernels in
//! isolation. CI runs them with `DDP_BENCH_ITERS=1` as a smoke test.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ddp_bench::CountingAlloc;
use ddp_metrics::TrafficAccumulator;
use ddp_police::exchange::ExchangeState;
use ddp_police::{DdPolice, DdPoliceConfig, ExchangePolicy};
use ddp_sim::flood::{FirstHop, FloodEngine, FloodEnv};
use ddp_sim::{
    Actions, Defense, ForwardingPolicy, ListBehavior, Overlay, ReportBehavior, TickObservation,
};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use ddp_workload::BandwidthClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn ba_overlay(n: usize, seed: u64) -> Overlay {
    let cfg = TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } };
    let mut rng = StdRng::seed_from_u64(seed);
    let g = cfg.generate(&mut rng);
    Overlay::new(g, &vec![BandwidthClass::Ethernet; n])
}

/// One tick's worth of flooding on a 2k BA overlay: 64 good queries
/// (FirstHop::All, count 1) plus 8 attacker bursts (FirstHop::Single,
/// count 20_000), TTL 4 — the engine's dominant per-tick work.
fn bench_flood_step(c: &mut Criterion) {
    let n = 2000usize;
    let mut overlay = ba_overlay(n, 42);
    let mut engine = FloodEngine::new(n);
    let mut node_used = vec![0u32; n];
    let capacity = vec![1000u32; n];
    let online = vec![true; n];
    let prev_util = vec![0.0f32; n];
    let mut traffic = TrafficAccumulator::default();
    c.bench_function("flood_step/2k_ba", |b| {
        b.iter(|| {
            overlay.reset_tick_counters();
            node_used.fill(0);
            let mut env = FloodEnv {
                node_used: &mut node_used,
                capacity: &capacity,
                online: &online,
                prev_util: &prev_util,
                traffic: &mut traffic,
                policy: ForwardingPolicy::Fifo,
                fair_share_factor: 2.0,
                hop_latency_secs: 0.05,
                proc_delay_secs: 0.004,
            };
            let mut processed = 0u32;
            for i in 0..64u32 {
                let origin = NodeId((i * 31) % n as u32);
                let out = engine.flood(
                    &mut overlay,
                    origin,
                    FirstHop::All { count: 1 },
                    4,
                    None,
                    &mut env,
                );
                processed += out.processed_nodes;
            }
            for i in 0..8u32 {
                let origin = NodeId((i * 251 + 7) % n as u32);
                let out = engine.flood(
                    &mut overlay,
                    origin,
                    FirstHop::Single { slot: 0, count: 20_000 },
                    4,
                    None,
                    &mut env,
                );
                processed += out.processed_nodes;
            }
            black_box(processed)
        })
    });
    println!(
        "alloc after flood_step: peak {} KiB, {} allocations",
        ALLOC.peak_bytes() / 1024,
        ALLOC.allocations()
    );
}

/// Full DD-POLICE `on_tick` on a 512-node overlay where every link carries
/// above-warning traffic, so each directed edge assembles a Buddy Group and
/// computes the General/Single indicators every iteration.
fn bench_indicator_update(c: &mut Criterion) {
    let n = 512usize;
    let mut overlay = ba_overlay(n, 7);
    // Push every directed link over the 500-qpm warning threshold.
    for u in 0..n {
        let u = NodeId(u as u32);
        for slot in 0..overlay.degree(u) {
            overlay.record_send(u, slot, 600);
            overlay.record_accept(u, slot, 600);
        }
    }
    let online = vec![true; n];
    let runs = vec![true; n];
    let report = vec![ReportBehavior::Honest; n];
    let lists = vec![ListBehavior::Truthful; n];
    let mut police = DdPolice::new(DdPoliceConfig::default(), n);
    let mut tick = 0u32;
    c.bench_function("indicator_update/512_all_over_warning", |b| {
        b.iter(|| {
            tick += 1;
            let obs = TickObservation {
                tick,
                overlay: &overlay,
                online: &online,
                runs_defense: &runs,
                report_behavior: &report,
                list_behavior: &lists,
                faults: None,
            };
            let mut actions = Actions::default();
            police.on_tick(&obs, &mut actions);
            black_box(actions.control_msgs)
        })
    });
}

/// The periodic neighbor-list exchange (period 1 = refresh every tick) on a
/// 2k BA overlay: every online peer announces to every neighbor.
fn bench_neighbor_list_exchange(c: &mut Criterion) {
    let n = 2000usize;
    let overlay = ba_overlay(n, 9);
    let online = vec![true; n];
    let runs = vec![true; n];
    let report = vec![ReportBehavior::Honest; n];
    let lists = vec![ListBehavior::Truthful; n];
    let mut exchange = ExchangeState::new(n);
    let mut tick = 0u32;
    c.bench_function("neighbor_list_exchange/2k_period1", |b| {
        b.iter(|| {
            tick += 1;
            let obs = TickObservation {
                tick,
                overlay: &overlay,
                online: &online,
                runs_defense: &runs,
                report_behavior: &report,
                list_behavior: &lists,
                faults: None,
            };
            black_box(exchange.on_tick(ExchangePolicy::Periodic { minutes: 1 }, &obs))
        })
    });
}

criterion_group!(
    hot_kernels,
    bench_flood_step,
    bench_indicator_update,
    bench_neighbor_list_exchange
);
criterion_main!(hot_kernels);
