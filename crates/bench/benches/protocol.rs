//! Wire-protocol microbenches: encode/decode throughput for the message
//! types DD-POLICE puts on the wire, including the Table 1 Neighbor_Traffic
//! body.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ddp_protocol::*;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn sample_messages() -> Vec<Message> {
    vec![
        Message::new(Guid::derived(1, 1), 7, Payload::Ping(Ping)),
        Message::new(
            Guid::derived(1, 2),
            7,
            Payload::Query(Query { min_speed: 0, criteria: "popular song title".into() }),
        ),
        Message::new(
            Guid::derived(1, 3),
            1,
            Payload::NeighborTraffic(NeighborTraffic {
                source_ip: Ipv4Addr::new(10, 0, 0, 1),
                suspect_ip: Ipv4Addr::new(10, 0, 0, 2),
                timestamp: 1_185_000_000,
                outgoing_queries: 412,
                incoming_queries: 5_204,
            }),
        ),
        Message::new(
            Guid::derived(1, 4),
            1,
            Payload::NeighborList(NeighborList {
                neighbors: (0..6).map(PeerAddr::from_node_index).collect(),
            }),
        ),
        Message::new(
            Guid::derived(1, 5),
            7,
            Payload::QueryHit(QueryHit {
                addr: PeerAddr::from_node_index(9),
                speed_kbps: 1000,
                results: vec![QueryHitResult {
                    file_index: 1,
                    file_size: 3_000_000,
                    file_name: "file.mp3".into(),
                }],
                servent_id: [7; 16],
            }),
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let msgs = sample_messages();
    let total: usize = msgs.iter().map(|m| m.wire_len()).sum();
    let mut g = c.benchmark_group("proto_encode");
    g.throughput(Throughput::Bytes(total as u64));
    g.bench_function("encode_mixed_batch", |b| {
        b.iter(|| {
            for m in &msgs {
                black_box(encode_message(black_box(m)));
            }
        })
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let wires: Vec<_> = sample_messages().iter().map(encode_message).collect();
    let total: usize = wires.iter().map(|w| w.len()).sum();
    let mut g = c.benchmark_group("proto_decode");
    g.throughput(Throughput::Bytes(total as u64));
    g.bench_function("decode_mixed_batch", |b| {
        b.iter_batched(
            || wires.clone(),
            |mut ws| {
                for w in &mut ws {
                    black_box(decode_message(w).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_neighbor_traffic_roundtrip(c: &mut Criterion) {
    // The Table 1 message is the defense's hot control path.
    let msg = Message::new(
        Guid::derived(2, 2),
        1,
        Payload::NeighborTraffic(NeighborTraffic {
            source_ip: Ipv4Addr::new(10, 1, 2, 3),
            suspect_ip: Ipv4Addr::new(10, 3, 2, 1),
            timestamp: 60,
            outgoing_queries: 500,
            incoming_queries: 20_000,
        }),
    );
    c.bench_function("table1_neighbor_traffic_roundtrip", |b| {
        b.iter(|| {
            let mut wire = encode_message(black_box(&msg));
            black_box(decode_message(&mut wire).unwrap())
        })
    });
}

fn bench_seen_table(c: &mut Criterion) {
    c.bench_function("seen_table_offer_10k", |b| {
        b.iter_batched(
            || SeenTable::new(600),
            |mut t| {
                for i in 0..10_000u64 {
                    black_box(t.offer(Guid::derived(3, i), (i % 6) as u32, i));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_neighbor_traffic_roundtrip,
    bench_seen_table
);
criterion_main!(benches);
