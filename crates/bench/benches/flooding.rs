//! Flood-engine microbenches: the simulator's hot loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ddp_metrics::TrafficAccumulator;
use ddp_sim::flood::{FirstHop, FloodEnv};
use ddp_sim::{FloodEngine, ForwardingPolicy, Overlay};
use ddp_topology::{NodeId, TopologyConfig};
use ddp_workload::content::ContentConfig;
use ddp_workload::{BandwidthClass, ContentCatalog};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Fixture {
    overlay: Overlay,
    catalog: ContentCatalog,
    node_used: Vec<u32>,
    capacity: Vec<u32>,
    online: Vec<bool>,
    prev_util: Vec<f32>,
}

fn fixture(n: usize) -> Fixture {
    let graph =
        TopologyConfig { n, ..TopologyConfig::default() }.generate(&mut StdRng::seed_from_u64(1));
    let overlay = Overlay::new(graph, &vec![BandwidthClass::Ethernet; n]);
    let catalog =
        ContentCatalog::generate(n, &ContentConfig::default(), &mut StdRng::seed_from_u64(2));
    Fixture {
        overlay,
        catalog,
        node_used: vec![0; n],
        capacity: vec![1_000; n],
        online: vec![true; n],
        prev_util: vec![0.0; n],
    }
}

fn run_flood(fx: &mut Fixture, fe: &mut FloodEngine, origin: u32, count: u32, tracked: bool) {
    let mut traffic = TrafficAccumulator::default();
    let mut env = FloodEnv {
        node_used: &mut fx.node_used,
        capacity: &fx.capacity,
        online: &fx.online,
        prev_util: &fx.prev_util,
        traffic: &mut traffic,
        policy: ForwardingPolicy::Fifo,
        fair_share_factor: 2.0,
        hop_latency_secs: 0.05,
        proc_delay_secs: 0.004,
    };
    let target = if tracked { Some((&fx.catalog, ddp_workload::ObjectId(3))) } else { None };
    black_box(fe.flood(
        &mut fx.overlay,
        NodeId(origin),
        FirstHop::All { count },
        4,
        target,
        &mut env,
    ));
}

fn bench_single_query(c: &mut Criterion) {
    let mut fx = fixture(2_000);
    let mut fe = FloodEngine::new(2_000);
    c.bench_function("flood_one_tracked_query_2000", |b| {
        b.iter(|| {
            fx.overlay.reset_tick_counters();
            fx.node_used.fill(0);
            run_flood(&mut fx, &mut fe, 17, 1, true);
        })
    });
}

fn bench_attack_batch(c: &mut Criterion) {
    let mut fx = fixture(2_000);
    let mut fe = FloodEngine::new(2_000);
    c.bench_function("flood_attack_batch_20k_2000", |b| {
        b.iter(|| {
            fx.overlay.reset_tick_counters();
            fx.node_used.fill(0);
            run_flood(&mut fx, &mut fe, 17, 20_000, false);
        })
    });
}

fn bench_saturated_tick_worth(c: &mut Criterion) {
    // 600 tracked queries — one tick's good workload on 2,000 peers.
    let mut fx = fixture(2_000);
    let mut fe = FloodEngine::new(2_000);
    c.bench_function("flood_600_queries_one_tick_2000", |b| {
        b.iter(|| {
            fx.overlay.reset_tick_counters();
            fx.node_used.fill(0);
            for q in 0..600u32 {
                run_flood(&mut fx, &mut fe, (q * 3) % 2_000, 1, true);
            }
        })
    });
}

fn bench_fair_share_overhead(c: &mut Criterion) {
    // Ablation: FIFO vs FairShare budget accounting in the hot loop.
    let mut grp = c.benchmark_group("forwarding_policy");
    for (name, policy) in
        [("fifo", ForwardingPolicy::Fifo), ("fair_share", ForwardingPolicy::FairShare)]
    {
        grp.bench_function(name, |b| {
            let mut fx = fixture(1_000);
            let mut fe = FloodEngine::new(1_000);
            b.iter_batched(
                || (),
                |()| {
                    fx.overlay.reset_tick_counters();
                    fx.node_used.fill(0);
                    let mut traffic = TrafficAccumulator::default();
                    let mut env = FloodEnv {
                        node_used: &mut fx.node_used,
                        capacity: &fx.capacity,
                        online: &fx.online,
                        prev_util: &fx.prev_util,
                        traffic: &mut traffic,
                        policy,
                        fair_share_factor: 2.0,
                        hop_latency_secs: 0.05,
                        proc_delay_secs: 0.004,
                    };
                    black_box(fe.flood(
                        &mut fx.overlay,
                        NodeId(5),
                        FirstHop::All { count: 20_000 },
                        4,
                        None,
                        &mut env,
                    ));
                },
                BatchSize::SmallInput,
            )
        });
    }
    grp.finish();
}

criterion_group!(
    benches,
    bench_single_query,
    bench_attack_batch,
    bench_saturated_tick_worth,
    bench_fair_share_overhead
);
criterion_main!(benches);
