//! Buddy Groups (§3.1).
//!
//! "We define peer j's r-hop Buddy Group (BGr-j) as the set of peer j's
//! neighbors. ... Depending on how many logical neighbors each peer has, a
//! peer could belong to multiple different BGs."
//!
//! The membership an observer acts on comes from the *exchanged snapshot* of
//! the suspect's list — possibly stale — not from ground truth. With radius
//! `r >= 2` the observer additionally cross-verifies membership with the
//! suspect's current neighbors (the members themselves confirm the list,
//! §3.1's consistency check), which removes staleness at extra message cost.

use crate::exchange::ExchangeState;
use ddp_sim::{FrozenTick, TickObservation};
use ddp_topology::NodeId;

/// The Buddy Group an observer assembled for one suspect.
#[derive(Debug, Clone, PartialEq)]
pub struct BuddyGroup {
    /// The suspect whose behavior is being policed.
    pub suspect: NodeId,
    /// Members (the suspect's believed neighbors), observer included.
    pub members: Vec<NodeId>,
}

impl BuddyGroup {
    /// Number of members `k` (the indicator denominator).
    pub fn k(&self) -> usize {
        self.members.len()
    }
}

/// Assemble `BGr-suspect` as seen by `observer`.
///
/// Returns `None` when the observer holds no snapshot of the suspect's list
/// (it has not completed a neighbor-list exchange with it yet — "a joining
/// peer creates its BG membership after its first neighbor list exchanging
/// operation").
pub fn assemble(
    observer: NodeId,
    suspect: NodeId,
    exchange: &ExchangeState,
    obs: &TickObservation<'_>,
    radius: u8,
    verify: bool,
) -> Option<BuddyGroup> {
    let snap = exchange.snapshot(observer, suspect)?;
    // Resilience accounting: how stale is the view this judgment runs on?
    obs.note_snapshot_age(obs.tick.saturating_sub(snap.taken_at));
    let mut members = snap.members.clone();
    if verify {
        // §3.1: "when peers exchange their neighbor lists, they will confirm
        // the correctness of the lists with the corresponding peers." A
        // member that does not confirm the claimed adjacency is dropped —
        // which dismantles phantom padding (unless the phantom itself is a
        // colluding agent that vouches back).
        members.retain(|&m| m == observer || obs.confirm_membership(m, suspect));
    }
    if radius >= 2 {
        // Cross-verification with the suspect's r-hop neighborhood: members
        // confirm who is actually connected, removing stale entries and
        // adding joiners the snapshot missed.
        let current: Vec<NodeId> = obs.overlay.neighbors(suspect).iter().map(|h| h.peer).collect();
        for m in current {
            if !members.contains(&m) {
                members.push(m);
            }
        }
        members.retain(|&m| obs.overlay.contains_edge(m, suspect) || m == observer);
    }
    if !members.contains(&observer) {
        // The observer polices the suspect because they share a link; it is a
        // member by construction even if the announced list omitted it.
        members.push(observer);
    }
    Some(BuddyGroup { suspect, members })
}

/// The observer-independent core of [`assemble`]: the suspect's announced
/// list filtered by the §3.1 consistency check and (at radius ≥ 2) the
/// current-neighbor cross-verification.
///
/// [`assemble`] short-circuits the checks for the observer itself, but an
/// observer is always a *current* neighbor of the suspect, and a current
/// online neighbor passes both checks unconditionally (`confirm_membership`
/// answers `true` for any real adjacency, colluding or not). The result is
/// therefore identical for every observer holding the same announcement,
/// and [`crate::police::DdPolice`] shares one verification across all of a
/// suspect's observers within a tick.
pub fn verified_members(
    suspect: NodeId,
    announced: &[NodeId],
    obs: &FrozenTick<'_>,
    radius: u8,
    verify: bool,
) -> Vec<NodeId> {
    let mut members = Vec::new();
    verified_members_into(suspect, announced, obs, radius, verify, &mut members);
    members
}

/// [`verified_members`] writing into a caller-owned buffer (cleared first),
/// so per-tick rebuilds reuse one allocation per suspect. Takes the
/// [`FrozenTick`] view — everything it consults is a pure function of the
/// tick's frozen counters, so the parallel fast path can call it from any
/// worker and get the serial answer.
pub fn verified_members_into(
    suspect: NodeId,
    announced: &[NodeId],
    obs: &FrozenTick<'_>,
    radius: u8,
    verify: bool,
    members: &mut Vec<NodeId>,
) {
    members.clear();
    members.extend_from_slice(announced);
    if verify {
        members.retain(|&m| obs.confirm_membership(m, suspect));
    }
    if radius >= 2 {
        let current: Vec<NodeId> = obs.overlay.neighbors(suspect).iter().map(|h| h.peer).collect();
        for m in current {
            if !members.contains(&m) {
                members.push(m);
            }
        }
        members.retain(|&m| obs.overlay.contains_edge(m, suspect));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::ExchangePolicy;
    use ddp_sim::{Overlay, ReportBehavior, TickObservation};
    use ddp_topology::DynamicGraph;
    use ddp_workload::BandwidthClass;

    fn make_overlay(n: usize, edges: &[(u32, u32)]) -> Overlay {
        let mut g = DynamicGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        Overlay::new(g, &vec![BandwidthClass::Ethernet; n])
    }

    struct Fixture {
        overlay: Overlay,
        online: Vec<bool>,
        runs: Vec<bool>,
        behavior: Vec<ReportBehavior>,
        lists: Vec<ddp_sim::ListBehavior>,
    }

    impl Fixture {
        fn new(n: usize, edges: &[(u32, u32)]) -> Self {
            Fixture {
                overlay: make_overlay(n, edges),
                online: vec![true; n],
                runs: vec![true; n],
                behavior: vec![ReportBehavior::Honest; n],
                lists: vec![ddp_sim::ListBehavior::Truthful; n],
            }
        }

        fn obs(&self, tick: u32) -> TickObservation<'_> {
            TickObservation {
                tick,
                overlay: &self.overlay,
                online: &self.online,
                runs_defense: &self.runs,
                report_behavior: &self.behavior,
                list_behavior: &self.lists,
                faults: None,
            }
        }
    }

    #[test]
    fn bg1_is_the_suspects_neighbors() {
        // Figure 7: BG1-j = {A, B, C, D}, j's four neighbors.
        let f = Fixture::new(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]); // j = 0
        let mut ex = ExchangeState::new(5);
        ex.on_tick(ExchangePolicy::Periodic { minutes: 1 }, &f.obs(1));
        let bg = assemble(NodeId(1), NodeId(0), &ex, &f.obs(1), 1, true).unwrap();
        assert_eq!(bg.k(), 4);
        let mut ids: Vec<u32> = bg.members.iter().map(|m| m.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn no_snapshot_means_no_group() {
        let f = Fixture::new(3, &[(0, 1), (0, 2)]);
        let ex = ExchangeState::new(3);
        assert!(assemble(NodeId(1), NodeId(0), &ex, &f.obs(1), 1, true).is_none());
    }

    #[test]
    fn radius_two_removes_stale_and_adds_fresh_members() {
        let mut f = Fixture::new(5, &[(0, 1), (0, 2)]);
        let mut ex = ExchangeState::new(5);
        ex.on_tick(ExchangePolicy::Periodic { minutes: 10 }, &f.obs(1));
        // After the exchange, suspect 0 drops 2 and gains 3.
        f.overlay.remove_edge(NodeId(0), NodeId(2));
        f.overlay.add_edge(NodeId(0), NodeId(3));

        // Without verification, r=1 works from the stale snapshot alone.
        let bg1 = assemble(NodeId(1), NodeId(0), &ex, &f.obs(2), 1, false).unwrap();
        let ids1: Vec<u32> = bg1.members.iter().map(|m| m.0).collect();
        assert!(ids1.contains(&2), "r=1 keeps the stale member");
        assert!(!ids1.contains(&3), "r=1 misses the joiner");

        let bg2 = assemble(NodeId(1), NodeId(0), &ex, &f.obs(2), 2, false).unwrap();
        let ids2: Vec<u32> = bg2.members.iter().map(|m| m.0).collect();
        assert!(!ids2.contains(&2), "r=2 cross-verification drops the stale member");
        assert!(ids2.contains(&3), "r=2 discovers the joiner");
    }

    #[test]
    fn verification_drops_unconfirmed_members() {
        // Suspect 0 announces {1, 2}; then loses the edge to 2. With the
        // §3.1 consistency check on, member 2 fails to confirm and is
        // dropped even at r=1.
        let mut f = Fixture::new(4, &[(0, 1), (0, 2)]);
        let mut ex = ExchangeState::new(4);
        ex.on_tick(ExchangePolicy::Periodic { minutes: 10 }, &f.obs(1));
        f.overlay.remove_edge(NodeId(0), NodeId(2));
        let bg = assemble(NodeId(1), NodeId(0), &ex, &f.obs(2), 1, true).unwrap();
        let ids: Vec<u32> = bg.members.iter().map(|m| m.0).collect();
        assert!(!ids.contains(&2), "unconfirmed member must be dropped: {ids:?}");
        assert!(ids.contains(&1));
    }

    #[test]
    fn padded_phantom_members_are_filtered_by_verification() {
        // Suspect 0 pads its announced list with phantoms; honest phantoms
        // refuse to confirm, so verification restores the true group.
        let mut f = Fixture::new(8, &[(0, 1), (0, 2)]);
        f.lists[0] = ddp_sim::ListBehavior::PadFake { extra: 4 };
        let mut ex = ExchangeState::new(8);
        ex.on_tick(ExchangePolicy::Periodic { minutes: 1 }, &f.obs(1));
        let unverified = assemble(NodeId(1), NodeId(0), &ex, &f.obs(1), 1, false).unwrap();
        let verified = assemble(NodeId(1), NodeId(0), &ex, &f.obs(1), 1, true).unwrap();
        assert!(
            unverified.k() > verified.k(),
            "padding must inflate the unverified group: {} vs {}",
            unverified.k(),
            verified.k()
        );
        let ids: Vec<u32> = verified.members.iter().map(|m| m.0).collect();
        for id in &ids {
            assert!(
                [1u32, 2].contains(id),
                "verified group may only contain real neighbors: {ids:?}"
            );
        }
    }

    #[test]
    fn observer_is_always_a_member() {
        let f = Fixture::new(3, &[(0, 1), (0, 2)]);
        let mut ex = ExchangeState::new(3);
        ex.on_tick(ExchangePolicy::Periodic { minutes: 1 }, &f.obs(1));
        let bg = assemble(NodeId(2), NodeId(0), &ex, &f.obs(1), 1, true).unwrap();
        assert!(bg.members.contains(&NodeId(2)));
    }
}
