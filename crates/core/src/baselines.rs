//! Baseline defenses DD-POLICE is compared against.
//!
//! * [`ddp_sim::NoDefense`] — plain Gnutella (re-exported by the engine).
//! * [`NaiveRateLimit`] — cut any neighbor whose per-link volume exceeds a
//!   threshold, with no Buddy-Group corroboration. This is the strawman §2.1
//!   warns about: "Disconnecting all the peers who send out a large number of
//!   queries is dangerous in that a large number of good peers could be
//!   forwarding queries for bad peers" (Figure 1).
//! * The application-layer fair-sharing baseline (Daswani & Garcia-Molina,
//!   the paper's \[21\]) is a *forwarding* policy, not a detector — it lives in
//!   the engine as `ddp_sim::ForwardingPolicy::FairShare`.

use ddp_sim::{Actions, Defense, TickObservation};
use ddp_topology::NodeId;

/// Local-only rate limiting: no cooperation, no indicators — just cut heavy
/// senders.
#[derive(Debug, Clone, Copy)]
pub struct NaiveRateLimit {
    /// Per-link queries/min above which the sender is cut.
    pub threshold_qpm: u32,
}

impl NaiveRateLimit {
    /// Baseline with the same 500 q/min threshold DD-POLICE uses for mere
    /// *suspicion* — highlighting that DD-POLICE investigates where this
    /// baseline executes.
    pub fn new(threshold_qpm: u32) -> Self {
        NaiveRateLimit { threshold_qpm }
    }
}

impl Default for NaiveRateLimit {
    fn default() -> Self {
        NaiveRateLimit::new(500)
    }
}

impl Defense for NaiveRateLimit {
    fn name(&self) -> &'static str {
        "naive-rate-limit"
    }

    fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
        let n = obs.overlay.node_count();
        for i in 0..n {
            if !obs.runs_defense[i] {
                continue;
            }
            let observer = NodeId::from_index(i);
            for slot in 0..obs.overlay.degree(observer) {
                let half = obs.overlay.neighbors(observer)[slot];
                let q_in = obs.overlay.accepted_via(half.peer, half.ridx as usize);
                if q_in > self.threshold_qpm {
                    actions.cut(observer, half.peer);
                }
            }
        }
    }

    fn snapshot_support(&self) -> bool {
        true
    }

    fn save_state(&self, enc: &mut ddp_snapshot::Enc) {
        // Stateless across ticks; the threshold is recorded only so a resume
        // under a differently-configured limiter is refused.
        enc.u32(self.threshold_qpm);
    }

    fn restore_state(
        &mut self,
        dec: &mut ddp_snapshot::Dec<'_>,
    ) -> Result<(), ddp_snapshot::SnapshotError> {
        let found = dec.u32()?;
        if found != self.threshold_qpm {
            return Err(ddp_snapshot::SnapshotError::ContextMismatch {
                expected: self.threshold_qpm as u64,
                found: found as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_sim::{ReportBehavior, SimConfig, Simulation};
    use ddp_topology::{TopologyConfig, TopologyModel};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            topology: TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } },
            churn: false,
            ..SimConfig::default()
        }
    }

    #[test]
    fn naive_limiter_cuts_attackers_but_also_innocent_forwarders() {
        let mut sim = Simulation::new(cfg(300), NaiveRateLimit::default(), 17);
        for a in [5u32, 50, 100] {
            sim.make_attacker(NodeId(a), ReportBehavior::Honest);
        }
        let res = sim.run(8);
        assert!(res.summary.attackers_cut > 0, "heavy senders include the attackers");
        assert!(
            res.summary.errors.false_negative > 0,
            "Figure 1's point: the naive policy also cuts good forwarders ({:?})",
            res.summary.errors
        );
    }

    #[test]
    fn naive_limiter_cuts_far_more_good_peers_than_dd_police() {
        let seed = 23;
        let naive = {
            let mut sim = Simulation::new(cfg(300), NaiveRateLimit::default(), seed);
            for a in [5u32, 50, 100] {
                sim.make_attacker(NodeId(a), ReportBehavior::Honest);
            }
            sim.run(8)
        };
        let police = {
            let d = crate::DdPolice::new(crate::DdPoliceConfig::default(), 300);
            let mut sim = Simulation::new(cfg(300), d, seed);
            for a in [5u32, 50, 100] {
                sim.make_attacker(NodeId(a), ReportBehavior::Honest);
            }
            sim.run(8)
        };
        assert!(
            naive.summary.errors.false_negative > police.summary.errors.false_negative,
            "naive {} vs dd-police {}",
            naive.summary.errors.false_negative,
            police.summary.errors.false_negative
        );
    }

    #[test]
    fn quiet_network_triggers_nothing() {
        let sim = Simulation::new(cfg(200), NaiveRateLimit::default(), 3);
        let res = sim.run(5);
        assert_eq!(res.summary.good_peers_cut, 0);
        assert_eq!(res.summary.errors.false_negative, 0);
    }
}
