//! DD-POLICE parameters.

use crate::exchange::ExchangePolicy;
use crate::verdict::{AggregationPolicy, Hysteresis, ReadmissionPolicy};
pub use ddp_sketch::{MonitorBackend, SketchParams};

/// All protocol parameters, defaulted to the values §3.7 settles on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdPoliceConfig {
    /// Cut threshold `CT`: disconnect when an indicator exceeds it. §3.7.2:
    /// "Comprehensively considering the performance of DD-POLICE, we choose
    /// CT = 5" (false judgment is minimal for CT within 5–7).
    pub cut_threshold: f64,
    /// Warning threshold in queries/min. §3.3: "Suppose we define the
    /// warning threshold as 500 queries per minute."
    pub warning_threshold_qpm: u32,
    /// `q` of Definitions 2.1–2.3: the indicator normalizer in queries/min.
    /// The paper's constant is partially garbled in the available text
    /// ("we set q=1…"); we read it as **100**, the value that makes the
    /// evaluation coherent: with q = 100 the cut-threshold grid 1..12 of
    /// Figures 13/14 straddles both the distortion magnitudes that wrongly
    /// convict good forwarders (≈ one saturated input source, ~1,000 q/min)
    /// and the observable rates of link-capped dial-up agents (~840 q/min),
    /// reproducing the paper's error tradeoff. (With q = 10, every
    /// interesting indicator value lands far above CT = 12 and the sweep
    /// would be flat.)
    pub q_qpm: u32,
    /// Neighbor-list exchange policy. §3.7.1: periodic every 2 minutes.
    pub exchange: ExchangePolicy,
    /// Buddy-Group radius `r`. The paper evaluates `r = 1` and sketches
    /// `r > 1`; with `r >= 2` an observer cross-verifies the suspect's list
    /// with the suspect's own neighbors, which de-stales the membership view.
    pub radius: u8,
    /// Consecutive suspicious ticks after which a suspect that never
    /// produced a neighbor list is judged from the observer's own counters
    /// alone (a peer refusing the exchange step cannot hide forever).
    pub missing_list_grace: u8,
    /// §3.1's consistency check: before using a Buddy-Group member, confirm
    /// with the member that it really is the suspect's neighbor. Stops the
    /// *list-padding* evasion (phantom members raise `k` and deflate the
    /// General Indicator). On by default — the paper prescribes it.
    pub verify_lists: bool,
    /// Hardening beyond the paper: clamp a member's claimed
    /// `Q_{m→suspect}` at the physical capacity of the `m → suspect` link.
    /// Counters the *collusive inflation* attack our reproduction uncovered
    /// (a fellow agent vouches for the suspect by claiming impossible input
    /// volumes; §3.4's Case 1 analysis assumed a lone agent). Off by default
    /// — the paper's protocol does not clamp.
    pub clamp_reports_to_link: bool,
    /// On a lossy transport: how many ticks a *late* `Neighbor_Traffic`
    /// reply stays usable. A delayed reply that matures within this window
    /// still answers the lookup (with stale counters); older ones are
    /// discarded and §3.4's assume-zero rule applies. Irrelevant on the
    /// reliable transport the paper assumes.
    pub report_timeout_ticks: u32,
    /// On a lossy transport: bounded retry budget per report lookup. After a
    /// transport-faulted request/reply the observer re-requests at most this
    /// many times within the tick (each retry charged one control message)
    /// before falling back to late replies and then assume-zero. Refusals
    /// (silent or offline peers) are never retried — that is a protocol
    /// answer, not a transport failure.
    pub max_report_retries: u32,
    /// W-of-K confirmation windows before a cut. Default 1-of-1: the
    /// paper's single-window verdict, bit-identical to the pre-hysteresis
    /// protocol.
    pub hysteresis: Hysteresis,
    /// How the Buddy Group's traffic claims are combined. Default
    /// [`AggregationPolicy::Sum`]: the paper's sum-with-assume-zero.
    pub aggregation: AggregationPolicy,
    /// Quarantine/probation lifecycle after a cut. Disabled by default: the
    /// paper's disconnect is permanent.
    pub readmission: ReadmissionPolicy,
    /// Garbage-collection horizon for verdict state, in ticks. Under churn a
    /// suspect can leave before its lifecycle clocks mature; without a sweep
    /// those entries (and entries about long-departed identities) accumulate
    /// forever. When set, each observer drops (a) `Watching` entries about
    /// offline suspects, (b) matured quarantine/probation clocks whose
    /// suspect is gone, and (c) online entries whose deadline is more than
    /// this many ticks overdue. `u32::MAX` (the default) disables the sweep
    /// — the paper's static-membership behavior, byte-identical to before
    /// the field existed.
    pub suspect_ttl_ticks: u32,
    /// Which traffic-monitor backend judgments read their per-neighbor
    /// query counts from. [`MonitorBackend::Exact`] (the default) reads the
    /// overlay's exact counters, tick-for-tick identical to before the
    /// field existed; [`MonitorBackend::Sketch`] reads count-min estimates
    /// (overestimate-only, so detection errs toward *investigating*, never
    /// toward missing a flooder). Note this field feeds the snapshot config
    /// digest through `Debug`, so checkpoints refuse to resume under a
    /// different backend.
    pub monitor: MonitorBackend,
}

impl Default for DdPoliceConfig {
    fn default() -> Self {
        DdPoliceConfig {
            cut_threshold: 5.0,
            warning_threshold_qpm: 500,
            q_qpm: 100,
            exchange: ExchangePolicy::default(),
            radius: 1,
            missing_list_grace: 2,
            verify_lists: true,
            clamp_reports_to_link: false,
            report_timeout_ticks: 2,
            max_report_retries: 1,
            hysteresis: Hysteresis::default(),
            aggregation: AggregationPolicy::default(),
            readmission: ReadmissionPolicy::default(),
            suspect_ttl_ticks: u32::MAX,
            monitor: MonitorBackend::Exact,
        }
    }
}

impl DdPoliceConfig {
    /// Config with a specific cut threshold (the Figure 12–14 sweeps).
    pub fn with_cut_threshold(ct: f64) -> Self {
        DdPoliceConfig { cut_threshold: ct, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DdPoliceConfig::default();
        assert_eq!(c.cut_threshold, 5.0);
        assert_eq!(c.warning_threshold_qpm, 500);
        assert_eq!(c.q_qpm, 100);
        assert_eq!(c.exchange, ExchangePolicy::Periodic { minutes: 2 });
        assert_eq!(c.radius, 1);
    }

    #[test]
    fn with_cut_threshold_overrides_only_ct() {
        let c = DdPoliceConfig::with_cut_threshold(7.0);
        assert_eq!(c.cut_threshold, 7.0);
        assert_eq!(c.warning_threshold_qpm, 500);
    }

    #[test]
    fn fault_tolerance_defaults_are_bounded() {
        let c = DdPoliceConfig::default();
        assert_eq!(c.report_timeout_ticks, 2);
        assert_eq!(c.max_report_retries, 1);
    }

    #[test]
    fn verdict_defaults_reproduce_the_paper() {
        let c = DdPoliceConfig::default();
        assert_eq!(c.hysteresis, Hysteresis { required: 1, window: 1 });
        assert_eq!(c.aggregation, AggregationPolicy::Sum);
        assert!(!c.readmission.enabled, "the paper's cut is permanent");
        assert_eq!(c.suspect_ttl_ticks, u32::MAX, "expiry sweep is opt-in");
    }
}
