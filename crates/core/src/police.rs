//! The DD-POLICE detection protocol as a pluggable [`Defense`].
//!
//! Per tick (= minute), every compliant peer `i`:
//!
//! 1. refreshes neighbor-list snapshots per the exchange policy (§3.1),
//! 2. scans its per-neighbor `In_query` counters; a neighbor `j` above the
//!    warning threshold becomes a *suspect* (§3.3),
//! 3. assembles `BGr-j` from its snapshot of `j`'s list, exchanges
//!    `Neighbor_Traffic` messages with the members (charged once per suspect
//!    per tick — the paper's 50-second re-send suppression), treating
//!    missing reports as zeroes,
//! 4. computes the General and Single indicators and disconnects `j` if
//!    either exceeds the cut threshold `CT` (§3.7.2).
//!
//! A suspect that never produces a neighbor list (a Silent attacker refusing
//! the exchange step) is judged after a grace period from the observer's own
//! counters alone — refusing to participate cannot be a shield.

use crate::buddy::{assemble, verified_members_into, BuddyGroup};
use crate::config::DdPoliceConfig;
use crate::exchange::ExchangeState;
use crate::indicator::{general_indicator, is_bad, single_indicator};
use crate::verdict::{aggregate_group_traffic, AggregationPolicy, VerdictMachine, VerdictShard};
use ddp_sim::{
    Actions, Defense, FrozenTick, ReportDelivery, ReportOutcome, Tick, TickObservation,
    TrafficReport,
};
use ddp_sketch::{MonitorBackend, SketchMonitor};
use ddp_topology::{NodeId, Partition};
use std::collections::HashMap;
use std::ops::Range;

/// Read-only view of the active traffic monitor, the source every judgment
/// reads its per-neighbor query counts from. `Exact` reads the overlay's
/// frozen counters — the code path that existed before backends were
/// pluggable, byte-for-byte. `Sketch` reads the count-min estimates ingested
/// at the top of the tick. `Copy` so every judgment worker can carry it over
/// the frozen tick (the sketch is only ever read during judgment).
#[derive(Clone, Copy)]
enum Mon<'a> {
    Exact,
    Sketch(&'a SketchMonitor),
}

impl Mon<'_> {
    /// The tick's accepted-query count on `src → dst`, where `slot` is
    /// `src`'s adjacency slot for `dst` (the exact backend's O(1)
    /// reciprocal-index read).
    #[inline]
    fn flow(&self, obs: &FrozenTick<'_>, src: NodeId, slot: usize, dst: NodeId) -> u32 {
        match self {
            Mon::Exact => obs.overlay.accepted_via(src, slot),
            Mon::Sketch(m) => m.estimate(src.0, dst.0),
        }
    }

    /// What `reporter` would answer a `Neighbor_Traffic` request about
    /// `suspect`: the monitor's counters, shaped by the reporter's fixed
    /// cheating behavior. Observer-independent either way, so the shared
    /// fast path's preconditions are unchanged by the backend choice.
    #[inline]
    fn answer(
        &self,
        obs: &FrozenTick<'_>,
        reporter: NodeId,
        suspect: NodeId,
    ) -> Option<TrafficReport> {
        match self {
            Mon::Exact => obs.request_report(reporter, suspect),
            Mon::Sketch(m) => obs.shape_report(
                reporter,
                suspect,
                TrafficReport {
                    sent_to_suspect: m.estimate(reporter.0, suspect.0),
                    received_from_suspect: m.estimate(suspect.0, reporter.0),
                },
            ),
        }
    }
}

/// Realized-error diagnostics of the sketch backend, refreshed during each
/// tick's ingest. `max_excess_*` compares every live edge's estimate against
/// the exact counter — the quantity the detection-parity suite derives its
/// borderline tolerance from (the error-bound proptests bound it by εN).
/// All zeros under the exact backend.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SketchStats {
    /// Queries ingested last tick (the εN bound's `N`).
    pub items_last_tick: u64,
    /// Worst realized overestimate across live edges, last tick.
    pub max_excess_last_tick: u32,
    /// Worst realized overestimate across the whole run.
    pub max_excess_run: u32,
    /// Largest `N` seen in any tick of the run.
    pub max_items_run: u64,
    /// Largest overlay degree seen during ingest (bounds a Buddy Group's
    /// `k`, which scales how estimate excess propagates into indicators).
    pub max_degree_run: u32,
}

/// Sum a Buddy Group's traffic claims about the suspect: the observer's own
/// ground-truth counters plus each other member's resolved report, where
/// `None` applies §3.4's assume-zero rule ("it just assumes that peer j sent
/// 0 query"). Returns `(Σ_m Q_{j→m}, Σ_m Q_{m→j})` — the General-Indicator
/// numerator pair. All inputs are u32 counters, so the f64 sums are exact.
pub fn group_traffic_sums(
    own: TrafficReport,
    member_reports: &[Option<TrafficReport>],
) -> (f64, f64) {
    let mut out_of_suspect = own.received_from_suspect as f64;
    let mut into_suspect = own.sent_to_suspect as f64;
    for r in member_reports.iter().flatten() {
        out_of_suspect += r.received_from_suspect as f64;
        into_suspect += r.sent_to_suspect as f64;
    }
    (out_of_suspect, into_suspect)
}

/// One `(g, s)` judgment actually computed, recorded when tracing is on.
/// The differential harness compares these against the reference oracle's
/// transcription of the paper's equations, within 1 ulp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JudgmentTrace {
    /// Tick the judgment happened in.
    pub tick: Tick,
    /// The judging peer.
    pub observer: NodeId,
    /// The peer being judged.
    pub suspect: NodeId,
    /// General Indicator `g(j,t)` as computed.
    pub g: f64,
    /// Single Indicator `s(j,t,i)` as computed.
    pub s: f64,
}

/// The DD-POLICE defense.
#[derive(Debug)]
pub struct DdPolice {
    cfg: DdPoliceConfig,
    exchange: ExchangeState,
    /// Per-observer suspicion state machines: hysteresis history, the
    /// missing-list grace streak, and the quarantine/probation lifecycle.
    verdicts: VerdictMachine,
    /// Per-suspect tick stamp of the last Neighbor_Traffic exchange (the
    /// 50-second suppression: "check whether it has sent a Neighbor_Traffic
    /// message to other members in this BG in past 50 seconds"). A stamp
    /// equal to the current tick means the suspect's group already exchanged;
    /// ticks are monotone and start at 1, so 0 reads as "never".
    exchanged_stamp: Vec<Tick>,
    /// Per-tick memo of what `(reporter, suspect)` *would answer* to a
    /// Neighbor_Traffic request. The answer reads only the tick's frozen
    /// counters and the reporter's fixed behavior, so it is identical for
    /// every observer that asks — without the memo, every observer of a
    /// high-degree suspect re-scans the suspect's adjacency row per member,
    /// an O(deg³) blowup on hub nodes. Transport faults stay per-observer:
    /// only the answer's *content* is shared. Cleared each tick.
    report_memo: HashMap<(u32, u32), Option<TrafficReport>>,
    /// Per-suspect shared judgment inputs under the reliable/Sum fast path:
    /// the verified member list and the report sums over it, both functions
    /// of `(suspect, announcement tick)` alone. Each observer then adjusts
    /// the sums for its own membership in O(1) instead of re-resolving every
    /// member. Entries are stamped per tick; a stale stamp means "rebuild".
    suspect_cache: Vec<SuspectTickCache>,
    /// When `Some`, every `(g, s)` judgment is appended here (differential
    /// testing against the reference oracle). Off by default: zero cost.
    trace: Option<Vec<JudgmentTrace>>,
    /// Test-only sabotage switch: take the shared-judgment fast path even
    /// when its exactness preconditions do not hold. The differential
    /// harness's mutation check flips this to prove divergence is caught.
    force_fast_path: bool,
    /// Worker-pool width from [`Defense::set_parallelism`]. Never serialized:
    /// a snapshot written at any width must restore identically at any other.
    threads: usize,
    /// Test-only sabotage switch: merge worker partitions in *reverse* order
    /// instead of canonical ascending order. An unordered reduction is the
    /// classic parallel-determinism bug; the differential suite flips this to
    /// prove it actually detects one. No-op at `threads <= 1`.
    unordered_reduction: bool,
    /// Per-worker [`suspect_cache`](Self::suspect_cache) equivalents, kept
    /// only so their allocations survive across ticks. Like the serial cache
    /// they are per-tick memos: never serialized, cleared on restore.
    worker_caches: Vec<HashMap<u32, SuspectTickCache>>,
    /// The sketch monitor when `cfg.monitor` selects the sketch backend
    /// (`None` under the exact default — the exact path allocates nothing).
    /// Ingest runs serially at the top of `on_tick`; judgments — serial or
    /// parallel — only read it. Cross-tick state (the heavy-hitter table and
    /// its buckets) is serialized after the existing payload fields.
    monitor: Option<SketchMonitor>,
    /// See [`SketchStats`]. Diagnostics only: never serialized, never read
    /// by judgments, so it cannot influence detection behavior.
    sketch_stats: SketchStats,
}

/// See [`DdPolice::suspect_cache`].
#[derive(Debug, Clone, Default)]
struct SuspectTickCache {
    /// Tick the entry was built in (0 = never; ticks start at 1).
    stamp: Tick,
    /// Announcement tick of the snapshot the entry was built from. Observers
    /// holding a different-aged snapshot rebuild rather than share.
    taken_at: Tick,
    /// The suspect's verified members (no observer adjustments applied).
    members: Vec<NodeId>,
    /// What each member answers a Neighbor_Traffic request with, aligned
    /// with `members` — each observer subtracts its own slot back out.
    answers: Vec<Option<TrafficReport>>,
    /// Σ members' claimed received-from-suspect, missing reports as zero.
    sum_out: f64,
    /// Σ members' claimed sent-to-suspect, missing reports as zero.
    sum_in: f64,
    /// Members that answered / refused (for bulk resilience accounting).
    n_answered: u32,
    n_refused: u32,
}

impl DdPolice {
    /// DD-POLICE over `n` peer slots.
    pub fn new(cfg: DdPoliceConfig, n: usize) -> Self {
        let monitor = match cfg.monitor {
            MonitorBackend::Exact => None,
            MonitorBackend::Sketch(params) => Some(SketchMonitor::new(params)),
        };
        DdPolice {
            cfg,
            exchange: ExchangeState::new(n),
            verdicts: VerdictMachine::new(n),
            exchanged_stamp: vec![0; n],
            report_memo: HashMap::new(),
            suspect_cache: vec![SuspectTickCache::default(); n],
            trace: None,
            force_fast_path: false,
            threads: 1,
            unordered_reduction: false,
            worker_caches: Vec::new(),
            monitor,
            sketch_stats: SketchStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DdPoliceConfig {
        &self.cfg
    }

    /// The suspicion state machines (for tests and diagnostics).
    pub fn verdicts(&self) -> &VerdictMachine {
        &self.verdicts
    }

    /// The neighbor-list exchange state (for tests and diagnostics).
    pub fn exchange(&self) -> &ExchangeState {
        &self.exchange
    }

    /// Start (or stop) recording every `(g, s)` judgment computed.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Drain the judgments recorded since the last call (empty when tracing
    /// is off). Tracing stays enabled.
    pub fn take_trace(&mut self) -> Vec<JudgmentTrace> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Force the shared-judgment fast path regardless of its exactness
    /// preconditions. This deliberately *breaks* the defense under configs
    /// the fast path cannot handle (per-link clamping, robust aggregation,
    /// faulty transport) — it exists solely so the differential harness can
    /// prove it catches such breakage. Never set this outside tests.
    #[doc(hidden)]
    pub fn set_force_fast_path(&mut self, on: bool) {
        self.force_fast_path = on;
    }

    /// Sabotage the parallel reduction: merge worker partitions in reverse
    /// order. This plants exactly the nondeterminism bug the serial-vs-
    /// parallel differential suite exists to catch (who pays a suspect's
    /// `k(k-1)` exchange charge, cut/reconnect ordering, snapshot-age
    /// quantile feed order) — the suite's mutation check flips it and
    /// asserts divergence is detected. Never set this outside tests.
    #[doc(hidden)]
    pub fn set_unordered_reduction(&mut self, on: bool) {
        self.unordered_reduction = on;
    }

    fn record_trace(&mut self, tick: Tick, observer: NodeId, suspect: NodeId, g: f64, s: f64) {
        if let Some(t) = self.trace.as_mut() {
            t.push(JudgmentTrace { tick, observer, suspect, g, s });
        }
    }

    /// The sketch monitor, when the sketch backend is active (tests,
    /// diagnostics, and the experiments sweep's memory accounting).
    pub fn sketch_monitor(&self) -> Option<&SketchMonitor> {
        self.monitor.as_ref()
    }

    /// Realized-error diagnostics of the sketch backend (zeros under exact).
    pub fn sketch_stats(&self) -> SketchStats {
        self.sketch_stats
    }

    /// Sabotage the sketch into *undercounting* by `bias`, violating the
    /// overestimate-only invariant the detection analysis rests on. The
    /// parity suite's teeth check flips this and asserts the missed cut is
    /// caught. No-op under the exact backend. Never set outside tests.
    #[doc(hidden)]
    pub fn set_sketch_underestimate(&mut self, bias: u32) {
        if let Some(m) = self.monitor.as_mut() {
            m.set_underestimate(bias);
        }
    }

    /// Sketch-backend ingest: replay the tick's frozen accepted-query
    /// counters into a fresh count-min window, offer each sender's aggregate
    /// to the top-k table (filling its leaky bucket, drained by the warning
    /// budget), then run a verify pass recording the realized worst
    /// overestimate. Runs serially on the caller's thread *before* any
    /// judgment worker spawns: judgments only ever read the monitor, so the
    /// parallel fast path needs no sketch merging or deferral at all — the
    /// sketch analogue of the `Deferred` replay rule for suspect-shared
    /// state is "mutate before the fork, freeze across it".
    fn sketch_ingest(&mut self, obs: &TickObservation<'_>) {
        let Some(mon) = self.monitor.as_mut() else { return };
        mon.begin_tick(self.cfg.warning_threshold_qpm as u64);
        let n = obs.overlay.node_count();
        let mut max_degree = self.sketch_stats.max_degree_run;
        for i in 0..n {
            let u = NodeId::from_index(i);
            let neigh = obs.overlay.neighbors(u);
            max_degree = max_degree.max(neigh.len() as u32);
            let mut total = 0u64;
            for (slot, &half) in neigh.iter().enumerate() {
                let c = obs.overlay.accepted_via(u, slot);
                if c > 0 {
                    mon.record_flow(u.0, half.peer.0, c);
                    total += c as u64;
                }
            }
            mon.note_sender_total(u.0, total);
        }
        let mut max_excess = 0u32;
        for i in 0..n {
            let u = NodeId::from_index(i);
            for (slot, &half) in obs.overlay.neighbors(u).iter().enumerate() {
                let c = obs.overlay.accepted_via(u, slot);
                max_excess = max_excess.max(mon.estimate(u.0, half.peer.0).saturating_sub(c));
            }
        }
        self.sketch_stats = SketchStats {
            items_last_tick: mon.items_this_tick(),
            max_excess_last_tick: max_excess,
            max_excess_run: self.sketch_stats.max_excess_run.max(max_excess),
            max_items_run: self.sketch_stats.max_items_run.max(mon.items_this_tick()),
            max_degree_run: max_degree,
        };
    }

    /// `(verdict entries, exchanged snapshots)` currently held — the two
    /// per-identity stores that grow under churn. The bounded-memory
    /// regression asserts this stays flat over long sessions.
    pub fn state_footprint(&self) -> (usize, usize) {
        (self.verdicts.total_entries(), self.exchange.total_snapshots())
    }

    /// Resolve one member's `Neighbor_Traffic` report over the (possibly
    /// faulty) transport. Transport failures are retried up to the bounded
    /// budget (each retry charged one control message via `retry_msgs`),
    /// then a late reply from an earlier round within the timeout window is
    /// accepted, then §3.4's assume-zero rule applies. Refusals are final —
    /// a silent peer stays silent no matter how often it is asked.
    fn resolve_report(
        &self,
        observer: NodeId,
        reporter: NodeId,
        suspect: NodeId,
        answer: Option<TrafficReport>,
        obs: &TickObservation<'_>,
        retry_msgs: &mut u64,
    ) -> Option<TrafficReport> {
        let mut attempt = 0u32;
        loop {
            match obs.deliver_prepared_report(observer, reporter, suspect, answer, attempt) {
                ReportDelivery::Fresh(r) => {
                    obs.note_report_outcome(ReportOutcome::Fresh);
                    return Some(r);
                }
                ReportDelivery::Refused => {
                    obs.note_report_outcome(ReportOutcome::Refused);
                    return None;
                }
                ReportDelivery::Faulted => {
                    if attempt < self.cfg.max_report_retries {
                        attempt += 1;
                        *retry_msgs += 1;
                        obs.note_retries(1);
                        continue;
                    }
                    if let Some((r, sent_at)) = obs.stale_report(observer, reporter, suspect) {
                        if obs.tick.saturating_sub(sent_at) <= self.cfg.report_timeout_ticks {
                            obs.note_report_outcome(ReportOutcome::Stale);
                            return Some(r);
                        }
                    }
                    obs.note_report_outcome(ReportOutcome::AssumedZero);
                    return None;
                }
            }
        }
    }

    /// Judge one suspect from one observer's position. Returns the pair of
    /// indicators actually computed (for diagnostics/tests) and the control
    /// messages spent on transport retries.
    #[allow(clippy::too_many_arguments)] // one per input plane; bundling would just rename the problem
    fn judge(
        &self,
        observer: NodeId,
        group: &BuddyGroup,
        own: TrafficReport,
        q_suspect_to_observer: u32,
        obs: &TickObservation<'_>,
        mon: Mon<'_>,
        memo: &mut HashMap<(u32, u32), Option<TrafficReport>>,
    ) -> (f64, f64, u64) {
        let suspect = group.suspect;
        let mut retry_msgs = 0u64;
        let mut member_reports = Vec::with_capacity(group.members.len());
        for &m in &group.members {
            if m == observer {
                continue; // own counters are summed directly, no message
            }
            let answer = *memo
                .entry((m.0, suspect.0))
                .or_insert_with(|| mon.answer(&obs.frozen(), m, suspect));
            let report = self
                .resolve_report(observer, m, suspect, answer, obs, &mut retry_msgs)
                .map(|mut r| {
                    if self.cfg.clamp_reports_to_link {
                        // No member can have pushed more into the suspect
                        // than the physical link allows; impossible claims
                        // are capped (the collusive-inflation hardening).
                        r.sent_to_suspect =
                            r.sent_to_suspect.min(obs.overlay.link_capacity(m, suspect));
                    }
                    r
                });
            member_reports.push(report);
        }
        let (sum_out_of_suspect, sum_into_suspect) =
            aggregate_group_traffic(own, &member_reports, self.cfg.aggregation);
        let g = general_indicator(sum_out_of_suspect, sum_into_suspect, group.k(), self.cfg.q_qpm);
        let s = single_indicator(
            q_suspect_to_observer as f64,
            sum_into_suspect - own.sent_to_suspect as f64,
            self.cfg.q_qpm,
        );
        (g, s, retry_msgs)
    }

    /// The sharded fast-path tick: partition the observers by degree weight,
    /// judge each partition on its own worker over the frozen tick view,
    /// then reduce the partition outcomes in canonical (ascending-observer)
    /// order. Contiguous ascending partitions make concatenation identical
    /// to the serial observer loop, so every byte of engine state — verdict
    /// entries, cut/reconnect ordering, control-message totals, the
    /// snapshot-age quantile feed — lands exactly as a `threads == 1` run
    /// would leave it.
    ///
    /// Workers never touch the cross-suspect shared state. Anything keyed by
    /// *suspect* rather than observer (`exchanged_stamp`, the `k(k-1)`
    /// exchange charge, the order-sensitive metric feeds) is recorded as a
    /// [`Deferred`] event in serial order and replayed here on the caller's
    /// thread during the reduction.
    fn parallel_fast_tick(
        &mut self,
        obs: &TickObservation<'_>,
        mon: Mon<'_>,
        actions: &mut Actions,
    ) {
        let frozen = obs.frozen();
        let part = Partition::by_degree(obs.overlay.graph(), self.threads);
        if self.worker_caches.len() < part.parts() {
            self.worker_caches.resize_with(part.parts(), HashMap::new);
        }
        let cfg = &self.cfg;
        let exchange = &self.exchange;
        let tracing = self.trace.is_some();
        let shards = self.verdicts.shards(part.boundaries());
        let mut results: Vec<PartitionOutcome> = Vec::with_capacity(part.parts());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(part.parts());
            for ((p, shard), cache) in shards.into_iter().enumerate().zip(&mut self.worker_caches) {
                let range = part.range(p);
                handles.push(scope.spawn(move || {
                    judge_partition(range, shard, cache, frozen, exchange, cfg, tracing, mon)
                }));
            }
            for h in handles {
                results.push(h.join().expect("judgment worker panicked"));
            }
        });
        if self.unordered_reduction {
            // Sabotage (see `set_unordered_reduction`): a reversed merge is
            // what a racy unordered reduction would produce.
            results.reverse();
        }
        for out in results {
            for d in out.deferred {
                match d {
                    Deferred::Missing { suspect } => {
                        // Own-counters-only judgment: stamps without paying
                        // (the group is {observer}, no messages).
                        self.exchanged_stamp[suspect as usize] = obs.tick;
                    }
                    Deferred::Shared { suspect, age, k, fresh, refused } => {
                        obs.note_snapshot_age(age);
                        if self.exchanged_stamp[suspect as usize] != obs.tick {
                            self.exchanged_stamp[suspect as usize] = obs.tick;
                            actions.control_msgs += k * k.saturating_sub(1);
                        }
                        obs.note_report_outcomes(ReportOutcome::Fresh, fresh);
                        obs.note_report_outcomes(ReportOutcome::Refused, refused);
                    }
                }
            }
            actions.cuts.extend(out.actions.cuts);
            actions.reconnects.extend(out.actions.reconnects);
            actions.transitions.extend(out.actions.transitions);
            actions.control_msgs += out.actions.control_msgs;
            if let Some(t) = self.trace.as_mut() {
                t.extend(out.trace);
            }
        }
    }
}

/// A fast-path side effect on suspect-keyed shared state, recorded by a
/// worker in its partition's serial order and replayed on the reducing
/// thread. The replay point is the only place `exchanged_stamp` and the
/// order-sensitive engine metrics are touched during a parallel tick, so
/// "first observer pays the suspect's `k(k-1)` charge" resolves exactly as
/// the serial loop would.
enum Deferred {
    /// A missing-snapshot judgment past its grace streak stamped the suspect.
    Missing { suspect: u32 },
    /// A shared-snapshot judgment: feed the snapshot-age quantile, charge
    /// `k(k-1)` if this is the suspect's first exchange this tick, and add
    /// the bulk report-outcome tallies.
    Shared { suspect: u32, age: Tick, k: u64, fresh: u64, refused: u64 },
}

/// Everything one worker produced: partition-local actions and traces (in
/// that partition's serial order) plus the deferred shared-state events.
struct PartitionOutcome {
    actions: Actions,
    trace: Vec<JudgmentTrace>,
    deferred: Vec<Deferred>,
}

/// Judge one contiguous observer range on a worker thread. Mirrors the fast
/// path of the serial loop in [`DdPolice::on_tick`] statement for statement;
/// the only divergences are mechanical: verdict access goes through the
/// partition's [`VerdictShard`], the suspect cache is worker-local (same
/// values — entries are pure functions of `(suspect, announcement tick)` on
/// the frozen tick), and suspect-keyed effects become [`Deferred`] events.
/// The monitor view is read-only and tick-frozen, so sketch reads need no
/// shard-locality treatment: every worker sees the identical sketch.
#[allow(clippy::too_many_arguments)]
fn judge_partition(
    range: Range<usize>,
    mut shard: VerdictShard<'_>,
    cache: &mut HashMap<u32, SuspectTickCache>,
    obs: FrozenTick<'_>,
    exchange: &ExchangeState,
    cfg: &DdPoliceConfig,
    tracing: bool,
    mon: Mon<'_>,
) -> PartitionOutcome {
    let mut out =
        PartitionOutcome { actions: Actions::default(), trace: Vec::new(), deferred: Vec::new() };
    let record = |out: &mut PartitionOutcome, observer, suspect, g, s| {
        if tracing {
            out.trace.push(JudgmentTrace { tick: obs.tick, observer, suspect, g, s });
        }
    };
    for i in range {
        if !obs.runs_defense[i] {
            continue;
        }
        let observer = NodeId::from_index(i);
        if cfg.suspect_ttl_ticks != u32::MAX {
            shard.expire_stale(observer, obs.tick, cfg.suspect_ttl_ticks, obs.online);
        }
        if cfg.readmission.enabled {
            shard.expire_probations(observer, obs.tick, &mut out.actions);
            let before = out.actions.reconnects.len();
            shard.fire_probes(observer, obs.tick, cfg.readmission, &mut out.actions);
            out.actions.control_msgs += (out.actions.reconnects.len() - before) as u64;
        }
        let neigh = obs.overlay.neighbors(observer);
        for (slot, &half) in neigh.iter().enumerate() {
            let suspect = half.peer;
            let q_ji = mon.flow(&obs, suspect, half.ridx as usize, observer);
            if q_ji <= cfg.warning_threshold_qpm {
                shard.below_warning(observer, suspect);
                continue;
            }
            let own = TrafficReport {
                sent_to_suspect: mon.flow(&obs, observer, slot, suspect),
                received_from_suspect: q_ji,
            };
            let Some(snap) = exchange.snapshot(observer, suspect) else {
                let streak = shard.note_list_missing(observer, suspect);
                if streak < cfg.missing_list_grace {
                    continue;
                }
                out.deferred.push(Deferred::Missing { suspect: suspect.0 });
                let g = general_indicator(
                    own.received_from_suspect as f64,
                    own.sent_to_suspect as f64,
                    1,
                    cfg.q_qpm,
                );
                let s = single_indicator(q_ji as f64, 0.0, cfg.q_qpm);
                record(&mut out, observer, suspect, g, s);
                if shard.judged(
                    observer,
                    suspect,
                    is_bad(g, s, cfg.cut_threshold),
                    obs.tick,
                    cfg.hysteresis,
                    cfg.readmission,
                    &mut out.actions,
                ) {
                    out.actions.cut(observer, suspect);
                }
                continue;
            };
            let age = obs.tick.saturating_sub(snap.taken_at);
            shard.note_list_ok(observer, suspect);
            let entry = cache.entry(suspect.0).or_default();
            if entry.stamp != obs.tick || entry.taken_at != snap.taken_at {
                entry.stamp = obs.tick;
                entry.taken_at = snap.taken_at;
                verified_members_into(
                    suspect,
                    &snap.members,
                    &obs,
                    cfg.radius,
                    cfg.verify_lists,
                    &mut entry.members,
                );
                entry.answers.clear();
                entry.sum_out = 0.0;
                entry.sum_in = 0.0;
                entry.n_answered = 0;
                entry.n_refused = 0;
                for &m in &entry.members {
                    let answer = mon.answer(&obs, m, suspect);
                    match answer {
                        Some(r) => {
                            entry.n_answered += 1;
                            entry.sum_out += r.received_from_suspect as f64;
                            entry.sum_in += r.sent_to_suspect as f64;
                        }
                        None => entry.n_refused += 1,
                    }
                    entry.answers.push(answer);
                }
            }
            let own_slot = entry.members.iter().position(|&m| m == observer);
            let in_group = own_slot.is_some();
            let k = entry.members.len() + usize::from(!in_group);
            let mut sum_out = own.received_from_suspect as f64 + entry.sum_out;
            let mut sum_in = own.sent_to_suspect as f64 + entry.sum_in;
            let mut fresh = entry.n_answered as u64;
            let mut refused = entry.n_refused as u64;
            if let Some(own_idx) = own_slot {
                match entry.answers[own_idx] {
                    Some(r) => {
                        fresh -= 1;
                        sum_out -= r.received_from_suspect as f64;
                        sum_in -= r.sent_to_suspect as f64;
                    }
                    None => refused -= 1,
                }
            }
            out.deferred.push(Deferred::Shared {
                suspect: suspect.0,
                age,
                k: k as u64,
                fresh,
                refused,
            });
            let g = general_indicator(sum_out, sum_in, k, cfg.q_qpm);
            let s = single_indicator(q_ji as f64, sum_in - own.sent_to_suspect as f64, cfg.q_qpm);
            record(&mut out, observer, suspect, g, s);
            if shard.judged(
                observer,
                suspect,
                is_bad(g, s, cfg.cut_threshold),
                obs.tick,
                cfg.hysteresis,
                cfg.readmission,
                &mut out.actions,
            ) {
                out.actions.cut(observer, suspect);
            }
        }
    }
    out
}

impl Defense for DdPolice {
    fn name(&self) -> &'static str {
        "dd-police"
    }

    fn monitor_backend(&self) -> Option<String> {
        // `None` under the exact default keeps summaries byte-identical to
        // pre-backend runs (the frozen differential digests depend on it).
        match self.cfg.monitor {
            MonitorBackend::Exact => None,
            MonitorBackend::Sketch(_) => Some(self.cfg.monitor.label()),
        }
    }

    fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
        actions.control_msgs +=
            self.exchange.on_tick_with_threads(self.cfg.exchange, obs, self.threads);

        // Sketch backend: replay the frozen counters into this tick's window
        // before any judgment (serial or parallel) reads an estimate.
        self.sketch_ingest(obs);
        // Taken out so the judgment loops can hold a read view of it while
        // mutating the rest of `self`; restored at every return point.
        let monitor = self.monitor.take();
        let mon = match &monitor {
            Some(m) => Mon::Sketch(m),
            None => Mon::Exact,
        };

        let n = obs.overlay.node_count();
        if self.exchanged_stamp.len() < n {
            self.exchanged_stamp.resize(n, 0);
        }
        // Counters are frozen for the whole tick, so reporter answers cached
        // by the previous observer stay valid for the next one.
        let mut memo = std::mem::take(&mut self.report_memo);
        memo.clear();
        let mut cache = std::mem::take(&mut self.suspect_cache);
        if cache.len() < n {
            cache.resize(n, SuspectTickCache::default());
        }
        // The shared-judgment fast path is exact only when every observer of
        // a suspect computes the same per-member terms: reliable transport
        // (no per-observer fault dice), plain summation (integer-valued f64
        // sums are order-independent below 2^53), and no per-link clamping.
        let fast = self.force_fast_path
            || (self.cfg.aggregation == AggregationPolicy::Sum
                && !self.cfg.clamp_reports_to_link
                && obs.faults.is_none_or(|f| f.config().is_inert()));
        // The slow path stays serial at any width: its per-observer fault
        // dice and retry loops are inherently order-coupled.
        self.verdicts.ensure_slots(n);
        if fast && self.threads > 1 && n > 1 && self.verdicts.slot_count() == n {
            self.parallel_fast_tick(obs, mon, actions);
            self.report_memo = memo;
            self.suspect_cache = cache;
            self.monitor = monitor;
            return;
        }
        for i in 0..n {
            if !obs.runs_defense[i] {
                continue;
            }
            let observer = NodeId::from_index(i);
            if self.cfg.suspect_ttl_ticks != u32::MAX {
                // Sweep before the lifecycle clocks: a probe about a suspect
                // that already left must be collected, not fired into a dead
                // slot (the recycled identity would inherit the probation).
                self.verdicts.expire_stale(
                    observer,
                    obs.tick,
                    self.cfg.suspect_ttl_ticks,
                    obs.online,
                );
            }
            if self.cfg.readmission.enabled {
                // Lifecycle clocks first: probations that survived their
                // window readmit; quarantines whose backoff matured re-dial
                // (one control message per probe) and enter probation.
                self.verdicts.expire_probations(observer, obs.tick, actions);
                let before = actions.reconnects.len();
                self.verdicts.fire_probes(observer, obs.tick, self.cfg.readmission, actions);
                actions.control_msgs += (actions.reconnects.len() - before) as u64;
            }
            // One adjacency fetch per observer; the slot loop below never
            // mutates the overlay.
            let neigh = obs.overlay.neighbors(observer);
            for (slot, &half) in neigh.iter().enumerate() {
                let suspect = half.peer;
                // In_query(suspect) read through the reciprocal index
                // (receiver-side, duplicate-filtered) — or the sketch
                // estimate of the same directed edge.
                let q_ji = mon.flow(&obs.frozen(), suspect, half.ridx as usize, observer);
                if q_ji <= self.cfg.warning_threshold_qpm {
                    self.verdicts.below_warning(observer, suspect);
                    continue;
                }
                if fast {
                    // Own counters via the slots already in hand (identical
                    // to `obs.own_counters`, minus its two adjacency scans).
                    let own = TrafficReport {
                        sent_to_suspect: mon.flow(&obs.frozen(), observer, slot, suspect),
                        received_from_suspect: q_ji,
                    };
                    let Some(snap) = self.exchange.snapshot(observer, suspect) else {
                        let streak = self.verdicts.note_list_missing(observer, suspect);
                        if streak < self.cfg.missing_list_grace {
                            continue; // wait for the first exchange
                        }
                        // Own-counters-only judgment of a silent suspect:
                        // the group is {observer}, no messages, k = 1.
                        self.exchanged_stamp[suspect.index()] = obs.tick;
                        let g = general_indicator(
                            own.received_from_suspect as f64,
                            own.sent_to_suspect as f64,
                            1,
                            self.cfg.q_qpm,
                        );
                        let s = single_indicator(q_ji as f64, 0.0, self.cfg.q_qpm);
                        self.record_trace(obs.tick, observer, suspect, g, s);
                        if self.verdicts.judged(
                            observer,
                            suspect,
                            is_bad(g, s, self.cfg.cut_threshold),
                            obs.tick,
                            self.cfg.hysteresis,
                            self.cfg.readmission,
                            actions,
                        ) {
                            actions.cut(observer, suspect);
                        }
                        continue;
                    };
                    obs.note_snapshot_age(obs.tick.saturating_sub(snap.taken_at));
                    self.verdicts.note_list_ok(observer, suspect);
                    let entry = &mut cache[suspect.index()];
                    if entry.stamp != obs.tick || entry.taken_at != snap.taken_at {
                        entry.stamp = obs.tick;
                        entry.taken_at = snap.taken_at;
                        verified_members_into(
                            suspect,
                            &snap.members,
                            &obs.frozen(),
                            self.cfg.radius,
                            self.cfg.verify_lists,
                            &mut entry.members,
                        );
                        entry.answers.clear();
                        entry.sum_out = 0.0;
                        entry.sum_in = 0.0;
                        entry.n_answered = 0;
                        entry.n_refused = 0;
                        for &m in &entry.members {
                            let answer = mon.answer(&obs.frozen(), m, suspect);
                            match answer {
                                Some(r) => {
                                    entry.n_answered += 1;
                                    entry.sum_out += r.received_from_suspect as f64;
                                    entry.sum_in += r.sent_to_suspect as f64;
                                }
                                None => entry.n_refused += 1,
                            }
                            entry.answers.push(answer);
                        }
                    }
                    // Adjust the shared sums for this observer: it never
                    // messages itself — its ground-truth counters stand in
                    // for its own (by construction identical) report.
                    let own_slot = entry.members.iter().position(|&m| m == observer);
                    let in_group = own_slot.is_some();
                    let k = entry.members.len() + usize::from(!in_group);
                    if self.exchanged_stamp[suspect.index()] != obs.tick {
                        self.exchanged_stamp[suspect.index()] = obs.tick;
                        let ku = k as u64;
                        actions.control_msgs += ku * ku.saturating_sub(1);
                    }
                    let mut sum_out = own.received_from_suspect as f64 + entry.sum_out;
                    let mut sum_in = own.sent_to_suspect as f64 + entry.sum_in;
                    let mut fresh = entry.n_answered as u64;
                    let mut refused = entry.n_refused as u64;
                    if let Some(slot) = own_slot {
                        match entry.answers[slot] {
                            Some(r) => {
                                fresh -= 1;
                                sum_out -= r.received_from_suspect as f64;
                                sum_in -= r.sent_to_suspect as f64;
                            }
                            None => refused -= 1,
                        }
                    }
                    obs.note_report_outcomes(ReportOutcome::Fresh, fresh);
                    obs.note_report_outcomes(ReportOutcome::Refused, refused);
                    let g = general_indicator(sum_out, sum_in, k, self.cfg.q_qpm);
                    let s = single_indicator(
                        q_ji as f64,
                        sum_in - own.sent_to_suspect as f64,
                        self.cfg.q_qpm,
                    );
                    self.record_trace(obs.tick, observer, suspect, g, s);
                    if self.verdicts.judged(
                        observer,
                        suspect,
                        is_bad(g, s, self.cfg.cut_threshold),
                        obs.tick,
                        self.cfg.hysteresis,
                        self.cfg.readmission,
                        actions,
                    ) {
                        actions.cut(observer, suspect);
                    }
                    continue;
                }
                // Suspicious: assemble the Buddy Group.
                let group = match assemble(
                    observer,
                    suspect,
                    &self.exchange,
                    obs,
                    self.cfg.radius,
                    self.cfg.verify_lists,
                ) {
                    Some(bg) => {
                        self.verdicts.note_list_ok(observer, suspect);
                        bg
                    }
                    None => {
                        let streak = self.verdicts.note_list_missing(observer, suspect);
                        if streak < self.cfg.missing_list_grace {
                            continue; // wait for the first exchange
                        }
                        // The suspect never announced a list: judge it from
                        // the observer's own counters alone.
                        BuddyGroup { suspect, members: vec![observer] }
                    }
                };
                // Neighbor_Traffic exchange: k(k-1) messages, once per
                // suspect per tick across all its observers (suppression).
                if self.exchanged_stamp[suspect.index()] != obs.tick {
                    self.exchanged_stamp[suspect.index()] = obs.tick;
                    let k = group.k() as u64;
                    actions.control_msgs += k * k.saturating_sub(1);
                }
                // Own counters via the slots already in hand (identical to
                // `obs.own_counters`, minus its two adjacency scans).
                let own = TrafficReport {
                    sent_to_suspect: mon.flow(&obs.frozen(), observer, slot, suspect),
                    received_from_suspect: q_ji,
                };
                let (g, s, retry_msgs) =
                    self.judge(observer, &group, own, q_ji, obs, mon, &mut memo);
                actions.control_msgs += retry_msgs;
                self.record_trace(obs.tick, observer, suspect, g, s);
                let over_ct = is_bad(g, s, self.cfg.cut_threshold);
                if self.verdicts.judged(
                    observer,
                    suspect,
                    over_ct,
                    obs.tick,
                    self.cfg.hysteresis,
                    self.cfg.readmission,
                    actions,
                ) {
                    actions.cut(observer, suspect);
                }
            }
        }
        self.report_memo = memo;
        self.suspect_cache = cache;
        self.monitor = monitor;
    }

    fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    fn on_peer_reset(&mut self, node: NodeId) {
        self.exchange.reset_peer(node);
        self.verdicts.reset_observer(node);
        // A crashed-and-restarted peer's counters restarted from zero: its
        // heavy-hitter history (and sustained-rate bucket) must too.
        if let Some(m) = self.monitor.as_mut() {
            m.forget_sender(node.0);
        }
    }

    fn on_peer_departed(&mut self, node: NodeId) {
        // The identity is gone for good (leave/crash, not a defensive cut):
        // both what the slot knew and what everyone knew *about* it must die
        // before the slot is recycled, or the next occupant inherits a
        // stranger's snapshots, grace streaks, and quarantine clocks — or,
        // under the sketch backend, a stranger's heavy-hitter count.
        self.exchange.reset_peer(node);
        self.exchange.forget_about(node);
        self.verdicts.reset_observer(node);
        self.verdicts.forget_suspect(node);
        if let Some(m) = self.monitor.as_mut() {
            m.forget_sender(node.0);
        }
    }

    fn on_nodes_grown(&mut self, n: usize) {
        self.exchange.ensure_slots(n);
        self.verdicts.ensure_slots(n);
        if self.exchanged_stamp.len() < n {
            self.exchanged_stamp.resize(n, 0);
        }
        if self.suspect_cache.len() < n {
            self.suspect_cache.resize(n, SuspectTickCache::default());
        }
    }

    fn forbids_link(&self, u: NodeId, v: NodeId) -> bool {
        // Bootstrap rewiring must honor open quarantines/probations in both
        // directions — otherwise churn's self-healing immediately re-links
        // exactly the edges the defense just severed.
        self.verdicts.blocks_link(u, v) || self.verdicts.blocks_link(v, u)
    }

    fn on_edge_added(&mut self, _u: NodeId, _v: NodeId, deg_u: usize, deg_v: usize) {
        // Event-driven cost accounting uses the endpoints' *actual* degrees:
        // each endpoint re-announces its list to that many neighbors.
        self.exchange.on_adjacency_event(self.cfg.exchange, deg_u, deg_v);
    }

    fn on_edge_removed(&mut self, u: NodeId, v: NodeId, deg_u: usize, deg_v: usize) {
        self.exchange.on_adjacency_event(self.cfg.exchange, deg_u, deg_v);
        self.exchange.forget_edge(u, v);
        // Watching/Probation state dies with the edge; a quarantine survives
        // its own cut (it owns the readmission clock).
        self.verdicts.forget_edge(u, v);
    }

    fn snapshot_support(&self) -> bool {
        true
    }

    fn save_state(&self, enc: &mut ddp_snapshot::Enc) {
        // The engine's context fingerprint covers `SimConfig` and the master
        // seed but knows nothing about the defense's own knobs: embed a
        // digest so resuming under a different `DdPoliceConfig` is refused
        // instead of silently diverging.
        enc.u64(ddp_snapshot::fnv1a64(format!("{:?}", self.cfg).as_bytes()));
        self.exchange.save_state(enc);
        self.verdicts.save_state(enc);
        enc.put(&self.exchanged_stamp);
        enc.bool(self.force_fast_path);
        enc.bool(self.trace.is_some());
        // The config digest above pins `cfg.monitor`, so writer and reader
        // agree on whether this section exists and on its exact geometry.
        if let Some(m) = &self.monitor {
            ddp_snapshot::Snapshottable::save(m, enc);
        }
        // Deliberately absent: `report_memo` and `suspect_cache` are per-tick
        // memos rebuilt from scratch at the top of `on_tick` (stamp != tick),
        // `trace` contents are drained each tick by the harness — at a tick
        // boundary both are empty/stale by construction — and `sketch_stats`
        // is diagnostics that never feeds back into detection.
    }

    fn restore_state(
        &mut self,
        dec: &mut ddp_snapshot::Dec<'_>,
    ) -> Result<(), ddp_snapshot::SnapshotError> {
        let expected = ddp_snapshot::fnv1a64(format!("{:?}", self.cfg).as_bytes());
        let found = dec.u64()?;
        if found != expected {
            return Err(ddp_snapshot::SnapshotError::ContextMismatch { expected, found });
        }
        self.exchange = ExchangeState::load_state(dec)?;
        self.verdicts = VerdictMachine::load_state(dec)?;
        self.exchanged_stamp = dec.get()?;
        self.force_fast_path = dec.bool()?;
        let tracing = dec.bool()?;
        self.trace = if tracing { Some(Vec::new()) } else { None };
        if let Some(m) = self.monitor.as_mut() {
            m.restore_into(dec)?;
        }
        let n = self.exchange.len().max(self.exchanged_stamp.len());
        self.report_memo = HashMap::new();
        self.suspect_cache = vec![SuspectTickCache::default(); n];
        // Per-tick memos from the pre-restore timeline would carry stamps
        // that can collide with the resumed tick counter: drop them.
        self.worker_caches.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddp_sim::{ReportBehavior, SimConfig, Simulation};
    use ddp_topology::{TopologyConfig, TopologyModel};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            topology: TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } },
            churn: false,
            ..SimConfig::default()
        }
    }

    fn run_with_attackers(
        n: usize,
        attackers: &[u32],
        behavior: ReportBehavior,
        police_cfg: DdPoliceConfig,
        ticks: usize,
        seed: u64,
    ) -> ddp_sim::RunResult {
        let police = DdPolice::new(police_cfg, n);
        let mut sim = Simulation::new(cfg(n), police, seed);
        for &a in attackers {
            sim.make_attacker(NodeId(a), behavior);
        }
        sim.run(ticks)
    }

    #[test]
    fn attackers_are_cut_quickly() {
        let res = run_with_attackers(
            300,
            &[5, 77, 123],
            ReportBehavior::Honest,
            DdPoliceConfig::default(),
            8,
            42,
        );
        assert!(res.summary.attackers_cut > 0, "attackers must be disconnected");
        // All three were caught before the run ended.
        assert_eq!(
            res.summary.errors.false_positive, 0,
            "no attacker should survive: {:?}",
            res.summary.errors
        );
    }

    #[test]
    fn innocent_forwarders_are_mostly_spared() {
        let res = run_with_attackers(
            300,
            &[5, 77, 123],
            ReportBehavior::Honest,
            DdPoliceConfig::default(),
            8,
            42,
        );
        // Good peers forward enormous attack volumes; the Buddy Group
        // reports must exonerate (nearly) all of them.
        assert!(
            res.summary.errors.false_negative <= 3,
            "too many good peers cut: {:?}",
            res.summary.errors
        );
    }

    #[test]
    fn defense_restores_success_rate() {
        let no_def = {
            let mut sim = Simulation::new(cfg(300), ddp_sim::NoDefense, 9);
            for a in [5u32, 50, 100, 150, 200] {
                sim.make_attacker(NodeId(a), ReportBehavior::Honest);
            }
            sim.run(12)
        };
        let defended = run_with_attackers(
            300,
            &[5, 50, 100, 150, 200],
            ReportBehavior::Honest,
            DdPoliceConfig::default(),
            12,
            9,
        );
        assert!(
            defended.summary.success_rate_stable > no_def.summary.success_rate_stable + 0.1,
            "DD-POLICE should restore success: defended {} vs undefended {}",
            defended.summary.success_rate_stable,
            no_def.summary.success_rate_stable
        );
    }

    #[test]
    fn silent_attackers_are_still_caught() {
        let res = run_with_attackers(
            300,
            &[5, 77],
            ReportBehavior::Silent,
            DdPoliceConfig::default(),
            10,
            7,
        );
        assert!(res.summary.attackers_cut > 0, "silence must not shield the attacker");
        assert_eq!(res.summary.errors.false_positive, 0);
    }

    #[test]
    fn deflating_attackers_are_still_caught() {
        let res = run_with_attackers(
            300,
            &[5, 77],
            ReportBehavior::Deflate(0.02),
            DdPoliceConfig::default(),
            10,
            7,
        );
        assert!(res.summary.attackers_cut > 0);
        assert_eq!(res.summary.errors.false_positive, 0);
    }

    #[test]
    fn huge_cut_threshold_misses_attackers_slower() {
        let strict = run_with_attackers(
            200,
            &[5],
            ReportBehavior::Honest,
            DdPoliceConfig::with_cut_threshold(3.0),
            6,
            13,
        );
        let lax = run_with_attackers(
            200,
            &[5],
            ReportBehavior::Honest,
            DdPoliceConfig::with_cut_threshold(100_000.0),
            6,
            13,
        );
        assert!(strict.summary.attackers_cut >= lax.summary.attackers_cut);
    }

    #[test]
    fn control_overhead_is_accounted() {
        let res =
            run_with_attackers(200, &[5], ReportBehavior::Honest, DdPoliceConfig::default(), 6, 21);
        assert!(
            res.summary.control_per_tick > 0.0,
            "list exchange + Neighbor_Traffic must appear as control traffic"
        );
    }

    #[test]
    fn defense_name_is_stable() {
        let p = DdPolice::new(DdPoliceConfig::default(), 10);
        assert_eq!(p.name(), "dd-police");
    }

    /// Police config exercising every piece of live verdict state: hysteresis
    /// histories, quarantine/probation clocks, and the TTL sweep.
    fn lifecycle_cfg() -> DdPoliceConfig {
        DdPoliceConfig {
            hysteresis: crate::verdict::Hysteresis { required: 2, window: 3 },
            readmission: crate::verdict::ReadmissionPolicy {
                enabled: true,
                base_backoff_ticks: 2,
                max_backoff_ticks: 16,
                probation_ticks: 2,
            },
            ..DdPoliceConfig::default()
        }
    }

    fn lifecycle_sim(n: usize, seed: u64) -> ddp_sim::Simulation<DdPolice> {
        let mut sim = Simulation::new(cfg(n), DdPolice::new(lifecycle_cfg(), n), seed);
        for a in [5u32, 77, 123] {
            sim.make_attacker(NodeId(a), ReportBehavior::Honest);
        }
        sim
    }

    #[test]
    fn dd_police_snapshot_resume_is_tick_for_tick_identical() {
        let mut reference = lifecycle_sim(200, 42);
        for _ in 0..12 {
            reference.step();
        }

        // Snapshot at tick 5: with a 2-tick backoff and 2-of-3 hysteresis the
        // machines hold Watching histories and live quarantine/probation
        // clocks mid-lifecycle right here.
        let mut writer = lifecycle_sim(200, 42);
        for _ in 0..5 {
            writer.step();
        }
        let bytes = writer.save_snapshot().unwrap();
        let mut resumed = lifecycle_sim(200, 42);
        resumed.restore_snapshot(&bytes).unwrap();

        // Internal defense state must round-trip exactly, compared through
        // the canonical enumerations.
        let (a, b) = (writer.defense(), resumed.defense());
        assert_eq!(a.exchange().all_snapshots(), b.exchange().all_snapshots());
        for i in 0..200 {
            assert_eq!(a.verdicts().entries_of(NodeId(i)), b.verdicts().entries_of(NodeId(i)));
        }

        for _ in 0..7 {
            resumed.step();
        }
        let a = reference.finish();
        let b = resumed.finish();
        assert_eq!(a.series, b.series);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.cut_log, b.cut_log);
    }

    #[test]
    fn parallel_fast_path_is_tick_for_tick_identical_to_serial() {
        // Full lifecycle config (hysteresis + readmission + TTL default) so
        // probes, probations, and cuts all cross the reduction. Compare the
        // per-tick state hash, the drained judgment traces, and the final
        // results at several worker widths against the serial run.
        let serial = {
            let mut sim = lifecycle_sim(200, 42);
            sim.defense_mut().set_tracing(true);
            sim.enable_hash_trace();
            let mut traces = Vec::new();
            for _ in 0..12 {
                sim.step();
                traces.push(sim.defense_mut().take_trace());
            }
            (sim.hash_trace().to_vec(), traces, sim.finish())
        };
        for threads in [2usize, 3, 8] {
            let mut sim = lifecycle_sim(200, 42);
            sim.defense_mut().set_tracing(true);
            sim.enable_hash_trace();
            sim.set_threads(threads);
            let mut traces = Vec::new();
            for _ in 0..12 {
                sim.step();
                traces.push(sim.defense_mut().take_trace());
            }
            assert_eq!(serial.0, sim.hash_trace(), "state hash diverged at threads={threads}");
            assert_eq!(serial.1, traces, "judgment trace diverged at threads={threads}");
            let res = sim.finish();
            assert_eq!(serial.2.series, res.series, "series diverged at threads={threads}");
            assert_eq!(serial.2.summary, res.summary);
            assert_eq!(serial.2.cut_log, res.cut_log);
        }
    }

    #[test]
    fn unordered_reduction_sabotage_diverges_from_serial() {
        // The mutation lever must plant a detectable bug: with the reduction
        // reversed, at least one tick's state hash must differ from serial.
        let serial = {
            let mut sim = lifecycle_sim(200, 42);
            sim.enable_hash_trace();
            for _ in 0..12 {
                sim.step();
            }
            sim.hash_trace().to_vec()
        };
        let mut sim = lifecycle_sim(200, 42);
        sim.enable_hash_trace();
        sim.set_threads(4);
        sim.defense_mut().set_unordered_reduction(true);
        for _ in 0..12 {
            sim.step();
        }
        assert_ne!(serial, sim.hash_trace(), "reversed reduction must be observable");
    }

    #[test]
    fn dd_police_snapshot_rejects_changed_police_config() {
        let mut writer = lifecycle_sim(200, 42);
        writer.step();
        let bytes = writer.save_snapshot().unwrap();
        // Same SimConfig and seed, different DdPoliceConfig: the defense's
        // embedded config digest must refuse the restore.
        let mut other = Simulation::new(
            cfg(200),
            DdPolice::new(DdPoliceConfig::with_cut_threshold(9.0), 200),
            42,
        );
        for a in [5u32, 77, 123] {
            other.make_attacker(NodeId(a), ReportBehavior::Honest);
        }
        match other.restore_snapshot(&bytes) {
            Err(ddp_snapshot::SnapshotError::ContextMismatch { .. }) => {}
            other => panic!("expected ContextMismatch, got {other:?}"),
        }
    }
}
