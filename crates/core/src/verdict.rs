//! The suspicion state machine and collusion-resistant report aggregation.
//!
//! The paper's verdict is single-shot: one over-`CT` window severs the link
//! forever, and the Buddy-Group sums trust every report (missing ones are
//! assumed zero, §3.4). PR 2 hardens both decisions while keeping the
//! paper's behavior as the bit-identical default:
//!
//! * **Hysteresis** — a cut requires the indicator over `CT` in `W`-of-`K`
//!   consecutive suspicious windows ([`Hysteresis`], default `1`-of-`1` =
//!   the paper). A below-warning window breaks the chain.
//! * **Quarantine / probation** — a cut peer may be re-dialed after an
//!   exponential backoff and watched on probation; a probationary
//!   re-offense re-cuts immediately (no hysteresis) and doubles the
//!   backoff ([`ReadmissionPolicy`], disabled by default — the paper's cut
//!   is permanent).
//! * **Robust aggregation** — the General-Indicator numerator
//!   `Σ_m Q_{j→m}` can be replaced by `k ×` the coordinate's median or
//!   trimmed mean across the `k` member claims ([`AggregationPolicy`]),
//!   bounding what a colluding minority of the Buddy Group can add or hide.
//!
//! ### Why aggregation is asymmetric (a reproduction finding)
//!
//! Robust centering applies **only** to the out-of-suspect coordinate
//! (`Q_{j→m}`, what members claim to have *received from* the suspect).
//! That is the framing lever: each colluder can inflate its own claim
//! without bound, and honest flood forwarding spreads output roughly
//! uniformly across links, so a median/trimmed center is meaningful there.
//! The into-suspect coordinate (`Q_{m→j}`) stays a plain
//! sum-with-assume-zero: duplicate suppression concentrates a forwarder's
//! *accepted input* on one or two links, so a median of the into-claims is
//! ≈ 0 for perfectly innocent forwarders and `k × median` would destroy
//! the exoneration arithmetic (`g ≈ Q_in/q > CT`) with zero colluders
//! present. Deflating the into-coordinate is the paper's own accepted
//! Case-2/Silent residual and no aggregation rule can fix it.

use ddp_metrics::{PeerVerdict, VerdictTransition};
use ddp_sim::{Actions, Tick, TrafficReport};
use ddp_topology::NodeId;
use std::collections::HashMap;

use crate::police::group_traffic_sums;

/// How an observer combines the Buddy Group's traffic claims.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AggregationPolicy {
    /// The paper's rule: sum every claim, assume zero for missing reports.
    #[default]
    Sum,
    /// Robust center: `k ×` the trimmed mean of the `k` out-of-suspect
    /// claims (drop `⌊trim·k⌋` from each end). Into-suspect claims stay
    /// summed (see module docs).
    TrimmedMean {
        /// Fraction trimmed from each tail, `0.0..0.5`.
        trim: f64,
    },
    /// Robust center: `k ×` the coordinate-wise median of the `k`
    /// out-of-suspect claims. Into-suspect claims stay summed.
    Median,
}

/// W-of-K confirmation windows before a cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hysteresis {
    /// Windows over `CT` required within the last `window` suspicious
    /// windows (clamped to `window` at use).
    pub required: u8,
    /// Size of the sliding window of consecutive suspicious windows, `1..=8`.
    pub window: u8,
}

impl Default for Hysteresis {
    fn default() -> Self {
        // The paper: one over-CT window cuts.
        Hysteresis { required: 1, window: 1 }
    }
}

impl Hysteresis {
    /// Effective (required, window) after clamping to the `1..=8` bitmask.
    fn effective(self) -> (u32, u32) {
        let window = u32::from(self.window.clamp(1, 8));
        let required = u32::from(self.required.max(1)).min(window);
        (required, window)
    }
}

/// Quarantine / probation lifecycle after a cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadmissionPolicy {
    /// Whether cut peers are ever probed for readmission. Off by default:
    /// the paper's disconnect is permanent.
    pub enabled: bool,
    /// Quarantine length after the first cut, ticks.
    pub base_backoff_ticks: u32,
    /// Backoff cap; each probationary re-cut doubles the backoff up to this.
    pub max_backoff_ticks: u32,
    /// How long a re-dialed peer stays on probation (re-offense within this
    /// window re-cuts without hysteresis) before being fully readmitted.
    pub probation_ticks: u32,
}

impl Default for ReadmissionPolicy {
    fn default() -> Self {
        ReadmissionPolicy {
            enabled: false,
            base_backoff_ticks: 4,
            max_backoff_ticks: 64,
            probation_ticks: 3,
        }
    }
}

/// Combine the Buddy Group's claims about the suspect under `policy`.
/// Returns `(Σ_m Q_{j→m}, Σ_m Q_{m→j})` — the General-Indicator numerator
/// pair, exactly as [`group_traffic_sums`] does for [`AggregationPolicy::Sum`]
/// (same f64s, bit for bit).
pub fn aggregate_group_traffic(
    own: TrafficReport,
    member_reports: &[Option<TrafficReport>],
    policy: AggregationPolicy,
) -> (f64, f64) {
    match policy {
        AggregationPolicy::Sum => group_traffic_sums(own, member_reports),
        AggregationPolicy::TrimmedMean { .. } | AggregationPolicy::Median => {
            // Into-suspect: always the paper's sum-with-assume-zero.
            let mut into_suspect = own.sent_to_suspect as f64;
            for r in member_reports.iter().flatten() {
                into_suspect += r.sent_to_suspect as f64;
            }
            // Out-of-suspect: robust center × k. A missing report is the
            // assume-zero claim, so silence still drags the center down,
            // never up.
            let mut claims: Vec<f64> = Vec::with_capacity(member_reports.len() + 1);
            claims.push(own.received_from_suspect as f64);
            for r in member_reports {
                claims.push(r.map_or(0.0, |r| r.received_from_suspect as f64));
            }
            claims.sort_by(|a, b| a.partial_cmp(b).expect("claims are finite"));
            let k = claims.len();
            let center = match policy {
                AggregationPolicy::Median => median_sorted(&claims),
                AggregationPolicy::TrimmedMean { trim } => trimmed_mean_sorted(&claims, trim),
                AggregationPolicy::Sum => unreachable!(),
            };
            (center * k as f64, into_suspect)
        }
    }
}

fn median_sorted(sorted: &[f64]) -> f64 {
    let k = sorted.len();
    if k == 0 {
        return 0.0;
    }
    if k % 2 == 1 {
        sorted[k / 2]
    } else {
        (sorted[k / 2 - 1] + sorted[k / 2]) / 2.0
    }
}

fn trimmed_mean_sorted(sorted: &[f64], trim: f64) -> f64 {
    let k = sorted.len();
    if k == 0 {
        return 0.0;
    }
    let drop = ((k as f64) * trim.clamp(0.0, 0.5)).floor() as usize;
    let kept = &sorted[drop.min(k / 2)..k - drop.min((k - 1) / 2)];
    if kept.is_empty() {
        // Over-trimmed: fall back to the median (the 50% limit point).
        return median_sorted(sorted);
    }
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// One observer's live suspicion state about one suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspectState {
    /// Over-warning but not cut: `history` is a bitmask of the last
    /// suspicious windows (bit 0 = newest; 1 = indicator over `CT`).
    Watching {
        /// Recent over-`CT` window bits.
        history: u8,
    },
    /// Cut and waiting out the backoff until `until`.
    Quarantined {
        /// Tick the readmission probe fires.
        until: Tick,
        /// Current backoff length (doubles on re-cut).
        backoff: u32,
    },
    /// Re-dialed and under zero-tolerance watch until `until`.
    Probation {
        /// Tick probation ends in full readmission.
        until: Tick,
        /// Backoff carried into a potential re-cut.
        backoff: u32,
    },
}

/// Per-suspect bookkeeping one observer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspectEntry {
    /// Lifecycle position.
    pub state: SuspectState,
    /// Consecutive suspicious ticks without a usable neighbor-list snapshot
    /// (the missing-list grace counter, unchanged from the pre-PR streaks).
    pub list_streak: u8,
}

impl SuspectEntry {
    fn fresh() -> Self {
        SuspectEntry { state: SuspectState::Watching { history: 0 }, list_streak: 0 }
    }
}

impl ddp_snapshot::Snapshottable for SuspectState {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        match *self {
            SuspectState::Watching { history } => {
                enc.u8(0);
                enc.u8(history);
            }
            SuspectState::Quarantined { until, backoff } => {
                enc.u8(1);
                enc.u32(until);
                enc.u32(backoff);
            }
            SuspectState::Probation { until, backoff } => {
                enc.u8(2);
                enc.u32(until);
                enc.u32(backoff);
            }
        }
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(match dec.u8()? {
            0 => SuspectState::Watching { history: dec.u8()? },
            1 => SuspectState::Quarantined { until: dec.u32()?, backoff: dec.u32()? },
            2 => SuspectState::Probation { until: dec.u32()?, backoff: dec.u32()? },
            _ => return Err(ddp_snapshot::SnapshotError::Corrupt { what: "suspect state tag" }),
        })
    }
}

impl ddp_snapshot::Snapshottable for SuspectEntry {
    fn save(&self, enc: &mut ddp_snapshot::Enc) {
        enc.put(&self.state);
        enc.u8(self.list_streak);
    }

    fn load(dec: &mut ddp_snapshot::Dec<'_>) -> Result<Self, ddp_snapshot::SnapshotError> {
        Ok(SuspectEntry { state: dec.get()?, list_streak: dec.u8()? })
    }
}

/// All observers' suspicion state machines.
#[derive(Debug)]
pub struct VerdictMachine {
    /// Per-observer: suspect id → entry.
    entries: Vec<HashMap<u32, SuspectEntry>>,
}

fn ledger_state(state: SuspectState) -> PeerVerdict {
    match state {
        SuspectState::Watching { history } => {
            if history == 0 {
                PeerVerdict::Normal
            } else {
                PeerVerdict::Suspicious
            }
        }
        SuspectState::Quarantined { .. } => PeerVerdict::Quarantined,
        SuspectState::Probation { .. } => PeerVerdict::Probation,
    }
}

impl VerdictMachine {
    /// State machines for `n` observer slots.
    pub fn new(n: usize) -> Self {
        VerdictMachine { entries: (0..n).map(|_| HashMap::new()).collect() }
    }

    /// The entry `observer` holds about `suspect`, if any (for tests).
    pub fn entry(&self, observer: NodeId, suspect: NodeId) -> Option<SuspectEntry> {
        self.entries[observer.index()].get(&suspect.0).copied()
    }

    /// Whether `observer` currently has `suspect` on probation.
    pub fn on_probation(&self, observer: NodeId, suspect: NodeId) -> bool {
        matches!(
            self.entries[observer.index()].get(&suspect.0),
            Some(SuspectEntry { state: SuspectState::Probation { .. }, .. })
        )
    }

    /// Fire matured readmission probes for `observer`: each quarantined
    /// suspect whose backoff elapsed is re-dialed (via `actions.reconnect`)
    /// and moves to probation. No-op while readmission is disabled.
    pub fn fire_probes(
        &mut self,
        observer: NodeId,
        tick: Tick,
        readmission: ReadmissionPolicy,
        actions: &mut Actions,
    ) {
        fire_probes_in(&mut self.entries[observer.index()], observer, tick, readmission, actions)
    }

    /// Expire probations that ended at or before `tick`: the suspect is
    /// fully readmitted and its suspicion state dropped.
    pub fn expire_probations(&mut self, observer: NodeId, tick: Tick, actions: &mut Actions) {
        expire_probations_in(&mut self.entries[observer.index()], observer, tick, actions)
    }

    /// The suspect dropped below the warning threshold from `observer`'s
    /// position: a Watching chain is broken (entry dropped); quarantine and
    /// probation are unaffected (they are clocked, not traffic-driven).
    pub fn below_warning(&mut self, observer: NodeId, suspect: NodeId) {
        below_warning_in(&mut self.entries[observer.index()], suspect)
    }

    /// Record a missing neighbor-list snapshot for an over-warning suspect
    /// and return the updated consecutive-miss streak.
    pub fn note_list_missing(&mut self, observer: NodeId, suspect: NodeId) -> u8 {
        note_list_missing_in(&mut self.entries[observer.index()], suspect)
    }

    /// A usable snapshot arrived: the miss streak resets.
    pub fn note_list_ok(&mut self, observer: NodeId, suspect: NodeId) {
        note_list_ok_in(&mut self.entries[observer.index()], suspect)
    }

    /// Feed one judged window (`over_ct` = indicator exceeded `CT`) into the
    /// machine and decide whether to cut now. Watching suspects follow the
    /// W-of-K hysteresis; probationary suspects re-cut on any over-`CT`
    /// window. On a cut the machine enters quarantine (kept only while
    /// readmission is enabled) and the `Cut`/`Quarantined` transitions are
    /// recorded.
    #[allow(clippy::too_many_arguments)]
    pub fn judged(
        &mut self,
        observer: NodeId,
        suspect: NodeId,
        over_ct: bool,
        tick: Tick,
        hysteresis: Hysteresis,
        readmission: ReadmissionPolicy,
        actions: &mut Actions,
    ) -> bool {
        judged_in(
            &mut self.entries[observer.index()],
            observer,
            suspect,
            over_ct,
            tick,
            hysteresis,
            readmission,
            actions,
        )
    }

    /// An overlay edge between `u` and `v` vanished (cut or churn): drop
    /// both directions' Watching/Probation state. Quarantine survives — it
    /// is the expected post-cut state and owns the readmission clock.
    pub fn forget_edge(&mut self, u: NodeId, v: NodeId) {
        for (a, b) in [(u, v), (v, u)] {
            if let Some(e) = self.entries[a.index()].get(&b.0) {
                if !matches!(e.state, SuspectState::Quarantined { .. }) {
                    self.entries[a.index()].remove(&b.0);
                }
            }
        }
    }

    /// `node` restarted or rejoined as a new peer: its own suspicion state
    /// is gone (matches the pre-PR streak wipe; other observers keep their
    /// verdicts about `node` — identity is positional in this simulator).
    pub fn reset_observer(&mut self, node: NodeId) {
        self.entries[node.index()].clear();
    }

    /// `suspect` departed the overlay for good (graceful leave, or its slot
    /// is about to be recycled): every observer drops whatever verdict it
    /// holds about that identity — including quarantine, since there is
    /// nobody left to probe and a future occupant of the address must not
    /// inherit the sentence.
    pub fn forget_suspect(&mut self, suspect: NodeId) {
        for map in &mut self.entries {
            if !map.is_empty() {
                map.remove(&suspect.0);
            }
        }
    }

    /// Grow to at least `n` observer slots (session-model node growth).
    pub fn ensure_slots(&mut self, n: usize) {
        if self.entries.len() < n {
            self.entries.resize_with(n, HashMap::new);
        }
    }

    /// Number of observer slots currently allocated — the value
    /// [`shards`](Self::shards) requires the final bound to equal.
    pub fn slot_count(&self) -> usize {
        self.entries.len()
    }

    /// Churn hardening: age out entries whose suspect can no longer be
    /// judged. A suspect that is offline (departed or crashed — `online` is
    /// the engine's ground truth for "the address stopped responding") is
    /// dropped from Watching immediately and from Quarantine/Probation once
    /// its clock is due: the probe or readmission it was waiting for can
    /// never happen. For *online* suspects, clocked states additionally
    /// expire once they sit `ttl` ticks past due — the leak backstop for
    /// probes that never fired (e.g. the observer stopped running defense).
    /// Returns how many entries were dropped.
    pub fn expire_stale(
        &mut self,
        observer: NodeId,
        tick: Tick,
        ttl: Tick,
        online: &[bool],
    ) -> usize {
        expire_stale_in(&mut self.entries[observer.index()], tick, ttl, online)
    }

    /// Split the machine into disjoint per-partition [`VerdictShard`]s along
    /// `bounds` (the partitioner's `boundaries()` layout: ascending, starting
    /// at 0 and ending at the observer count). Each shard owns the suspicion
    /// state of one contiguous observer range, so worker threads can judge
    /// their partitions concurrently while the borrow checker proves no two
    /// ever touch the same observer's entries.
    pub fn shards<'a>(&'a mut self, bounds: &[usize]) -> Vec<VerdictShard<'a>> {
        assert_eq!(bounds.first(), Some(&0), "bounds must start at 0");
        assert_eq!(bounds.last(), Some(&self.entries.len()), "bounds must end at observer count");
        let mut shards = Vec::with_capacity(bounds.len().saturating_sub(1));
        let mut rest: &mut [HashMap<u32, SuspectEntry>] = &mut self.entries;
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            shards.push(VerdictShard { base: w[0], entries: head });
            rest = tail;
        }
        shards
    }

    /// Whether `observer` holds a live quarantine or probation verdict about
    /// `suspect` — the self-healing rewiring's veto predicate.
    pub fn blocks_link(&self, observer: NodeId, suspect: NodeId) -> bool {
        matches!(
            self.entries.get(observer.index()).and_then(|m| m.get(&suspect.0)),
            Some(SuspectEntry {
                state: SuspectState::Quarantined { .. } | SuspectState::Probation { .. },
                ..
            })
        )
    }

    /// Total live entries across all observers (bounded-memory diagnostics).
    pub fn total_entries(&self) -> usize {
        self.entries.iter().map(|m| m.len()).sum()
    }

    /// How many observers hold an entry about `suspect` (diagnostics).
    pub fn entries_about(&self, suspect: NodeId) -> usize {
        self.entries.iter().filter(|m| m.contains_key(&suspect.0)).count()
    }

    /// Serialize every observer's entries, each map sorted by suspect id —
    /// the canonical order, since `HashMap` iteration order is never
    /// observable (every decision path sorts or does keyed lookups).
    pub fn save_state(&self, enc: &mut ddp_snapshot::Enc) {
        enc.usize(self.entries.len());
        for map in &self.entries {
            let mut sorted: Vec<(u32, SuspectEntry)> = map.iter().map(|(&s, &e)| (s, e)).collect();
            sorted.sort_unstable_by_key(|&(s, _)| s);
            enc.usize(sorted.len());
            for (s, e) in sorted {
                enc.u32(s);
                enc.put(&e);
            }
        }
    }

    /// Rebuild a verdict machine saved by [`VerdictMachine::save_state`].
    pub fn load_state(
        dec: &mut ddp_snapshot::Dec<'_>,
    ) -> Result<Self, ddp_snapshot::SnapshotError> {
        let n = dec.len("verdict observers")?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let k = dec.len("verdict entries")?;
            let mut map = HashMap::with_capacity(k);
            for _ in 0..k {
                let s = dec.u32()?;
                let e: SuspectEntry = dec.get()?;
                map.insert(s, e);
            }
            entries.push(map);
        }
        Ok(VerdictMachine { entries })
    }

    /// Every entry `observer` holds, sorted by suspect id — the canonical
    /// enumeration equivalence checks (differential harness) compare through,
    /// since `HashMap` iteration order is not observable.
    pub fn entries_of(&self, observer: NodeId) -> Vec<(u32, SuspectEntry)> {
        let mut out: Vec<(u32, SuspectEntry)> = self
            .entries
            .get(observer.index())
            .map(|m| m.iter().map(|(&s, &e)| (s, e)).collect())
            .unwrap_or_default();
        out.sort_unstable_by_key(|&(s, _)| s);
        out
    }
}

/// A disjoint slice of a [`VerdictMachine`]: the suspicion state of one
/// contiguous observer range `base..base + entries.len()`, carved out by
/// [`VerdictMachine::shards`]. Exposes exactly the per-observer operations
/// the judgment fast path needs; each delegates to the same free function
/// the whole-machine method uses, so a sharded run makes bit-identical
/// per-observer decisions to a serial one.
pub struct VerdictShard<'a> {
    base: usize,
    entries: &'a mut [HashMap<u32, SuspectEntry>],
}

impl VerdictShard<'_> {
    fn map_mut(&mut self, observer: NodeId) -> &mut HashMap<u32, SuspectEntry> {
        &mut self.entries[observer.index() - self.base]
    }

    /// [`VerdictMachine::fire_probes`] for an observer in this shard.
    pub fn fire_probes(
        &mut self,
        observer: NodeId,
        tick: Tick,
        readmission: ReadmissionPolicy,
        actions: &mut Actions,
    ) {
        fire_probes_in(self.map_mut(observer), observer, tick, readmission, actions)
    }

    /// [`VerdictMachine::expire_probations`] for an observer in this shard.
    pub fn expire_probations(&mut self, observer: NodeId, tick: Tick, actions: &mut Actions) {
        expire_probations_in(self.map_mut(observer), observer, tick, actions)
    }

    /// [`VerdictMachine::below_warning`] for an observer in this shard.
    pub fn below_warning(&mut self, observer: NodeId, suspect: NodeId) {
        below_warning_in(self.map_mut(observer), suspect)
    }

    /// [`VerdictMachine::note_list_missing`] for an observer in this shard.
    pub fn note_list_missing(&mut self, observer: NodeId, suspect: NodeId) -> u8 {
        note_list_missing_in(self.map_mut(observer), suspect)
    }

    /// [`VerdictMachine::note_list_ok`] for an observer in this shard.
    pub fn note_list_ok(&mut self, observer: NodeId, suspect: NodeId) {
        note_list_ok_in(self.map_mut(observer), suspect)
    }

    /// [`VerdictMachine::judged`] for an observer in this shard.
    #[allow(clippy::too_many_arguments)]
    pub fn judged(
        &mut self,
        observer: NodeId,
        suspect: NodeId,
        over_ct: bool,
        tick: Tick,
        hysteresis: Hysteresis,
        readmission: ReadmissionPolicy,
        actions: &mut Actions,
    ) -> bool {
        judged_in(
            self.map_mut(observer),
            observer,
            suspect,
            over_ct,
            tick,
            hysteresis,
            readmission,
            actions,
        )
    }

    /// [`VerdictMachine::expire_stale`] for an observer in this shard.
    pub fn expire_stale(
        &mut self,
        observer: NodeId,
        tick: Tick,
        ttl: Tick,
        online: &[bool],
    ) -> usize {
        expire_stale_in(self.map_mut(observer), tick, ttl, online)
    }
}

// The per-observer state-machine bodies. Every mutation path above — serial
// machine or parallel shard — funnels through these, so there is exactly one
// implementation of each decision to keep bit-identical.

fn fire_probes_in(
    map: &mut HashMap<u32, SuspectEntry>,
    observer: NodeId,
    tick: Tick,
    readmission: ReadmissionPolicy,
    actions: &mut Actions,
) {
    if !readmission.enabled {
        return;
    }
    // Deterministic probe order regardless of HashMap iteration.
    let mut due: Vec<u32> = map
        .iter()
        .filter_map(|(&s, e)| match e.state {
            SuspectState::Quarantined { until, .. } if tick >= until => Some(s),
            _ => None,
        })
        .collect();
    due.sort_unstable();
    for s in due {
        let entry = map.get_mut(&s).expect("just listed");
        let SuspectState::Quarantined { backoff, .. } = entry.state else { unreachable!() };
        entry.state = SuspectState::Probation {
            until: tick.saturating_add(readmission.probation_ticks),
            backoff,
        };
        let suspect = NodeId(s);
        actions.reconnect(observer, suspect);
        actions.transition(VerdictTransition {
            tick,
            observer: observer.0,
            suspect: s,
            from: PeerVerdict::Quarantined,
            to: PeerVerdict::Probation,
        });
    }
}

fn expire_probations_in(
    map: &mut HashMap<u32, SuspectEntry>,
    observer: NodeId,
    tick: Tick,
    actions: &mut Actions,
) {
    let mut done: Vec<u32> = map
        .iter()
        .filter_map(|(&s, e)| match e.state {
            SuspectState::Probation { until, .. } if tick >= until => Some(s),
            _ => None,
        })
        .collect();
    done.sort_unstable();
    for s in done {
        map.remove(&s);
        actions.transition(VerdictTransition {
            tick,
            observer: observer.0,
            suspect: s,
            from: PeerVerdict::Probation,
            to: PeerVerdict::Readmitted,
        });
    }
}

fn below_warning_in(map: &mut HashMap<u32, SuspectEntry>, suspect: NodeId) {
    // Hot path: this runs once per (observer, neighbor) per tick and
    // almost every observer tracks no suspects — skip the key hash.
    if map.is_empty() {
        return;
    }
    if let Some(e) = map.get(&suspect.0) {
        if matches!(e.state, SuspectState::Watching { .. }) {
            map.remove(&suspect.0);
        }
    }
}

fn note_list_missing_in(map: &mut HashMap<u32, SuspectEntry>, suspect: NodeId) -> u8 {
    let entry = map.entry(suspect.0).or_insert_with(SuspectEntry::fresh);
    entry.list_streak = entry.list_streak.saturating_add(1);
    entry.list_streak
}

fn note_list_ok_in(map: &mut HashMap<u32, SuspectEntry>, suspect: NodeId) {
    if let Some(e) = map.get_mut(&suspect.0) {
        e.list_streak = 0;
    }
}

#[allow(clippy::too_many_arguments)]
fn judged_in(
    map: &mut HashMap<u32, SuspectEntry>,
    observer: NodeId,
    suspect: NodeId,
    over_ct: bool,
    tick: Tick,
    hysteresis: Hysteresis,
    readmission: ReadmissionPolicy,
    actions: &mut Actions,
) -> bool {
    let entry = map.entry(suspect.0).or_insert_with(SuspectEntry::fresh);
    let (cut, from, next_backoff) = match entry.state {
        SuspectState::Watching { history } => {
            let (required, window) = hysteresis.effective();
            let mask = ((1u16 << window) - 1) as u8;
            let new_history = ((history << 1) | u8::from(over_ct)) & mask;
            let confirmed = new_history.count_ones() >= required;
            if confirmed {
                (true, ledger_state(SuspectState::Watching { history }), None)
            } else {
                entry.state = SuspectState::Watching { history: new_history };
                if new_history != 0 && history == 0 {
                    actions.transition(VerdictTransition {
                        tick,
                        observer: observer.0,
                        suspect: suspect.0,
                        from: PeerVerdict::Normal,
                        to: PeerVerdict::Suspicious,
                    });
                }
                if new_history == 0 && entry.list_streak == 0 {
                    // Nothing worth remembering: keep the footprint of
                    // the pre-PR protocol (no entry at all).
                    map.remove(&suspect.0);
                }
                (false, PeerVerdict::Normal, None)
            }
        }
        SuspectState::Probation { backoff, .. } => {
            if over_ct {
                // Zero tolerance: one bad window on probation re-cuts,
                // with a doubled backoff.
                (
                    true,
                    PeerVerdict::Probation,
                    Some(backoff.saturating_mul(2).min(readmission.max_backoff_ticks)),
                )
            } else {
                (false, PeerVerdict::Probation, None)
            }
        }
        // A quarantined suspect has no live edge to judge; a racing
        // same-tick judgment is ignored.
        SuspectState::Quarantined { .. } => (false, PeerVerdict::Quarantined, None),
    };
    if !cut {
        return false;
    }
    actions.transition(VerdictTransition {
        tick,
        observer: observer.0,
        suspect: suspect.0,
        from,
        to: PeerVerdict::Cut,
    });
    actions.transition(VerdictTransition {
        tick,
        observer: observer.0,
        suspect: suspect.0,
        from: PeerVerdict::Cut,
        to: PeerVerdict::Quarantined,
    });
    if readmission.enabled {
        let backoff = next_backoff.unwrap_or(readmission.base_backoff_ticks).max(1);
        let entry = map.entry(suspect.0).or_insert_with(SuspectEntry::fresh);
        // Saturating: near the end of a u32 tick space the probe simply
        // never fires (a wrapped deadline would fire immediately).
        entry.state = SuspectState::Quarantined { until: tick.saturating_add(backoff), backoff };
        entry.list_streak = 0;
    } else {
        // Permanent cut (the paper): nothing left to track.
        map.remove(&suspect.0);
    }
    true
}

fn expire_stale_in(
    map: &mut HashMap<u32, SuspectEntry>,
    tick: Tick,
    ttl: Tick,
    online: &[bool],
) -> usize {
    if map.is_empty() {
        return 0;
    }
    let before = map.len();
    map.retain(|&s, e| {
        let gone = !online.get(s as usize).copied().unwrap_or(false);
        match e.state {
            SuspectState::Watching { .. } => !gone,
            SuspectState::Quarantined { until, .. } | SuspectState::Probation { until, .. } => {
                if gone {
                    tick < until
                } else {
                    tick <= until.saturating_add(ttl)
                }
            }
        }
    });
    before - map.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sent: u32, recv: u32) -> TrafficReport {
        TrafficReport { sent_to_suspect: sent, received_from_suspect: recv }
    }

    #[test]
    fn sum_policy_is_bitwise_group_traffic_sums() {
        let own = report(3, 400);
        let members = vec![Some(report(10, 20)), None, Some(report(7, 900))];
        assert_eq!(
            aggregate_group_traffic(own, &members, AggregationPolicy::Sum),
            group_traffic_sums(own, &members),
        );
    }

    #[test]
    fn median_bounds_a_framing_minority() {
        // 5 claims about the out-coordinate: 4 honest (~100), 1 framed (10k).
        let own = report(0, 100);
        let members = vec![
            Some(report(0, 90)),
            Some(report(0, 110)),
            Some(report(0, 100)),
            Some(report(0, 10_000)),
        ];
        let (out_sum, _) = aggregate_group_traffic(own, &members, AggregationPolicy::Sum);
        let (out_med, _) = aggregate_group_traffic(own, &members, AggregationPolicy::Median);
        assert_eq!(out_sum, 10_400.0);
        assert_eq!(out_med, 500.0); // 5 × median(90,100,100,110,10000) = 5 × 100
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        let own = report(0, 100);
        let members = vec![Some(report(0, 100)), Some(report(0, 100)), Some(report(0, 6_000))];
        // 4 claims, trim 0.25 → drop 1 from each end → mean(100, 100) = 100.
        let (out, _) =
            aggregate_group_traffic(own, &members, AggregationPolicy::TrimmedMean { trim: 0.25 });
        assert_eq!(out, 400.0);
    }

    #[test]
    fn robust_policies_keep_into_coordinate_summed() {
        let own = report(500, 0);
        let members = vec![Some(report(300, 0)), None];
        for policy in [AggregationPolicy::Median, AggregationPolicy::TrimmedMean { trim: 0.34 }] {
            let (_, into) = aggregate_group_traffic(own, &members, policy);
            assert_eq!(into, 800.0, "into-suspect must stay sum-with-assume-zero");
        }
    }

    #[test]
    fn silence_drags_the_median_down_not_up() {
        let own = report(0, 1_000);
        let members = vec![None, None];
        let (out, _) = aggregate_group_traffic(own, &members, AggregationPolicy::Median);
        assert_eq!(out, 0.0); // median(0, 0, 1000) = 0
    }

    fn machine1() -> (VerdictMachine, NodeId, NodeId) {
        (VerdictMachine::new(4), NodeId(0), NodeId(1))
    }

    #[test]
    fn default_hysteresis_cuts_on_first_over_ct_window() {
        let (mut m, obs, sus) = machine1();
        let mut actions = Actions::default();
        let cut = m.judged(
            obs,
            sus,
            true,
            1,
            Hysteresis::default(),
            ReadmissionPolicy::default(),
            &mut actions,
        );
        assert!(cut);
        // Permanent cut with readmission disabled: no entry retained.
        assert_eq!(m.entry(obs, sus), None);
        let tos: Vec<_> = actions.transitions.iter().map(|t| t.to).collect();
        assert_eq!(tos, vec![PeerVerdict::Cut, PeerVerdict::Quarantined]);
    }

    #[test]
    fn two_of_three_hysteresis_needs_confirmation() {
        let (mut m, obs, sus) = machine1();
        let h = Hysteresis { required: 2, window: 3 };
        let r = ReadmissionPolicy::default();
        let mut actions = Actions::default();
        assert!(!m.judged(obs, sus, true, 1, h, r, &mut actions), "1 of last 3");
        assert_eq!(
            actions.transitions.last().map(|t| t.to),
            Some(PeerVerdict::Suspicious),
            "first over-CT window flags the suspect"
        );
        assert!(!m.judged(obs, sus, false, 2, h, r, &mut actions), "still 1 of last 3");
        assert!(m.judged(obs, sus, true, 3, h, r, &mut actions), "2 of last 3 confirms");
    }

    #[test]
    fn below_warning_breaks_the_window_chain() {
        let (mut m, obs, sus) = machine1();
        let h = Hysteresis { required: 2, window: 2 };
        let r = ReadmissionPolicy::default();
        let mut actions = Actions::default();
        assert!(!m.judged(obs, sus, true, 1, h, r, &mut actions));
        m.below_warning(obs, sus); // chain broken: history forgotten
        assert!(!m.judged(obs, sus, true, 3, h, r, &mut actions), "must re-confirm from scratch");
    }

    #[test]
    fn quarantine_probes_then_probation_then_readmission() {
        let (mut m, obs, sus) = machine1();
        let h = Hysteresis::default();
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };
        let mut actions = Actions::default();
        assert!(m.judged(obs, sus, true, 1, h, r, &mut actions));
        assert!(matches!(
            m.entry(obs, sus).unwrap().state,
            SuspectState::Quarantined { until: 5, backoff: 4 }
        ));
        // Not matured yet.
        m.fire_probes(obs, 4, r, &mut actions);
        assert!(actions.reconnects.is_empty());
        // Matured: re-dial + probation.
        m.fire_probes(obs, 5, r, &mut actions);
        assert_eq!(actions.reconnects, vec![(obs, sus)]);
        assert!(m.on_probation(obs, sus));
        // Clean probation expires into readmission.
        m.expire_probations(obs, 8, &mut actions);
        assert_eq!(m.entry(obs, sus), None);
        assert_eq!(actions.transitions.last().unwrap().to, PeerVerdict::Readmitted);
    }

    #[test]
    fn probation_reoffense_recuts_and_doubles_backoff() {
        let (mut m, obs, sus) = machine1();
        let h = Hysteresis { required: 3, window: 8 }; // strict hysteresis...
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };
        let mut actions = Actions::default();
        // Drive to quarantine via three over-CT windows.
        assert!(!m.judged(obs, sus, true, 1, h, r, &mut actions));
        assert!(!m.judged(obs, sus, true, 2, h, r, &mut actions));
        assert!(m.judged(obs, sus, true, 3, h, r, &mut actions));
        m.fire_probes(obs, 7, r, &mut actions);
        assert!(m.on_probation(obs, sus));
        // ...but on probation a single over-CT window re-cuts.
        assert!(m.judged(obs, sus, true, 8, h, r, &mut actions));
        let SuspectState::Quarantined { backoff, .. } = m.entry(obs, sus).unwrap().state else {
            panic!("re-cut must re-quarantine");
        };
        assert_eq!(backoff, 8, "backoff doubled from 4");
    }

    #[test]
    fn forget_edge_keeps_quarantine_only() {
        let (mut m, obs, sus) = machine1();
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };
        let mut actions = Actions::default();
        assert!(m.judged(obs, sus, true, 1, Hysteresis::default(), r, &mut actions));
        m.forget_edge(obs, sus); // the cut's own edge removal
        assert!(m.entry(obs, sus).is_some(), "quarantine survives its own cut");
        // A Watching entry does not survive.
        let other = NodeId(2);
        assert!(!m.judged(
            obs,
            other,
            true,
            1,
            Hysteresis { required: 2, window: 2 },
            r,
            &mut actions
        ));
        m.forget_edge(obs, other);
        assert_eq!(m.entry(obs, other), None);
    }

    #[test]
    fn backoff_schedule_saturates_near_tick_space_end() {
        // A cut at a tick near u32::MAX must not wrap the probe deadline
        // (wrapped deadlines fire immediately, turning quarantine into a
        // revolving door on very long runs).
        let (mut m, obs, sus) = machine1();
        let r = ReadmissionPolicy {
            enabled: true,
            base_backoff_ticks: u32::MAX,
            max_backoff_ticks: u32::MAX,
            probation_ticks: u32::MAX,
        };
        let mut actions = Actions::default();
        let late = u32::MAX - 2;
        assert!(m.judged(obs, sus, true, late, Hysteresis::default(), r, &mut actions));
        let SuspectState::Quarantined { until, backoff } = m.entry(obs, sus).unwrap().state else {
            panic!("cut must quarantine");
        };
        assert_eq!(until, u32::MAX, "deadline clamps instead of wrapping");
        assert_eq!(backoff, u32::MAX);
        // The probe never matures before the end of time — and when it does
        // fire at u32::MAX, the probation deadline clamps too.
        m.fire_probes(obs, late, r, &mut actions);
        assert!(actions.reconnects.is_empty());
        m.fire_probes(obs, u32::MAX, r, &mut actions);
        assert_eq!(actions.reconnects, vec![(obs, sus)]);
        let SuspectState::Probation { until, .. } = m.entry(obs, sus).unwrap().state else {
            panic!("probe must move to probation");
        };
        assert_eq!(until, u32::MAX);
    }

    #[test]
    fn repeated_recuts_clamp_backoff_at_the_cap() {
        let (mut m, obs, sus) = machine1();
        let h = Hysteresis::default();
        let r = ReadmissionPolicy {
            enabled: true,
            base_backoff_ticks: 1 << 30,
            max_backoff_ticks: u32::MAX,
            probation_ticks: 1,
        };
        let mut actions = Actions::default();
        let mut tick = 1;
        assert!(m.judged(obs, sus, true, tick, h, r, &mut actions));
        // Re-cut on probation repeatedly: 2^30 → 2^31 → saturates at MAX
        // instead of overflowing to 0 (a zero backoff would probe instantly).
        for _ in 0..4 {
            let SuspectState::Quarantined { until, .. } = m.entry(obs, sus).unwrap().state else {
                panic!("expected quarantine");
            };
            if until == u32::MAX {
                break;
            }
            tick = until;
            m.fire_probes(obs, tick, r, &mut actions);
            assert!(m.on_probation(obs, sus));
            assert!(m.judged(obs, sus, true, tick, h, r, &mut actions));
        }
        let SuspectState::Quarantined { backoff, .. } = m.entry(obs, sus).unwrap().state else {
            panic!("expected quarantine");
        };
        assert_eq!(backoff, u32::MAX, "doubling saturates at the cap");
    }

    #[test]
    fn forget_suspect_drops_every_observers_verdict() {
        let mut m = VerdictMachine::new(3);
        let sus = NodeId(2);
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };
        let mut actions = Actions::default();
        for obs in [NodeId(0), NodeId(1)] {
            assert!(m.judged(obs, sus, true, 1, Hysteresis::default(), r, &mut actions));
        }
        assert_eq!(m.entries_about(sus), 2);
        m.forget_suspect(sus);
        assert_eq!(m.entries_about(sus), 0);
        assert_eq!(m.total_entries(), 0);
    }

    #[test]
    fn expire_stale_collects_departed_and_overdue_suspects() {
        let mut m = VerdictMachine::new(4);
        let obs = NodeId(0);
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };
        let h = Hysteresis { required: 2, window: 3 };
        let mut actions = Actions::default();
        // NodeId(1): quarantined at tick 1 (until = 5). NodeId(2): watching.
        assert!(m.judged(obs, NodeId(1), true, 1, Hysteresis::default(), r, &mut actions));
        assert!(!m.judged(obs, NodeId(2), true, 1, h, r, &mut actions));
        let all_online = vec![true; 4];
        // Everyone online, nothing overdue: nothing expires.
        assert_eq!(m.expire_stale(obs, 2, 8, &all_online), 0);
        // Suspect 2 departs: its Watching entry is meaningless and drops;
        // suspect 1's quarantine clock (until 5) has not matured, so it
        // stays pending for now.
        let mut online = all_online.clone();
        online[2] = false;
        assert_eq!(m.expire_stale(obs, 2, 8, &online), 1);
        assert!(m.entry(obs, NodeId(2)).is_none());
        assert!(m.entry(obs, NodeId(1)).is_some());
        // Suspect 1 departs too; once its probe comes due there is nobody to
        // probe — the entry is collected instead of cycling forever.
        online[1] = false;
        assert_eq!(m.expire_stale(obs, 4, 8, &online), 0, "not due yet");
        assert_eq!(m.expire_stale(obs, 5, 8, &online), 1, "due + departed → dropped");
        assert_eq!(m.total_entries(), 0);
        // Online but ttl-overdue: the backstop for probes that never fired.
        assert!(m.judged(obs, NodeId(3), true, 10, Hysteresis::default(), r, &mut actions));
        assert_eq!(m.expire_stale(obs, 22, 8, &all_online), 0, "until 14 + ttl 8 = 22: kept");
        assert_eq!(m.expire_stale(obs, 23, 8, &all_online), 1, "past the ttl backstop");
    }

    #[test]
    fn blocks_link_vetoes_quarantine_and_probation_only() {
        let (mut m, obs, sus) = machine1();
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };
        let mut actions = Actions::default();
        assert!(!m.blocks_link(obs, sus));
        assert!(m.judged(obs, sus, true, 1, Hysteresis::default(), r, &mut actions));
        assert!(m.blocks_link(obs, sus), "quarantine vetoes re-linking");
        assert!(!m.blocks_link(sus, obs), "the veto is directional per observer");
        m.fire_probes(obs, 5, r, &mut actions);
        assert!(m.blocks_link(obs, sus), "probation still vetoes bootstrap rewiring");
        m.expire_probations(obs, 8, &mut actions);
        assert!(!m.blocks_link(obs, sus), "readmission clears the veto");
        // Out-of-range ids (pre-growth) never veto.
        assert!(!m.blocks_link(NodeId(900), sus));
    }

    #[test]
    fn ensure_slots_grows_idempotently() {
        let mut m = VerdictMachine::new(2);
        m.ensure_slots(5);
        m.ensure_slots(3); // never shrinks
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };
        let mut actions = Actions::default();
        assert!(m.judged(NodeId(4), NodeId(0), true, 1, Hysteresis::default(), r, &mut actions));
        assert_eq!(m.entries_about(NodeId(0)), 1);
    }

    #[test]
    fn shards_partition_the_machine_and_match_serial_decisions() {
        let h = Hysteresis::default();
        let r = ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() };

        // Serial reference: two observers in different partitions, all of an
        // observer's operations grouped together in ascending observer order
        // (the shape of the per-observer judgment loop).
        let mut serial = VerdictMachine::new(6);
        let mut sa = Actions::default();
        assert!(serial.judged(NodeId(1), NodeId(4), true, 1, h, r, &mut sa));
        serial.fire_probes(NodeId(1), 5, r, &mut sa);
        assert!(!serial.judged(
            NodeId(5),
            NodeId(0),
            true,
            1,
            Hysteresis { required: 2, window: 2 },
            r,
            &mut sa
        ));

        // Sharded: the same operations through disjoint shard views.
        let mut sharded = VerdictMachine::new(6);
        {
            let mut shards = sharded.shards(&[0, 3, 6]);
            let (lo, hi) = {
                let (a, b) = shards.split_at_mut(1);
                (&mut a[0], &mut b[0])
            };
            let mut a0 = Actions::default();
            let mut a1 = Actions::default();
            assert!(lo.judged(NodeId(1), NodeId(4), true, 1, h, r, &mut a0));
            assert!(!hi.judged(
                NodeId(5),
                NodeId(0),
                true,
                1,
                Hysteresis { required: 2, window: 2 },
                r,
                &mut a1
            ));
            lo.fire_probes(NodeId(1), 5, r, &mut a0);
            // Canonical merge order = partition order.
            let mut merged = Actions::default();
            merged.cuts.extend(a0.cuts.iter().chain(a1.cuts.iter()));
            merged.reconnects.extend(a0.reconnects.iter().chain(a1.reconnects.iter()));
            merged.transitions.extend(a0.transitions.iter().chain(a1.transitions.iter()).cloned());
            assert_eq!(merged.reconnects, sa.reconnects);
            assert_eq!(merged.transitions, sa.transitions);
        }
        for obs in 0..6 {
            assert_eq!(
                sharded.entries_of(NodeId(obs)),
                serial.entries_of(NodeId(obs)),
                "observer {obs} state diverged between shard and serial paths"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bounds must end at observer count")]
    fn shards_reject_mismatched_bounds() {
        let mut m = VerdictMachine::new(4);
        let _ = m.shards(&[0, 2]);
    }

    #[test]
    fn list_streak_matches_pre_pr_semantics() {
        let (mut m, obs, sus) = machine1();
        assert_eq!(m.note_list_missing(obs, sus), 1);
        assert_eq!(m.note_list_missing(obs, sus), 2);
        m.note_list_ok(obs, sus);
        assert_eq!(m.entry(obs, sus).unwrap().list_streak, 0);
        assert_eq!(m.note_list_missing(obs, sus), 1);
    }
}
