//! The General and Single indicators (Definitions 2.1–2.3).
//!
//! Both estimate `q0 / q` — the suspect's *issue* rate (not forward rate)
//! relative to the good-peer bound `q` — from per-link volume counts alone,
//! which is what lets DD-POLICE tell a flooding attacker from an innocent
//! peer that merely forwards a lot (Figure 1).

/// Definition 2.1 — the **General Indicator** of suspect `j` at time `t`:
///
/// ```
/// use ddp_police::indicator::{general_indicator, is_bad};
///
/// // An agent issuing 20,000/min over 4 links, with light inbound traffic:
/// let g = general_indicator(4.0 * 20_000.0, 400.0, 4, 100);
/// assert!(g > 190.0 && is_bad(g, 0.0, 5.0));
///
/// // An innocent forwarder's output is explained by its input:
/// let g = general_indicator(3.0 * 1_000.0, 1_000.0, 3, 100);
/// assert!(!is_bad(g, 0.0, 5.0));
/// ```
///
/// ```text
/// g(j,t) = ( Σ_m Q_{j→m}(t) − (k−1) · Σ_m Q_{m→j}(t) ) / (k · q)
/// ```
///
/// where `m` ranges over `j`'s `k` neighbors, `Q_{a→b}` is the query volume
/// from `a` to `b` in the last minute, and `q` is the good-peer issue bound.
///
/// Intuition (the paper's Figure 2 example): with no duplicate suppression,
/// `j` sends each neighbor its own `q0` issued queries plus everything it
/// received from the *other* `k−1` neighbors, so the first sum is
/// `k·q0 + (k−1)·Σ_in`, and subtracting `(k−1)·Σ_in` isolates `k·q0`.
pub fn general_indicator(sum_out_of_suspect: f64, sum_into_suspect: f64, k: usize, q: u32) -> f64 {
    if k == 0 || q == 0 {
        return 0.0;
    }
    (sum_out_of_suspect - (k as f64 - 1.0) * sum_into_suspect) / (k as f64 * q as f64)
}

/// Definition 2.2 — the **Single Indicator** of suspect `j` measured by its
/// neighbor `i`:
///
/// ```text
/// s(j,t,i) = ( Q_{j→i}(t) − Σ_{m≠i} Q_{m→j}(t) ) / q
/// ```
///
/// Everything `j` sent to `i` beyond what `j` received from its *other*
/// neighbors must have been issued by `j` itself.
pub fn single_indicator(
    q_suspect_to_observer: f64,
    sum_into_suspect_except_observer: f64,
    q: u32,
) -> f64 {
    if q == 0 {
        return 0.0;
    }
    (q_suspect_to_observer - sum_into_suspect_except_observer) / q as f64
}

/// Definition 2.3 — classification: `j` is bad iff either indicator exceeds
/// the threshold (the paper's definition uses 1; deployments use the cut
/// threshold `CT`, studied in §3.7.2).
pub fn is_bad(g: f64, s: f64, cut_threshold: f64) -> bool {
    g > cut_threshold || s > cut_threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 worked example: peer j with k = 3 neighbors
    /// issues q0 queries and receives q1, q2, q3; with no duplication and
    /// full forwarding, both indicators evaluate to exactly q0 / q.
    #[test]
    fn figure_2_worked_example() {
        let q = 10u32;
        let (q0, q1, q2, q3) = (5_000.0, 40.0, 70.0, 25.0);
        let k = 3usize;
        // j sends to each neighbor: its own q0 plus the other two inputs.
        let out_1 = q0 + q2 + q3; // to the neighbor that sent q1
        let out_2 = q0 + q1 + q3;
        let out_3 = q0 + q1 + q2;
        let sum_out = out_1 + out_2 + out_3;
        let sum_in = q1 + q2 + q3;
        let g = general_indicator(sum_out, sum_in, k, q);
        assert!((g - q0 / q as f64).abs() < 1e-9, "g = {g}, want {}", q0 / q as f64);

        // Observer i is the neighbor that contributed q1: j sent it q0+q2+q3,
        // and the other neighbors sent j q2+q3.
        let s = single_indicator(out_1, q2 + q3, q);
        assert!((s - q0 / q as f64).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn good_peer_is_below_unity() {
        // A good peer issuing q0 <= q yields indicators <= 1 (Definition 2.3).
        let q = 10u32;
        let q0 = 8.0;
        let (q1, q2) = (300.0, 200.0);
        let k = 2usize;
        let sum_out = (q0 + q2) + (q0 + q1);
        let sum_in = q1 + q2;
        let g = general_indicator(sum_out, sum_in, k, q);
        assert!(g <= 1.0, "g = {g}");
        assert!(!is_bad(g, 0.0, 1.0));
    }

    #[test]
    fn attacker_explodes_the_indicator() {
        // Figure 1 / §3.5: an attacker issues 20,000/min.
        let q = 10u32;
        let q0 = 20_000.0;
        let k = 4usize;
        let inputs = 100.0 * k as f64;
        let sum_out = k as f64 * q0 + (k as f64 - 1.0) * inputs;
        let g = general_indicator(sum_out, inputs, k, q);
        assert!((g - 2_000.0).abs() < 1e-9);
        assert!(is_bad(g, 0.0, 5.0));
    }

    #[test]
    fn forwarder_of_attack_traffic_is_exonerated() {
        // A good peer m forwarding an attacker's 20,000 looks heavy on the
        // wire, but its inputs explain its outputs: g stays ~q0/q.
        let q = 10u32;
        let q0 = 5.0; // m's own queries
        let attack_in = 20_000.0;
        let k = 3usize;
        let other_in = 50.0;
        let sum_in = attack_in + other_in + 0.0;
        // m floods everything it received (minus per-link echo) plus its own.
        let out_to_attacker = q0 + other_in;
        let out_to_b = q0 + attack_in + 0.0;
        let out_to_c = q0 + attack_in + other_in;
        let sum_out = out_to_attacker + out_to_b + out_to_c;
        let g = general_indicator(sum_out, sum_in, k, q);
        assert!(g < 5.0, "forwarder must stay under CT: g = {g}");
        assert!(g > 0.0);
    }

    #[test]
    fn single_indicator_subtracts_other_inputs() {
        let s = single_indicator(1_000.0, 990.0, 10);
        assert!((s - 1.0).abs() < 1e-9);
        let s = single_indicator(20_000.0, 500.0, 10);
        assert!(s > 1_000.0);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(general_indicator(100.0, 50.0, 0, 10), 0.0);
        assert_eq!(general_indicator(100.0, 50.0, 3, 0), 0.0);
        assert_eq!(single_indicator(100.0, 50.0, 0), 0.0);
    }

    #[test]
    fn negative_indicators_never_trigger() {
        // Measurement distortion can push indicators negative; that must
        // never classify as bad.
        let g = general_indicator(100.0, 5_000.0, 4, 10);
        assert!(g < 0.0);
        assert!(!is_bad(g, g, 3.0));
    }
}
