//! **DD-POLICE** — the paper's core contribution.
//!
//! "The basic idea of DD-POLICE is that all peers are involved in policing
//! their direct neighbors' query behavior by cooperating with each neighbor's
//! r-hop away neighbors, and identify the possible bad peers for
//! disconnection." (§3)
//!
//! The protocol has three steps, each its own module:
//!
//! 1. **Neighbor list exchanging** ([`exchange`]) — peers periodically send
//!    their neighbor lists to each neighbor, creating Buddy Groups
//!    ([`buddy`]): `BG1-j` = the set of `j`'s direct neighbors.
//! 2. **Neighbor query traffic monitoring** — per-neighbor `Out_query` /
//!    `In_query` per-minute counters; in this reproduction the simulator's
//!    overlay keeps them (`ddp_sim::Overlay`), exactly one counter per
//!    directed half-edge.
//! 3. **Bad peer recognition** ([`police`], [`indicator`]) — when a neighbor
//!    exceeds the warning threshold, exchange `Neighbor_Traffic` messages
//!    within its Buddy Group and compute the General and Single indicators;
//!    if either exceeds the cut threshold `CT`, disconnect.
//!
//! [`baselines`] implements the comparison defenses: no defense and naive
//! local rate-limiting (the strawman Figure 1 warns about); the fair-share
//! forwarding baseline lives in the engine (`ddp_sim::ForwardingPolicy`).

pub mod baselines;
pub mod buddy;
pub mod config;
pub mod exchange;
pub mod indicator;
pub mod police;
pub mod verdict;

pub use baselines::NaiveRateLimit;
pub use config::{DdPoliceConfig, MonitorBackend, SketchParams};
pub use exchange::ExchangePolicy;
pub use police::{group_traffic_sums, DdPolice, JudgmentTrace, SketchStats};
pub use verdict::{
    aggregate_group_traffic, AggregationPolicy, Hysteresis, ReadmissionPolicy, SuspectEntry,
    SuspectState, VerdictMachine, VerdictShard,
};
