//! Property test: the dense per-peer exchange views against a `HashMap`
//! shadow model.
//!
//! [`ExchangeState`] stores each peer's knowledge of its neighbors' lists in
//! short dense `Vec<(neighbor, Snapshot)>` rows with in-place buffer reuse on
//! the reliable path, and (since the inert-plane fast path) skips per-copy
//! transport transmission entirely when the fault plane can neither lose,
//! delay, nor crash anything. The shadow here replays the *naive* semantics —
//! one `HashMap<(viewer, announcer), (members, taken_at)>`, every copy pushed
//! through `FaultPlane::transmit_list` — on a twin fault plane built from the
//! same seed, so the dice agree draw-for-draw. After every tick the dense
//! views, the returned message counts, and the full resilience accounting of
//! both planes must match exactly.

use ddp_police::exchange::ExchangeState;
use ddp_police::ExchangePolicy;
use ddp_sim::{
    FaultConfig, FaultPlane, ListBehavior, Overlay, ReportBehavior, Tick, TickObservation,
};
use ddp_topology::{DynamicGraph, NodeId};
use ddp_workload::BandwidthClass;
use proptest::prelude::*;
use std::collections::HashMap;

const N: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    /// Advance one tick and run the exchange on both models.
    Tick,
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
    /// Peer restart: its accumulated views are wiped.
    ResetPeer(u32),
    ToggleOnline(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let n = N as u32;
    prop_oneof![
        5 => Just(Op::Tick),
        3 => (0..n, 0..n).prop_map(|(u, v)| Op::AddEdge(u, v)),
        2 => (0..n, 0..n).prop_map(|(u, v)| Op::RemoveEdge(u, v)),
        1 => (0..n).prop_map(Op::ResetPeer),
        1 => (0..n).prop_map(Op::ToggleOnline),
    ]
}

fn fault_strategy() -> impl Strategy<Value = FaultConfig> {
    prop_oneof![
        Just(FaultConfig::default()), // inert: exercises the reliable fast path
        Just(FaultConfig { loss: 0.4, ..FaultConfig::default() }),
        Just(FaultConfig { delay_prob: 0.6, delay_ticks: 1, ..FaultConfig::default() }),
        Just(FaultConfig { loss: 0.2, delay_prob: 0.3, delay_ticks: 2, ..FaultConfig::default() }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = ExchangePolicy> {
    prop_oneof![
        (1u32..4).prop_map(|minutes| ExchangePolicy::Periodic { minutes }),
        Just(ExchangePolicy::EventDriven),
    ]
}

/// The naive replay of one exchange tick over the shadow map. Mirrors
/// `ExchangeState::on_tick`'s faulty branch unconditionally: matured mail
/// first (newer-only, still-adjacent, receiver online), then per-copy
/// transmission of every announcement.
#[allow(clippy::too_many_arguments)]
fn shadow_tick(
    map: &mut HashMap<(u32, u32), (Vec<NodeId>, Tick)>,
    pending_event_msgs: &mut u64,
    plane: &FaultPlane,
    obs: &TickObservation<'_>,
    policy: ExchangePolicy,
) -> u64 {
    let mut msgs = std::mem::take(pending_event_msgs);
    for i_idx in 0..obs.overlay.node_count() {
        let i = NodeId::from_index(i_idx);
        for (announcer, members, sent_at) in plane.take_matured_lists(obs.tick, i) {
            if !obs.online[i_idx] || !obs.overlay.contains_edge(i, announcer) {
                continue;
            }
            let newer = map.get(&(i.0, announcer.0)).is_none_or(|&(_, at)| at < sent_at);
            if newer {
                map.insert((i.0, announcer.0), (members, sent_at));
                plane.note_late_list_applied();
            }
        }
    }
    let refresh = match policy {
        ExchangePolicy::Periodic { minutes } => {
            obs.tick.wrapping_sub(1).is_multiple_of(minutes.max(1))
        }
        ExchangePolicy::EventDriven => true,
    };
    if !refresh {
        return msgs;
    }
    let periodic = matches!(policy, ExchangePolicy::Periodic { .. });
    for j_idx in 0..obs.overlay.node_count() {
        if !obs.online[j_idx] {
            continue;
        }
        let j = NodeId::from_index(j_idx);
        if matches!(obs.report_behavior[j_idx], ReportBehavior::Silent) {
            continue;
        }
        let Some(members) = obs.announced_list(j) else { continue };
        for h in obs.overlay.neighbors(j) {
            if periodic {
                msgs += 1;
            }
            if let Some(delivered) = plane.transmit_list(obs.tick, j, h.peer, &members) {
                map.insert((h.peer.0, j.0), (delivered, obs.tick));
            }
        }
    }
    msgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary interleavings of ticks, adjacency churn, peer resets, and
    /// online toggles keep the dense views identical — members, announcement
    /// ticks, message counts, and fault accounting — to the naive map model,
    /// across every policy and fault mix.
    #[test]
    fn dense_views_match_hashmap_shadow(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        initial_edges in proptest::collection::vec((0..N as u32, 0..N as u32), 0..12),
        cfg in fault_strategy(),
        policy in policy_strategy(),
        silent_peer in 0..N as u32,
        padded_peer in 0..N as u32,
        seed in any::<u64>(),
    ) {
        let mut g = DynamicGraph::new(N);
        for &(u, v) in &initial_edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        let mut overlay = Overlay::new(g, &[BandwidthClass::Ethernet; N]);
        let mut online = vec![true; N];
        let runs = vec![true; N];
        let mut behavior = vec![ReportBehavior::Honest; N];
        behavior[silent_peer as usize] = ReportBehavior::Silent;
        let mut lists = vec![ListBehavior::Truthful; N];
        lists[padded_peer as usize] = ListBehavior::PadFake { extra: 2 };

        // Twin planes: same config, same seed — identical dice, separate
        // mailboxes and accounting.
        let plane_dense = FaultPlane::new(cfg.clone(), seed);
        let plane_shadow = FaultPlane::new(cfg, seed);

        let mut ex = ExchangeState::new(N);
        let mut shadow: HashMap<(u32, u32), (Vec<NodeId>, Tick)> = HashMap::new();
        let mut shadow_pending = 0u64;
        let mut tick: Tick = 0;

        for op in ops {
            match op {
                Op::Tick => {
                    tick += 1;
                    plane_dense.begin_tick(tick);
                    plane_shadow.begin_tick(tick);
                    let obs_dense = TickObservation {
                        tick,
                        overlay: &overlay,
                        online: &online,
                        runs_defense: &runs,
                        report_behavior: &behavior,
                        list_behavior: &lists,
                        faults: Some(&plane_dense),
                    };
                    let got = ex.on_tick(policy, &obs_dense);
                    let obs_shadow = TickObservation {
                        faults: Some(&plane_shadow),
                        ..obs_dense
                    };
                    let want = shadow_tick(
                        &mut shadow, &mut shadow_pending, &plane_shadow, &obs_shadow, policy,
                    );
                    prop_assert_eq!(got, want, "message counts diverged at tick {}", tick);
                }
                Op::AddEdge(u, v) => {
                    if overlay.add_edge(NodeId(u), NodeId(v)) {
                        let (du, dv) = (overlay.degree(NodeId(u)), overlay.degree(NodeId(v)));
                        ex.on_adjacency_event(policy, du, dv);
                        if policy == ExchangePolicy::EventDriven {
                            shadow_pending += (du + dv) as u64;
                        }
                    }
                }
                Op::RemoveEdge(u, v) => {
                    if overlay.remove_edge(NodeId(u), NodeId(v)) {
                        ex.forget_edge(NodeId(u), NodeId(v));
                        shadow.remove(&(u, v));
                        shadow.remove(&(v, u));
                        let (du, dv) = (overlay.degree(NodeId(u)), overlay.degree(NodeId(v)));
                        ex.on_adjacency_event(policy, du, dv);
                        if policy == ExchangePolicy::EventDriven {
                            shadow_pending += (du + dv) as u64;
                        }
                    }
                }
                Op::ResetPeer(u) => {
                    ex.reset_peer(NodeId(u));
                    shadow.retain(|&(viewer, _), _| viewer != u);
                }
                Op::ToggleOnline(u) => {
                    online[u as usize] = !online[u as usize];
                }
            }

            // Snapshot-for-snapshot agreement over the full pair grid.
            for i in 0..N as u32 {
                for j in 0..N as u32 {
                    let dense = ex.snapshot(NodeId(i), NodeId(j));
                    let model = shadow.get(&(i, j));
                    match (dense, model) {
                        (None, None) => {}
                        (Some(s), Some((members, taken_at))) => {
                            prop_assert_eq!(&s.members, members, "members for ({}, {})", i, j);
                            prop_assert_eq!(s.taken_at, *taken_at, "taken_at for ({}, {})", i, j);
                        }
                        (dense, model) => {
                            prop_assert!(
                                false,
                                "snapshot presence diverged for ({}, {}): dense={:?} model={:?}",
                                i, j, dense, model
                            );
                        }
                    }
                }
            }
        }
        // The bulk `lists_sent` accounting of the inert fast path must equal
        // the per-copy accounting of the naive replay, and on faulty planes
        // the loss/delay/late counters must agree draw-for-draw.
        prop_assert_eq!(plane_dense.stats(), plane_shadow.stats());
    }
}
