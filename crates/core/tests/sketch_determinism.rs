//! Determinism guarantees of the sketch monitor backend: bit-identical
//! snapshot round-trips mid-run and thread-count invariance of the sharded
//! tick engine, both with the count-min/space-saving monitor active.
//!
//! The sketch adds real state to the engine (counter matrix, window epoch,
//! heavy-hitter table, leaky buckets), all of it ingested serially before
//! judgment — so the engine's two strongest claims must keep holding with
//! the backend enabled: a snapshot taken mid-run restores to the identical
//! future, and the parallel fast path is byte-identical to serial at every
//! worker width. The mutation check flips the planted unordered-reduction
//! lever under the sketch backend and requires the per-tick state hash to
//! expose it.

use ddp_police::verdict::{Hysteresis, ReadmissionPolicy};
use ddp_police::{DdPolice, DdPoliceConfig, MonitorBackend, SketchParams};
use ddp_sim::{ReportBehavior, SimConfig, Simulation};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};

const PEERS: usize = 200;
const TICKS: usize = 12;

/// Full lifecycle config (hysteresis + readmission) on the sketch backend,
/// so the snapshot and the reduction both carry live verdict clocks *and*
/// sketch state. A small width keeps collisions (and therefore
/// excess-driven judgments) in play.
fn sketch_cfg() -> DdPoliceConfig {
    DdPoliceConfig {
        monitor: MonitorBackend::Sketch(SketchParams {
            width_log2: 8,
            depth: 3,
            ..SketchParams::default()
        }),
        hysteresis: Hysteresis { required: 2, window: 3 },
        readmission: ReadmissionPolicy {
            enabled: true,
            base_backoff_ticks: 2,
            max_backoff_ticks: 16,
            probation_ticks: 2,
        },
        ..DdPoliceConfig::default()
    }
}

fn sketch_sim(seed: u64) -> Simulation<DdPolice> {
    let cfg = SimConfig {
        topology: TopologyConfig { n: PEERS, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn: false,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, DdPolice::new(sketch_cfg(), PEERS), seed);
    for a in [5u32, 77, 123] {
        sim.make_attacker(NodeId(a), ReportBehavior::Honest);
    }
    sim
}

#[test]
fn snapshot_roundtrip_mid_run_is_bit_identical_with_sketch() {
    let mut reference = sketch_sim(42);
    for _ in 0..TICKS {
        reference.step();
    }

    // Snapshot at tick 5: hysteresis histories, lifecycle clocks, the CMS
    // counter matrix, and the rotated window epoch are all live here.
    let mut writer = sketch_sim(42);
    for _ in 0..5 {
        writer.step();
    }
    let bytes = writer.save_snapshot().unwrap();
    let mut resumed = sketch_sim(42);
    resumed.restore_snapshot(&bytes).unwrap();

    // Bit-identity: re-serializing the restored state reproduces the
    // snapshot byte for byte (window epoch included — a restore that reset
    // the rotation schedule would differ here and then diverge on hashing).
    assert_eq!(bytes, resumed.save_snapshot().unwrap(), "restore → save is not the identity");

    let a = resumed.defense().sketch_monitor().expect("sketch active after restore");
    let b = writer.defense().sketch_monitor().unwrap();
    assert_eq!(a.window(), b.window(), "window epoch lost in the round trip");

    for _ in 0..(TICKS - 5) {
        resumed.step();
    }
    let a = reference.finish();
    let b = resumed.finish();
    assert_eq!(a.series, b.series);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.cut_log, b.cut_log);
}

#[test]
fn parallel_widths_are_identical_with_sketch() {
    // Serial baseline, then widths 1, 2, 4: identical per-tick state hash,
    // judgment trace, and final results. Width 1 must be the serial engine
    // bit for bit; 2 and 4 cross the reduction.
    let serial = {
        let mut sim = sketch_sim(42);
        sim.defense_mut().set_tracing(true);
        sim.enable_hash_trace();
        let mut traces = Vec::new();
        for _ in 0..TICKS {
            sim.step();
            traces.push(sim.defense_mut().take_trace());
        }
        (sim.hash_trace().to_vec(), traces, sim.finish())
    };
    for threads in [1usize, 2, 4] {
        let mut sim = sketch_sim(42);
        sim.defense_mut().set_tracing(true);
        sim.enable_hash_trace();
        sim.set_threads(threads);
        let mut traces = Vec::new();
        for _ in 0..TICKS {
            sim.step();
            traces.push(sim.defense_mut().take_trace());
        }
        assert_eq!(serial.0, sim.hash_trace(), "state hash diverged at threads={threads}");
        assert_eq!(serial.1, traces, "judgment trace diverged at threads={threads}");
        let res = sim.finish();
        assert_eq!(serial.2.series, res.series, "series diverged at threads={threads}");
        assert_eq!(serial.2.summary, res.summary);
        assert_eq!(serial.2.cut_log, res.cut_log);
    }
}

#[test]
fn unordered_reduction_mutant_is_caught_with_sketch() {
    // Teeth: the planted reversed partition merge must still surface in the
    // per-tick state hash when the monitor is a sketch — otherwise the
    // width sweep above could not catch a real reduction-order race in the
    // sketch ingest path.
    let serial = {
        let mut sim = sketch_sim(42);
        sim.enable_hash_trace();
        for _ in 0..TICKS {
            sim.step();
        }
        sim.hash_trace().to_vec()
    };
    let mut sim = sketch_sim(42);
    sim.enable_hash_trace();
    sim.set_threads(4);
    sim.defense_mut().set_unordered_reduction(true);
    for _ in 0..TICKS {
        sim.step();
    }
    assert_ne!(
        serial,
        sim.hash_trace(),
        "reversed reduction left every tick hash intact under the sketch backend — \
         the determinism suite has no teeth here"
    );
}
