//! Policy inertness: with zero colluders, the default `Hysteresis { 1, 1 }`,
//! sum aggregation, and readmission disabled, the verdict state machine must
//! be an invisible refactor — tick-for-tick identical cuts, series, and
//! summary to the pre-PR single-shot implementation.
//!
//! The pre-PR `on_tick` (streak map + immediate `is_bad` cut) is rebuilt
//! here verbatim as [`ReferencePolice`] from the crate's public pieces, and
//! both defenses are driven through identical simulations across seeds and
//! scenarios. A second group of tests checks the verdict ledger is a
//! complete audit: every applied cut and every readmission appears in it.

use ddp_metrics::{PeerVerdict, VerdictSummary};
use ddp_police::buddy::{assemble, BuddyGroup};
use ddp_police::exchange::ExchangeState;
use ddp_police::indicator::{general_indicator, is_bad, single_indicator};
use ddp_police::{group_traffic_sums, DdPolice, DdPoliceConfig, ReadmissionPolicy};
use ddp_sim::{
    Actions, Defense, ReportBehavior, ReportDelivery, ReportOutcome, RunResult, SimConfig,
    Simulation, TickObservation, TrafficReport,
};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use std::collections::{HashMap, HashSet};

/// The pre-PR DD-POLICE bad-peer recognition, kept byte-for-byte in spirit:
/// a per-observer missing-list streak map and an unconditional cut the first
/// time an indicator exceeds `CT`.
struct ReferencePolice {
    cfg: DdPoliceConfig,
    exchange: ExchangeState,
    streaks: Vec<HashMap<u32, u8>>,
    exchanged_this_tick: HashSet<u32>,
}

impl ReferencePolice {
    fn new(cfg: DdPoliceConfig, n: usize) -> Self {
        ReferencePolice {
            cfg,
            exchange: ExchangeState::new(n),
            streaks: (0..n).map(|_| HashMap::new()).collect(),
            exchanged_this_tick: HashSet::new(),
        }
    }

    fn resolve_report(
        &self,
        observer: NodeId,
        reporter: NodeId,
        suspect: NodeId,
        obs: &TickObservation<'_>,
        retry_msgs: &mut u64,
    ) -> Option<TrafficReport> {
        let mut attempt = 0u32;
        loop {
            match obs.request_report_via(observer, reporter, suspect, attempt) {
                ReportDelivery::Fresh(r) => {
                    obs.note_report_outcome(ReportOutcome::Fresh);
                    return Some(r);
                }
                ReportDelivery::Refused => {
                    obs.note_report_outcome(ReportOutcome::Refused);
                    return None;
                }
                ReportDelivery::Faulted => {
                    if attempt < self.cfg.max_report_retries {
                        attempt += 1;
                        *retry_msgs += 1;
                        obs.note_retries(1);
                        continue;
                    }
                    if let Some((r, sent_at)) = obs.stale_report(observer, reporter, suspect) {
                        if obs.tick.saturating_sub(sent_at) <= self.cfg.report_timeout_ticks {
                            obs.note_report_outcome(ReportOutcome::Stale);
                            return Some(r);
                        }
                    }
                    obs.note_report_outcome(ReportOutcome::AssumedZero);
                    return None;
                }
            }
        }
    }

    fn judge(
        &self,
        observer: NodeId,
        group: &BuddyGroup,
        q_suspect_to_observer: u32,
        obs: &TickObservation<'_>,
    ) -> (f64, f64, u64) {
        let suspect = group.suspect;
        let own = obs.own_counters(observer, suspect);
        let mut retry_msgs = 0u64;
        let mut member_reports = Vec::with_capacity(group.members.len());
        for &m in &group.members {
            if m == observer {
                continue;
            }
            let report =
                self.resolve_report(observer, m, suspect, obs, &mut retry_msgs).map(|mut r| {
                    if self.cfg.clamp_reports_to_link {
                        r.sent_to_suspect =
                            r.sent_to_suspect.min(obs.overlay.link_capacity(m, suspect));
                    }
                    r
                });
            member_reports.push(report);
        }
        let (sum_out_of_suspect, sum_into_suspect) = group_traffic_sums(own, &member_reports);
        let g = general_indicator(sum_out_of_suspect, sum_into_suspect, group.k(), self.cfg.q_qpm);
        let s = single_indicator(
            q_suspect_to_observer as f64,
            sum_into_suspect - own.sent_to_suspect as f64,
            self.cfg.q_qpm,
        );
        (g, s, retry_msgs)
    }
}

impl Defense for ReferencePolice {
    fn name(&self) -> &'static str {
        "dd-police-reference"
    }

    fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
        actions.control_msgs += self.exchange.on_tick(self.cfg.exchange, obs);
        self.exchanged_this_tick.clear();

        let n = obs.overlay.node_count();
        for i in 0..n {
            if !obs.runs_defense[i] {
                continue;
            }
            let observer = NodeId::from_index(i);
            let degree = obs.overlay.degree(observer);
            for slot in 0..degree {
                let half = obs.overlay.neighbors(observer)[slot];
                let suspect = half.peer;
                let q_ji = obs.overlay.accepted_via(suspect, half.ridx as usize);
                if q_ji <= self.cfg.warning_threshold_qpm {
                    if !self.streaks[i].is_empty() {
                        self.streaks[i].remove(&suspect.0);
                    }
                    continue;
                }
                let group = match assemble(
                    observer,
                    suspect,
                    &self.exchange,
                    obs,
                    self.cfg.radius,
                    self.cfg.verify_lists,
                ) {
                    Some(bg) => {
                        self.streaks[i].remove(&suspect.0);
                        bg
                    }
                    None => {
                        let streak = self.streaks[i].entry(suspect.0).or_insert(0);
                        *streak = streak.saturating_add(1);
                        if *streak < self.cfg.missing_list_grace {
                            continue;
                        }
                        BuddyGroup { suspect, members: vec![observer] }
                    }
                };
                if self.exchanged_this_tick.insert(suspect.0) {
                    let k = group.k() as u64;
                    actions.control_msgs += k * k.saturating_sub(1);
                }
                let (g, s, retry_msgs) = self.judge(observer, &group, q_ji, obs);
                actions.control_msgs += retry_msgs;
                if is_bad(g, s, self.cfg.cut_threshold) {
                    actions.cut(observer, suspect);
                }
            }
        }
    }

    fn on_peer_reset(&mut self, node: NodeId) {
        self.exchange.reset_peer(node);
        self.streaks[node.index()].clear();
    }

    fn on_edge_added(&mut self, _u: NodeId, _v: NodeId, deg_u: usize, deg_v: usize) {
        self.exchange.on_adjacency_event(self.cfg.exchange, deg_u, deg_v);
    }

    fn on_edge_removed(&mut self, u: NodeId, v: NodeId, deg_u: usize, deg_v: usize) {
        self.exchange.on_adjacency_event(self.cfg.exchange, deg_u, deg_v);
        self.exchange.forget_edge(u, v);
        self.streaks[u.index()].remove(&v.0);
        self.streaks[v.index()].remove(&u.0);
    }
}

fn sim_config(n: usize, churn: bool) -> SimConfig {
    SimConfig {
        topology: TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn,
        ..SimConfig::default()
    }
}

fn run<D: Defense>(
    defense: D,
    n: usize,
    churn: bool,
    attackers: &[(u32, ReportBehavior)],
    ticks: usize,
    seed: u64,
) -> RunResult {
    let mut sim = Simulation::new(sim_config(n, churn), defense, seed);
    for &(a, behavior) in attackers {
        sim.make_attacker(NodeId(a), behavior);
    }
    sim.run(ticks)
}

/// Compare a default-config DdPolice run against the reference on every
/// observable except the (new, additive) verdict ledger.
fn assert_inert(
    n: usize,
    churn: bool,
    attackers: &[(u32, ReportBehavior)],
    ticks: usize,
    seed: u64,
) {
    let mut reference =
        run(ReferencePolice::new(DdPoliceConfig::default(), n), n, churn, attackers, ticks, seed);
    let mut new =
        run(DdPolice::new(DdPoliceConfig::default(), n), n, churn, attackers, ticks, seed);
    assert_eq!(new.cut_log, reference.cut_log, "cut log must be tick-for-tick identical");
    assert_eq!(new.series, reference.series, "per-tick series must be identical");
    // The ledger is new instrumentation (and the engine's wrongful-cut
    // interval tracking feeds both runs); everything else in the summary
    // must match exactly.
    new.summary.verdicts = VerdictSummary::default();
    reference.summary.verdicts = VerdictSummary::default();
    assert_eq!(new.summary, reference.summary, "summaries must be identical");
}

#[test]
fn default_config_is_inert_across_seeds() {
    for seed in [1u64, 7, 23, 42, 99] {
        assert_inert(
            300,
            false,
            &[(5, ReportBehavior::Honest), (77, ReportBehavior::Honest)],
            8,
            seed,
        );
    }
}

#[test]
fn default_config_is_inert_under_churn() {
    for seed in [3u64, 42] {
        assert_inert(
            250,
            true,
            &[(9, ReportBehavior::Honest), (120, ReportBehavior::Silent)],
            10,
            seed,
        );
    }
}

#[test]
fn default_config_is_inert_with_lying_reporters() {
    assert_inert(
        260,
        false,
        &[(4, ReportBehavior::Deflate(0.02)), (33, ReportBehavior::Inflate(50.0))],
        8,
        13,
    );
}

#[test]
fn ledger_records_every_applied_cut() {
    let result = run(
        DdPolice::new(DdPoliceConfig::default(), 300),
        300,
        false,
        &[(5, ReportBehavior::Honest), (77, ReportBehavior::Honest), (123, ReportBehavior::Honest)],
        8,
        42,
    );
    assert!(!result.cut_log.is_empty(), "scenario must produce cuts");
    for cut in &result.cut_log {
        let cut_entry = result.verdict_log.iter().any(|t| {
            t.tick == cut.tick
                && t.observer == cut.observer.0
                && t.suspect == cut.suspect.0
                && t.to == PeerVerdict::Cut
        });
        assert!(cut_entry, "cut {cut:?} missing from the verdict ledger");
        let quarantined = result.verdict_log.iter().any(|t| {
            t.tick == cut.tick
                && t.observer == cut.observer.0
                && t.suspect == cut.suspect.0
                && t.from == PeerVerdict::Cut
                && t.to == PeerVerdict::Quarantined
        });
        assert!(quarantined, "cut {cut:?} has no quarantine transition");
    }
    assert_eq!(result.summary.verdicts.cuts as usize, result.verdict_log.len() / 2);
}

#[test]
fn ledger_records_the_readmission_lifecycle() {
    let cfg = DdPoliceConfig {
        readmission: ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() },
        ..DdPoliceConfig::default()
    };
    let result = run(
        DdPolice::new(cfg, 300),
        300,
        false,
        &[(5, ReportBehavior::Honest), (77, ReportBehavior::Honest)],
        16,
        42,
    );
    let v = &result.summary.verdicts;
    assert!(v.cuts > 0, "scenario must cut");
    assert!(v.readmission_probes > 0, "quarantine backoffs must mature within 16 ticks");
    // Every Probation entry in the log follows a Quarantined state for the
    // same (observer, suspect) pair, and every Readmitted follows Probation.
    for t in &result.verdict_log {
        if t.to == PeerVerdict::Probation {
            assert_eq!(t.from, PeerVerdict::Quarantined, "{t:?}");
            assert!(result.verdict_log.iter().any(|p| {
                p.tick <= t.tick
                    && p.observer == t.observer
                    && p.suspect == t.suspect
                    && p.to == PeerVerdict::Quarantined
            }));
        }
        if t.to == PeerVerdict::Readmitted {
            assert_eq!(t.from, PeerVerdict::Probation, "{t:?}");
        }
    }
    let probation_entries = result
        .verdict_log
        .iter()
        .filter(|t| t.from == PeerVerdict::Quarantined && t.to == PeerVerdict::Probation)
        .count();
    assert_eq!(v.readmission_probes as usize, probation_entries);
}
