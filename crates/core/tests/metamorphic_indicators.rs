//! Metamorphic properties of the §2 indicators.
//!
//! Three relations the formulas must satisfy for *any* inputs, not just the
//! paper's worked example:
//!
//! 1. **Permutation invariance** — a Buddy Group is a set; reordering the
//!    member reports cannot change `g` or `s` by a single bit. (The engine
//!    relies on this when it caches per-suspect sums in CSR order.)
//! 2. **Linearity in `q0`** — a suspect that originates twice the queries
//!    scores twice the indicator; superposition holds to 1 ulp (one
//!    correctly-rounded division is the only inexact step).
//! 3. **The Figure 2 identity** — under full forwarding with self-origin
//!    `q0`, both indicators equal `q0 / q` *bit-exactly*, for every group
//!    size `k >= 2`, not just the figure's `k = 3`: the integer sums are
//!    exact in f64 and IEEE division rounds the same rational value the
//!    same way on both sides.

use ddp_police::group_traffic_sums;
use ddp_police::indicator::{general_indicator, single_indicator};
use ddp_sim::TrafficReport;
use proptest::prelude::*;

fn report(sent: u32, received: u32) -> TrafficReport {
    TrafficReport { sent_to_suspect: sent, received_from_suspect: received }
}

/// Equal within one unit in the last place.
fn ulp_eq(a: f64, b: f64) -> bool {
    a == b
        || (a.is_sign_positive() == b.is_sign_positive() && a.to_bits().abs_diff(b.to_bits()) <= 1)
}

/// The Figure 2 "full forwarding" model, generalized: suspect `j` has the
/// `k` members as its neighbors, originates `q0` queries itself, and
/// forwards every query received from one member to all the others. Returns
/// `(g, s_for_member_0)`.
fn figure2_indicators(q0: u32, member_inputs: &[u32], q: u32) -> (f64, f64) {
    let k = member_inputs.len();
    let total_in: u64 = member_inputs.iter().map(|&v| u64::from(v)).sum();
    // out_i = q0 + sum of every *other* member's input.
    let out_of = |i: usize| u64::from(q0) + total_in - u64::from(member_inputs[i]);
    let sum_out: u64 = (0..k).map(out_of).sum();
    let g = general_indicator(sum_out as f64, total_in as f64, k, q);
    let s = single_indicator(out_of(0) as f64, (total_in - u64::from(member_inputs[0])) as f64, q);
    (g, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Relation 1: member order is invisible. Reports are permuted by
    /// sorting on generated keys (an arbitrary permutation), and the sums
    /// and both indicators must agree bit-for-bit — integer-valued f64
    /// addition below 2^53 is exact, hence order-independent.
    #[test]
    fn indicators_invariant_under_member_permutation(
        own in (0u32..50_000, 0u32..50_000),
        members in prop::collection::vec((0u32..50_000, 0u32..50_000, any::<u64>()), 0..16),
        q in 1u32..2_000,
    ) {
        let original: Vec<Option<TrafficReport>> =
            members.iter().map(|&(s, r, _)| Some(report(s, r))).collect();
        let mut keyed: Vec<&(u32, u32, u64)> = members.iter().collect();
        keyed.sort_by_key(|&&(_, _, key)| key);
        let permuted: Vec<Option<TrafficReport>> =
            keyed.iter().map(|&&(s, r, _)| Some(report(s, r))).collect();

        let own = report(own.0, own.1);
        let (out_a, into_a) = group_traffic_sums(own, &original);
        let (out_b, into_b) = group_traffic_sums(own, &permuted);
        prop_assert_eq!(out_a.to_bits(), out_b.to_bits());
        prop_assert_eq!(into_a.to_bits(), into_b.to_bits());

        let k = members.len() + 1;
        prop_assert_eq!(
            general_indicator(out_a, into_a, k, q).to_bits(),
            general_indicator(out_b, into_b, k, q).to_bits()
        );
        let own_in = own.received_from_suspect as f64;
        let except_own = |into: f64| into - own.sent_to_suspect as f64;
        prop_assert_eq!(
            single_indicator(own_in, except_own(into_a), q).to_bits(),
            single_indicator(own_in, except_own(into_b), q).to_bits()
        );
    }

    /// Relation 2: superposition in the origination rate. Two suspects
    /// originating `a` and `b` on top of the same forwarded load score
    /// indicators summing (to 1 ulp) to the indicator of one suspect
    /// originating `a + b` — the indicator measures origination linearly.
    #[test]
    fn figure2_indicators_linear_in_q0(
        a in 0u32..1_000_000,
        b in 0u32..1_000_000,
        member_inputs in prop::collection::vec(0u32..50_000, 2..10),
        q in 1u32..2_000,
    ) {
        // Forwarded load contributes identically to all three scenarios and
        // cancels in the indicators, so only the origins need relating.
        let zeros = vec![0u32; member_inputs.len()];
        let (g_a, s_a) = figure2_indicators(a, &zeros, q);
        let (g_b, s_b) = figure2_indicators(b, &zeros, q);
        let (g_ab, s_ab) = figure2_indicators(a + b, &member_inputs, q);
        let (g_fwd, s_fwd) = figure2_indicators(0, &member_inputs, q);
        prop_assert_eq!(g_fwd.to_bits(), 0f64.to_bits(), "pure forwarding scores zero");
        prop_assert_eq!(s_fwd.to_bits(), 0f64.to_bits(), "pure forwarding scores zero");
        prop_assert!(
            ulp_eq(g_ab, g_a + g_b),
            "g({}) = {g_ab:?} but g({a}) + g({b}) = {:?}", a + b, g_a + g_b
        );
        prop_assert!(
            ulp_eq(s_ab, s_a + s_b),
            "s({}) = {s_ab:?} but s({a}) + s({b}) = {:?}", a + b, s_a + s_b
        );
    }

    /// Relation 3: the Figure 2 identity `g = s = q0 / q`, bit-exact, for
    /// arbitrary group size `k >= 2` and arbitrary member inputs — the
    /// figure's `k = 3, q = 10` table is one point of this surface.
    #[test]
    fn figure2_identity_holds_for_any_group_size(
        q0 in 0u32..20_000_000,
        member_inputs in prop::collection::vec(0u32..1_000_000, 2..12),
        q in 1u32..100_000,
    ) {
        let (g, s) = figure2_indicators(q0, &member_inputs, q);
        let expected = q0 as f64 / q as f64;
        prop_assert_eq!(
            g.to_bits(), expected.to_bits(),
            "g = {g:?}, q0/q = {expected:?} (k = {})", member_inputs.len()
        );
        prop_assert_eq!(
            s.to_bits(), expected.to_bits(),
            "s = {s:?}, q0/q = {expected:?} (k = {})", member_inputs.len()
        );
    }
}

/// The paper's own numbers (Figure 2: k = 3, q = 10, member inputs
/// 40/70/25), pinned as a spot check of the generalized model above.
#[test]
fn figure2_worked_example_is_a_point_of_the_identity() {
    for q0 in [5, 100, 5_000, 20_000] {
        let (g, s) = figure2_indicators(q0, &[40, 70, 25], 10);
        assert_eq!(g, q0 as f64 / 10.0);
        assert_eq!(s, q0 as f64 / 10.0);
    }
}
