//! Detection-parity differential suite: the sketch monitor backend against
//! the exact per-neighbor counters over the shared oracle scenario matrix.
//!
//! Count-min estimates are overestimate-only (proven by the `ddp-sketch`
//! error-bound suite), so a sketch-backed DD-POLICE can only be *more*
//! suspicious than the exact one — never hide traffic. A cut/no-cut
//! disagreement therefore needs a judgment whose indicator sat close enough
//! to `CT` that the bounded estimate excess could flip it. "Close enough" is
//! not a tuned fudge factor: each of the ≤ `2k−1` counter terms feeding an
//! indicator is off by at most the run's realized worst excess `E`, so
//! `|Δg| ≤ ((k + (k−1)·k) · E)/(k·q) = k·E/q` and likewise `|Δs| ≤ k·E/q`.
//! A scenario with a disagreement but *no* judgment within that band of
//! `CT` (in either run, for any suspect) is a parity violation.
//!
//! The mutant check plants the `set_underestimate` sabotage — violating the
//! overestimate-only invariant this tolerance derivation rests on — and
//! requires the resulting missed attacker cut to be reported as a violation,
//! not absorbed as borderline.

use ddp_oracle::{scenario_matrix, ScenarioSpec};
use ddp_police::{
    DdPolice, DdPoliceConfig, JudgmentTrace, MonitorBackend, SketchParams, SketchStats,
};
use std::collections::BTreeSet;

/// Generous geometry for ≤ 80-peer matrix scenarios: at width 2^12 the
/// realized excess is usually zero and the borderline band collapses.
const WIDTH_LOG2: u8 = 12;
const DEPTH: u8 = 4;

fn sketch_backend(spec: &ScenarioSpec) -> MonitorBackend {
    MonitorBackend::Sketch(SketchParams {
        width_log2: WIDTH_LOG2,
        depth: DEPTH,
        salt: SketchParams::default().salt ^ spec.seed,
        ..SketchParams::default()
    })
}

struct BackendRun {
    cuts: BTreeSet<u32>,
    traces: Vec<JudgmentTrace>,
    stats: SketchStats,
}

fn run_backend(spec: &ScenarioSpec, monitor: MonitorBackend, underestimate: u32) -> BackendRun {
    let cfg = DdPoliceConfig { monitor, ..spec.police_config() };
    let mut sim = spec.instantiate(DdPolice::new(cfg, spec.peers));
    sim.defense_mut().set_tracing(true);
    if underestimate > 0 {
        sim.defense_mut().set_sketch_underestimate(underestimate);
    }
    let mut traces = Vec::new();
    for _ in 0..spec.ticks {
        sim.step();
        traces.extend(sim.defense_mut().take_trace());
    }
    let stats = sim.defense().sketch_stats();
    let result = sim.finish();
    let cuts = result.cut_log.iter().map(|r| r.suspect.0).collect();
    BackendRun { cuts, traces, stats }
}

/// The proven indicator-shift bound for this run: `k · E / q`, with `k` the
/// largest Buddy-Group size the ingest saw and `E` the realized worst
/// per-edge overestimate.
fn borderline_tolerance(cfg: &DdPoliceConfig, stats: &SketchStats) -> f64 {
    stats.max_degree_run.max(1) as f64 * stats.max_excess_run as f64 / cfg.q_qpm as f64
}

enum Parity {
    Agree,
    Borderline(String),
    Violation(String),
}

/// Run both backends on `spec` and classify the outcome. `underestimate`
/// plants the sabotage bias in the sketch twin (0 = honest).
fn check_parity(spec: &ScenarioSpec, underestimate: u32) -> Parity {
    let exact = run_backend(spec, MonitorBackend::Exact, 0);
    let sketch = run_backend(spec, sketch_backend(spec), underestimate);
    if exact.cuts == sketch.cuts {
        return Parity::Agree;
    }
    let disagreeing: BTreeSet<u32> =
        exact.cuts.symmetric_difference(&sketch.cuts).copied().collect();
    let cfg = spec.police_config();
    let tol = borderline_tolerance(&cfg, &sketch.stats);
    let ct = cfg.cut_threshold;
    let in_band = |t: &JudgmentTrace| (t.g - ct).abs() <= tol || (t.s - ct).abs() <= tol;

    // A suspect the exact run never judged reached the warning threshold
    // only through estimate excess — the warning gate's margin is not
    // observable from traces, so such a disagreement is borderline by
    // construction (and can only add scrutiny, never remove it).
    let exact_judged: BTreeSet<u32> = exact.traces.iter().map(|t| t.suspect.0).collect();
    let unjudged_disagreement = disagreeing.iter().any(|s| !exact_judged.contains(s));
    if unjudged_disagreement
        || exact.traces.iter().any(in_band)
        || sketch.traces.iter().any(in_band)
    {
        return Parity::Borderline(format!(
            "cut sets differ on {disagreeing:?} with a judgment within {tol:.3} of CT={ct}"
        ));
    }
    Parity::Violation(format!(
        "cut sets differ on {disagreeing:?} (exact {:?} vs sketch {:?}) with no judgment within \
         {tol:.3} of CT={ct} in either run — outside the proven excess bound",
        exact.cuts, sketch.cuts
    ))
}

#[test]
fn matrix_verdicts_agree_outside_the_borderline_band() {
    let matrix = scenario_matrix();
    let mut agreed = 0usize;
    let mut violations = Vec::new();
    for (label, spec) in &matrix {
        match check_parity(spec, 0) {
            Parity::Agree => agreed += 1,
            Parity::Borderline(_) => {}
            Parity::Violation(why) => {
                violations.push(format!("{label}: {why}\nspec:\n{}", spec.to_json()))
            }
        }
    }
    assert!(violations.is_empty(), "detection parity broken:\n{}", violations.join("\n\n"));
    // Teeth against over-classification: if most of the matrix were
    // "borderline" the agreement requirement would be vacuous.
    assert!(
        agreed * 2 >= matrix.len(),
        "only {agreed}/{} scenarios agreed outright — the borderline band absorbs too much",
        matrix.len()
    );
}

#[test]
fn seeded_random_specs_hold_parity() {
    for fuzz_seed in 0..15 {
        let spec = ScenarioSpec::random(fuzz_seed);
        if let Parity::Violation(why) = check_parity(&spec, 0) {
            panic!("fuzz seed {fuzz_seed}: {why}\nspec:\n{}", spec.to_json());
        }
    }
}

/// A matrix scenario where the exact backend cuts at least one peer and the
/// honest sketch agrees exactly — the cleanest host for the mutant.
fn cutting_spec() -> (&'static str, ScenarioSpec) {
    for (label, spec) in scenario_matrix() {
        let exact = run_backend(&spec, MonitorBackend::Exact, 0);
        if exact.cuts.is_empty() {
            continue;
        }
        if matches!(check_parity(&spec, 0), Parity::Agree) {
            return (label, spec);
        }
    }
    panic!("no matrix scenario cuts with exact agreement — the mutant check has no host");
}

#[test]
fn underestimating_sketch_mutant_is_reported_as_violation() {
    let (label, spec) = cutting_spec();
    // Bias every estimate to zero: all traffic reads as below-warning, the
    // sketch twin cuts nobody, and none of its judgments can land in the
    // borderline band (it makes none). The checker must call that a
    // violation — the overestimate-only premise is gone.
    match check_parity(&spec, u32::MAX) {
        Parity::Violation(_) => {}
        Parity::Agree => panic!(
            "{label}: an all-zero-estimate sketch still matched exact cuts — \
             the parity checker compares nothing"
        ),
        Parity::Borderline(why) => panic!(
            "{label}: the underestimating mutant was absorbed as borderline ({why}) — \
             the tolerance has no teeth"
        ),
    }
}

#[test]
fn milder_underestimate_bias_is_still_caught_somewhere() {
    // A subtler mutant: undercount by a fixed small bias rather than
    // flattening everything. Across the matrix's cutting scenarios at least
    // one verdict must flip into a reported violation.
    let mut hosts = 0usize;
    for (_, spec) in scenario_matrix() {
        if !matches!(check_parity(&spec, 0), Parity::Agree) {
            continue;
        }
        hosts += 1;
        if matches!(check_parity(&spec, 600), Parity::Violation(_)) {
            return;
        }
    }
    panic!("bias 600 flipped no verdict across {hosts} agreeing scenarios — sabotage inert");
}
