//! Differential suite: the optimized [`DdPolice`](ddp_police::DdPolice)
//! engine against the naive paper transcription in `ddp-oracle`, feature by
//! feature.
//!
//! The scenario shapes live in [`ddp_oracle::scenario_matrix`] — one spec
//! per engine subsystem — and every harness (this oracle lockstep, the
//! serial-vs-parallel suite, the snapshot-restore sweep) consumes the same
//! list, so a scenario added there is covered by all of them. Each matrix
//! entry asserts full-state lockstep equivalence (judgment traces within
//! 1 ulp, verdict entries, exchange views, overlay edges, cut/verdict
//! ledgers, output series) after every tick. The final tests are the
//! harness's own mutation check: forcing the engine down its fast path in a
//! configuration the gate would refuse must produce a divergence, and the
//! shrinker must reduce it to a small replayable spec.

use ddp_oracle::{run_lockstep, scenario_matrix, shrink, ScenarioSpec};

/// Assert a scenario runs clean, with a readable divergence on failure.
fn assert_clean(label: &str, spec: ScenarioSpec) {
    match run_lockstep(&spec) {
        Ok(stats) => {
            assert_eq!(stats.ticks, spec.ticks, "{label}: truncated run");
        }
        Err(d) => panic!("{label}: engine diverged from oracle at {d}\nspec:\n{}", spec.to_json()),
    }
}

#[test]
fn full_matrix_runs_clean() {
    let matrix = scenario_matrix();
    assert!(matrix.len() >= 20, "matrix shrank to {} scenarios", matrix.len());
    for (label, spec) in matrix {
        assert_clean(label, spec);
    }
}

#[test]
fn matrix_covers_both_judgment_paths() {
    // The matrix must keep exercising the fast path (plain Sum, no clamp,
    // inert faults) and the slow path (clamping / robust aggregation /
    // fault dice), or the lockstep sweep silently loses a subsystem.
    let matrix = scenario_matrix();
    let fast = matrix
        .iter()
        .filter(|(_, s)| s.aggregation == 0 && !s.clamp_reports && s.loss == 0.0)
        .count();
    let slow = matrix
        .iter()
        .filter(|(_, s)| s.aggregation != 0 || s.clamp_reports || s.loss > 0.0)
        .count();
    assert!(fast >= 5, "only {fast} fast-path scenarios");
    assert!(slow >= 5, "only {slow} slow-path scenarios");
}

#[test]
fn seeded_random_sweep() {
    for fuzz_seed in 0..25 {
        let spec = ScenarioSpec::random(fuzz_seed);
        if let Err(d) = run_lockstep(&spec) {
            panic!("fuzz seed {fuzz_seed} diverged at {d}\nspec:\n{}", spec.to_json());
        }
    }
}

/// Find a spec under which the deliberately broken configuration (fast path
/// forced on with per-link clamping enabled, which only the slow path
/// implements) actually diverges. Inflating cheaters make clamping matter.
fn mutation_spec() -> ScenarioSpec {
    for seed in 0..50 {
        let spec = ScenarioSpec {
            seed,
            agents: 5,
            cheat: 1,
            inflate: 80.0,
            clamp_reports: true,
            force_fast_path: true,
            ..ScenarioSpec::default()
        };
        if run_lockstep(&spec).is_err() {
            return spec;
        }
    }
    panic!("no seed in 0..50 exposes the forced fast path — the mutation check lost its teeth");
}

#[test]
fn mutation_check_forced_fast_path_is_caught_and_shrunk() {
    let spec = mutation_spec();

    let repro = shrink(&spec, 200).expect("a diverging spec must shrink to a reproducer");
    // The shrunk spec still reproduces, and only got smaller.
    let d = run_lockstep(&repro.spec).expect_err("shrunk spec must still diverge");
    assert_eq!(d, repro.divergence, "lockstep is deterministic");
    assert!(repro.spec.ticks <= spec.ticks);
    assert!(repro.spec.peers <= spec.peers);
    assert!(
        repro.spec.force_fast_path && repro.spec.clamp_reports,
        "the shrinker must keep the two knobs that cause the bug: {}",
        repro.spec.to_json()
    );

    // The reproducer replays exactly through its JSON form.
    let replayed = ScenarioSpec::from_json(&repro.spec.to_json()).expect("reproducer parses");
    assert_eq!(replayed, repro.spec);
    assert_eq!(run_lockstep(&replayed).expect_err("replay diverges"), repro.divergence);
}

#[test]
fn honest_gate_keeps_the_same_scenario_clean() {
    // The identical scenario minus the forced gate runs clean: the
    // divergence above is the *mutation*, not the scenario.
    let spec = ScenarioSpec { force_fast_path: false, ..mutation_spec() };
    assert_clean("un-forced twin", spec);
}
