//! Differential suite: the optimized [`DdPolice`](ddp_police::DdPolice)
//! engine against the naive paper transcription in `ddp-oracle`, feature by
//! feature.
//!
//! Each test pins one subsystem's scenario shape and asserts full-state
//! lockstep equivalence (judgment traces within 1 ulp, verdict entries,
//! exchange views, overlay edges, cut/verdict ledgers, output series) after
//! every tick. The final tests are the harness's own mutation check: forcing
//! the engine down its fast path in a configuration the gate would refuse
//! must produce a divergence, and the shrinker must reduce it to a small
//! replayable spec.

use ddp_oracle::{run_lockstep, shrink, ScenarioSpec};

/// Assert a scenario runs clean, with a readable divergence on failure.
fn assert_clean(label: &str, spec: ScenarioSpec) {
    match run_lockstep(&spec) {
        Ok(stats) => {
            assert_eq!(stats.ticks, spec.ticks, "{label}: truncated run");
        }
        Err(d) => panic!("{label}: engine diverged from oracle at {d}\nspec:\n{}", spec.to_json()),
    }
}

#[test]
fn default_scenario_with_flooders() {
    assert_clean("default", ScenarioSpec { agents: 4, ..ScenarioSpec::default() });
}

#[test]
fn no_attack_at_all() {
    assert_clean("quiet overlay", ScenarioSpec { agents: 0, ..ScenarioSpec::default() });
}

#[test]
fn cheating_reporters() {
    for cheat in 1..=3u8 {
        assert_clean(
            "cheating reporters",
            ScenarioSpec { agents: 4, cheat, ..ScenarioSpec::default() },
        );
    }
}

#[test]
fn lying_list_announcers() {
    for lists in 1..=3u8 {
        assert_clean(
            "lying announcers",
            ScenarioSpec { agents: 4, lists, pad_extra: 5, ..ScenarioSpec::default() },
        );
    }
}

#[test]
fn lossy_and_delayed_control_plane() {
    assert_clean(
        "faulty transport",
        ScenarioSpec {
            agents: 4,
            loss: 0.2,
            delay_prob: 0.2,
            delay_ticks: 2,
            ticks: 12,
            ..ScenarioSpec::default()
        },
    );
}

#[test]
fn crash_restarting_peers() {
    assert_clean(
        "crash restarts",
        ScenarioSpec { agents: 3, crash_prob: 0.05, ticks: 12, ..ScenarioSpec::default() },
    );
}

#[test]
fn shield_collusion() {
    assert_clean(
        "shield coalition",
        ScenarioSpec { agents: 4, collusion: 1, ..ScenarioSpec::default() },
    );
}

#[test]
fn frame_collusion() {
    assert_clean(
        "framing coalition",
        ScenarioSpec { collusion: 2, frame_fraction: 0.8, ..ScenarioSpec::default() },
    );
}

#[test]
fn legacy_churn() {
    assert_clean(
        "legacy churn",
        ScenarioSpec { agents: 4, churn: true, ticks: 14, ..ScenarioSpec::default() },
    );
}

#[test]
fn session_model_membership() {
    assert_clean(
        "session model",
        ScenarioSpec { agents: 4, session_mean: 6.0, ticks: 14, ..ScenarioSpec::default() },
    );
}

#[test]
fn whitewashing_attackers() {
    assert_clean(
        "whitewashing",
        ScenarioSpec {
            agents: 4,
            whitewash_dwell: 2,
            whitewash_quiet: 1,
            ticks: 14,
            ..ScenarioSpec::default()
        },
    );
}

#[test]
fn robust_aggregation_policies() {
    for (aggregation, trim) in [(1u8, 0.0), (2, 0.2), (2, 0.45)] {
        assert_clean(
            "robust aggregation",
            ScenarioSpec { agents: 4, cheat: 1, aggregation, trim, ..ScenarioSpec::default() },
        );
    }
}

#[test]
fn hysteresis_windows() {
    assert_clean(
        "hysteresis",
        ScenarioSpec { agents: 4, hys_window: 3, hys_required: 2, ..ScenarioSpec::default() },
    );
}

#[test]
fn readmission_lifecycle() {
    assert_clean(
        "readmission",
        ScenarioSpec { agents: 4, readmission: true, ticks: 16, ..ScenarioSpec::default() },
    );
}

#[test]
fn suspect_ttl_sweep() {
    assert_clean(
        "ttl sweep",
        ScenarioSpec {
            agents: 4,
            suspect_ttl: 3,
            session_mean: 6.0,
            ticks: 14,
            ..ScenarioSpec::default()
        },
    );
}

#[test]
fn event_driven_exchange() {
    assert_clean(
        "event-driven exchange",
        ScenarioSpec { agents: 4, exchange_minutes: 0, churn: true, ..ScenarioSpec::default() },
    );
}

#[test]
fn radius_two_groups() {
    assert_clean("radius 2", ScenarioSpec { agents: 4, radius: 2, ..ScenarioSpec::default() });
}

#[test]
fn clamped_reports_take_the_slow_path() {
    assert_clean(
        "clamp on (slow path)",
        ScenarioSpec { agents: 4, cheat: 1, clamp_reports: true, ..ScenarioSpec::default() },
    );
}

#[test]
fn kitchen_sink_interaction() {
    assert_clean(
        "kitchen sink",
        ScenarioSpec {
            agents: 5,
            cheat: 1,
            lists: 3,
            pad_extra: 3,
            loss: 0.15,
            delay_prob: 0.15,
            crash_prob: 0.03,
            churn: true,
            session_mean: 8.0,
            readmission: true,
            suspect_ttl: 5,
            hys_window: 2,
            hys_required: 2,
            aggregation: 2,
            trim: 0.25,
            ticks: 16,
            ..ScenarioSpec::default()
        },
    );
}

#[test]
fn seeded_random_sweep() {
    for fuzz_seed in 0..25 {
        let spec = ScenarioSpec::random(fuzz_seed);
        if let Err(d) = run_lockstep(&spec) {
            panic!("fuzz seed {fuzz_seed} diverged at {d}\nspec:\n{}", spec.to_json());
        }
    }
}

/// Find a spec under which the deliberately broken configuration (fast path
/// forced on with per-link clamping enabled, which only the slow path
/// implements) actually diverges. Inflating cheaters make clamping matter.
fn mutation_spec() -> ScenarioSpec {
    for seed in 0..50 {
        let spec = ScenarioSpec {
            seed,
            agents: 5,
            cheat: 1,
            inflate: 80.0,
            clamp_reports: true,
            force_fast_path: true,
            ..ScenarioSpec::default()
        };
        if run_lockstep(&spec).is_err() {
            return spec;
        }
    }
    panic!("no seed in 0..50 exposes the forced fast path — the mutation check lost its teeth");
}

#[test]
fn mutation_check_forced_fast_path_is_caught_and_shrunk() {
    let spec = mutation_spec();

    let repro = shrink(&spec, 200).expect("a diverging spec must shrink to a reproducer");
    // The shrunk spec still reproduces, and only got smaller.
    let d = run_lockstep(&repro.spec).expect_err("shrunk spec must still diverge");
    assert_eq!(d, repro.divergence, "lockstep is deterministic");
    assert!(repro.spec.ticks <= spec.ticks);
    assert!(repro.spec.peers <= spec.peers);
    assert!(
        repro.spec.force_fast_path && repro.spec.clamp_reports,
        "the shrinker must keep the two knobs that cause the bug: {}",
        repro.spec.to_json()
    );

    // The reproducer replays exactly through its JSON form.
    let replayed = ScenarioSpec::from_json(&repro.spec.to_json()).expect("reproducer parses");
    assert_eq!(replayed, repro.spec);
    assert_eq!(run_lockstep(&replayed).expect_err("replay diverges"), repro.divergence);
}

#[test]
fn honest_gate_keeps_the_same_scenario_clean() {
    // The identical scenario minus the forced gate runs clean: the
    // divergence above is the *mutation*, not the scenario.
    let spec = ScenarioSpec { force_fast_path: false, ..mutation_spec() };
    assert_clean("un-forced twin", spec);
}
