//! Property tests for the fault-injected control plane.
//!
//! Two invariants tie the fault plane back to the paper's protocol:
//!
//! 1. §3.4's assume-zero rule is *exact*: judging a Buddy Group with missing
//!    `Neighbor_Traffic` reports yields the same indicators as judging it
//!    with explicit all-zero reports — losing a report can bias a judgment
//!    only by the traffic the report would have claimed, never by changing
//!    the computation itself.
//! 2. A fully lossy control plane degrades but never breaks: runs complete
//!    without panicking, and a peer that stays below the warning threshold
//!    is never disconnected no matter how broken the transport is.

use ddp_police::indicator::{general_indicator, single_indicator};
use ddp_police::{group_traffic_sums, DdPolice, DdPoliceConfig};
use ddp_sim::{FaultConfig, ReportBehavior, SimConfig, Simulation, TrafficReport};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use proptest::prelude::*;

fn report(sent: u32, received: u32) -> TrafficReport {
    TrafficReport { sent_to_suspect: sent, received_from_suspect: received }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// "If it does not receive the Neighbor_Traffic message ... it simply
    /// assumes the message contains zero values" (§3.4). A missing report
    /// must be indistinguishable from an explicit `(0, 0)` report through
    /// the group sums and through both indicators.
    #[test]
    fn missing_reports_equal_explicit_zero_reports(
        own in (0u32..5_000, 0u32..5_000),
        members in prop::collection::vec((0u32..5_000, 0u32..5_000, any::<bool>()), 0..12),
        q in 1u32..2_000,
    ) {
        let with_holes: Vec<Option<TrafficReport>> = members
            .iter()
            .map(|&(s, r, delivered)| delivered.then(|| report(s, r)))
            .collect();
        let zero_filled: Vec<Option<TrafficReport>> =
            with_holes.iter().map(|r| Some(r.unwrap_or(report(0, 0)))).collect();

        let own = report(own.0, own.1);
        let (out_a, into_a) = group_traffic_sums(own, &with_holes);
        let (out_b, into_b) = group_traffic_sums(own, &zero_filled);
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(into_a, into_b);

        // A lost report does not shrink the Buddy Group: k counts members,
        // not deliveries, so both judgments use the same k.
        let k = members.len() + 1;
        prop_assert_eq!(
            general_indicator(out_a, into_a, k, q),
            general_indicator(out_b, into_b, k, q)
        );
        let from_suspect = own.received_from_suspect as f64;
        prop_assert_eq!(
            single_indicator(from_suspect, into_a - own.sent_to_suspect as f64, q),
            single_indicator(from_suspect, into_b - own.sent_to_suspect as f64, q)
        );
    }
}

fn lossy_cfg(n: usize, loss: f64) -> SimConfig {
    SimConfig {
        topology: TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn: false,
        faults: FaultConfig { loss, ..FaultConfig::default() },
        ..SimConfig::default()
    }
}

/// With every control message lost and no attacker present, nobody crosses
/// the warning threshold, so DD-POLICE must cut nobody: assume-zero never
/// *creates* a suspect, it only weakens evidence about an existing one.
#[test]
fn full_loss_without_attackers_never_cuts_anyone() {
    for seed in [1u64, 7, 23, 99] {
        let police = DdPolice::new(DdPoliceConfig::default(), 200);
        let res = Simulation::new(lossy_cfg(200, 1.0), police, seed).run(6);
        assert!(
            res.cut_log.is_empty(),
            "seed {seed}: full loss cut peers below the warning threshold: {:?}",
            res.cut_log
        );
        assert_eq!(res.summary.errors.false_negative, 0, "seed {seed}");
    }
}

/// An all-zero [`FaultConfig`] is not merely "mostly harmless": the mediated
/// transport must reproduce the fault-free baseline bit-for-bit, whatever
/// `delay_ticks` says (it only matters for messages actually delayed).
#[test]
fn inert_fault_configs_reproduce_the_baseline_bit_for_bit() {
    let run = |faults: FaultConfig, seed: u64| {
        let cfg = SimConfig { faults, ..lossy_cfg(220, 0.0) };
        let police = DdPolice::new(DdPoliceConfig::default(), 220);
        let mut sim = Simulation::new(cfg, police, seed);
        for a in [9u32, 60, 131] {
            sim.make_attacker(NodeId(a), ReportBehavior::Honest);
        }
        sim.run(8)
    };
    for seed in [2u64, 77] {
        let baseline = run(FaultConfig::default(), seed);
        let inert = run(FaultConfig { delay_ticks: 3, ..FaultConfig::default() }, seed);
        assert_eq!(baseline.summary, inert.summary, "seed {seed}");
        assert_eq!(baseline.series, inert.series, "seed {seed}");
        assert_eq!(baseline.cut_log, inert.cut_log, "seed {seed}");
    }
}

/// Fault injection is deterministic: identical `SimConfig` and seed give
/// identical runs — including which messages were lost and delayed, hence
/// identical cut decisions. A different seed re-rolls the fault pattern.
#[test]
fn faulted_runs_are_reproducible_per_seed() {
    let run = |seed: u64| {
        let faults = FaultConfig { loss: 0.2, delay_prob: 0.5, delay_ticks: 2, crash_prob: 0.01 };
        let cfg = SimConfig { faults, ..lossy_cfg(220, 0.0) };
        let police = DdPolice::new(DdPoliceConfig::default(), 220);
        let mut sim = Simulation::new(cfg, police, seed);
        for a in [9u32, 60, 131] {
            sim.make_attacker(NodeId(a), ReportBehavior::Honest);
        }
        sim.run(8)
    };
    let a = run(6);
    let b = run(6);
    assert_eq!(a.cut_log, b.cut_log);
    assert_eq!(a.summary, b.summary);
    let c = run(7);
    assert_ne!(
        (a.summary.resilience.reports_assumed_zero, a.summary.resilience.lists_lost),
        (c.summary.resilience.reports_assumed_zero, c.summary.resilience.lists_lost),
        "a different seed must re-roll the fault pattern"
    );
}

/// Under attack with a fully lossy transport the run still completes. No
/// neighbor list ever arrives, so no Buddy Group can assemble and no
/// `Neighbor_Traffic` can be fetched — DD-POLICE is left with the no-snapshot
/// streak fallback, and nothing fresh or stale ever crosses the wire.
#[test]
fn full_loss_under_attack_completes_without_any_delivery() {
    for seed in [5u64, 41] {
        let police = DdPolice::new(DdPoliceConfig::default(), 240);
        let mut sim = Simulation::new(lossy_cfg(240, 1.0), police, seed);
        for a in [3u32, 91, 155] {
            sim.make_attacker(NodeId(a), ReportBehavior::Honest);
        }
        let res = sim.run(8);
        let r = &res.summary.resilience;
        assert!(r.lists_sent > 0, "seed {seed}: peers keep announcing lists");
        assert_eq!(r.lists_lost, r.lists_sent, "seed {seed}: full loss drops every list");
        assert_eq!(r.reports_fresh, 0, "seed {seed}: no report survives full loss");
        assert_eq!(r.reports_stale_used, 0, "seed {seed}: nothing mailed, nothing matures");
        assert_eq!(
            r.reports_assumed_zero + r.reports_refused,
            r.reports_requested,
            "seed {seed}: every lookup ends in refusal or assume-zero"
        );
    }
}
