//! Differential inertness: the optimized engine vs a verbatim reference.
//!
//! The CSR/dense hot-path refactor must be a pure layout change — tick for
//! tick, bit for bit. This suite pins that two ways:
//!
//! 1. **Side-by-side**: `RefPolice` below is a frozen verbatim copy of the
//!    pre-refactor `DdPolice` hot paths (HashMap-backed exchange views, the
//!    original Buddy-Group assembly, the original judging loop). Running the
//!    crate's `DdPolice` and `RefPolice` through identical simulations must
//!    yield identical `RunResult`s — series, summary, cut log, and verdict
//!    log — across seeds and across the baseline / faulty / collusion
//!    scenario families.
//! 2. **Golden digests**: FNV-1a digests of whole `RunResult`s, captured on
//!    the pre-refactor engine, are embedded as constants. They catch the
//!    failure mode side-by-side comparison cannot: both engines drifting
//!    together. Re-capture (only for an *intentional* behavior change) with:
//!
//!    ```text
//!    cargo test -p ddp-police --test differential_inertness \
//!        -- --ignored print_golden_digests --nocapture
//!    ```

use ddp_police::{DdPolice, DdPoliceConfig};
use ddp_sim::{FaultConfig, ListBehavior, ReportBehavior, RunResult, SimConfig, Simulation};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};

/// Frozen pre-refactor reference implementation. Everything in this module is
/// a verbatim copy of the crate's hot paths as of the commit that introduced
/// this suite; it must never be "optimized" — its whole value is staying put.
mod reference {
    use ddp_police::buddy::BuddyGroup;
    use ddp_police::config::DdPoliceConfig;
    use ddp_police::exchange::ExchangePolicy;
    use ddp_police::verdict::{aggregate_group_traffic, VerdictMachine};
    use ddp_sim::{
        Actions, Defense, ReportDelivery, ReportOutcome, Tick, TickObservation, TrafficReport,
    };
    use ddp_topology::NodeId;
    use std::collections::{HashMap, HashSet};

    use ddp_police::indicator::{general_indicator, is_bad, single_indicator};

    /// Verbatim copy of the pre-refactor `exchange::Snapshot`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Snapshot {
        pub members: Vec<NodeId>,
        pub taken_at: Tick,
    }

    /// Verbatim copy of the pre-refactor HashMap-backed `ExchangeState`.
    #[derive(Debug, Default)]
    pub struct RefExchange {
        views: Vec<HashMap<u32, Snapshot>>,
        pending_event_msgs: u64,
    }

    fn periodic_refresh_due(minutes: u32, tick: Tick) -> bool {
        tick.wrapping_sub(1).is_multiple_of(minutes.max(1))
    }

    impl RefExchange {
        pub fn new(n: usize) -> Self {
            RefExchange { views: (0..n).map(|_| HashMap::new()).collect(), pending_event_msgs: 0 }
        }

        pub fn snapshot(&self, i: NodeId, j: NodeId) -> Option<&Snapshot> {
            self.views[i.index()].get(&j.0)
        }

        pub fn on_tick(&mut self, policy: ExchangePolicy, obs: &TickObservation<'_>) -> u64 {
            let mut msgs = self.pending_event_msgs;
            self.pending_event_msgs = 0;

            for i_idx in 0..obs.overlay.node_count() {
                let i = NodeId::from_index(i_idx);
                for (announcer, members, sent_at) in obs.matured_lists(i) {
                    if !obs.online[i_idx] || !obs.overlay.contains_edge(i, announcer) {
                        continue;
                    }
                    let newer =
                        self.views[i_idx].get(&announcer.0).is_none_or(|s| s.taken_at < sent_at);
                    if newer {
                        self.views[i_idx]
                            .insert(announcer.0, Snapshot { members, taken_at: sent_at });
                        obs.note_late_list_applied();
                    }
                }
            }

            let refresh = match policy {
                ExchangePolicy::Periodic { minutes } => periodic_refresh_due(minutes, obs.tick),
                ExchangePolicy::EventDriven => true,
            };
            if !refresh {
                return msgs;
            }
            for j_idx in 0..obs.overlay.node_count() {
                if !obs.online[j_idx] {
                    continue;
                }
                let j = NodeId::from_index(j_idx);
                if matches!(obs.report_behavior[j_idx], ddp_sim::ReportBehavior::Silent) {
                    continue;
                }
                let Some(members) = obs.announced_list(j) else { continue };
                for h in obs.overlay.neighbors(j) {
                    let i = h.peer;
                    if matches!(policy, ExchangePolicy::Periodic { .. }) {
                        msgs += 1;
                    }
                    if let Some(delivered) = obs.transmit_list(j, i, &members) {
                        self.views[i.index()]
                            .insert(j.0, Snapshot { members: delivered, taken_at: obs.tick });
                    }
                }
            }
            msgs
        }

        pub fn on_adjacency_event(
            &mut self,
            policy: ExchangePolicy,
            degree_u: usize,
            degree_v: usize,
        ) {
            if policy == ExchangePolicy::EventDriven {
                self.pending_event_msgs += (degree_u + degree_v) as u64;
            }
        }

        pub fn forget_edge(&mut self, u: NodeId, v: NodeId) {
            self.views[u.index()].remove(&v.0);
            self.views[v.index()].remove(&u.0);
        }

        pub fn reset_peer(&mut self, u: NodeId) {
            self.views[u.index()].clear();
        }
    }

    /// Verbatim copy of the pre-refactor `buddy::assemble`, against
    /// [`RefExchange`].
    fn ref_assemble(
        observer: NodeId,
        suspect: NodeId,
        exchange: &RefExchange,
        obs: &TickObservation<'_>,
        radius: u8,
        verify: bool,
    ) -> Option<BuddyGroup> {
        let snap = exchange.snapshot(observer, suspect)?;
        obs.note_snapshot_age(obs.tick.saturating_sub(snap.taken_at));
        let mut members = snap.members.clone();
        if verify {
            members.retain(|&m| m == observer || obs.confirm_membership(m, suspect));
        }
        if radius >= 2 {
            let current: Vec<NodeId> =
                obs.overlay.neighbors(suspect).iter().map(|h| h.peer).collect();
            for m in current {
                if !members.contains(&m) {
                    members.push(m);
                }
            }
            members.retain(|&m| obs.overlay.contains_edge(m, suspect) || m == observer);
        }
        if !members.contains(&observer) {
            members.push(observer);
        }
        Some(BuddyGroup { suspect, members })
    }

    /// Verbatim copy of the pre-refactor `DdPolice`, over [`RefExchange`].
    /// Reuses the crate's `VerdictMachine` (untouched by the layout
    /// refactor), so verdict logs compare exactly.
    pub struct RefPolice {
        cfg: DdPoliceConfig,
        exchange: RefExchange,
        verdicts: VerdictMachine,
        exchanged_this_tick: HashSet<u32>,
    }

    impl RefPolice {
        pub fn new(cfg: DdPoliceConfig, n: usize) -> Self {
            RefPolice {
                cfg,
                exchange: RefExchange::new(n),
                verdicts: VerdictMachine::new(n),
                exchanged_this_tick: HashSet::new(),
            }
        }

        fn resolve_report(
            &self,
            observer: NodeId,
            reporter: NodeId,
            suspect: NodeId,
            obs: &TickObservation<'_>,
            retry_msgs: &mut u64,
        ) -> Option<TrafficReport> {
            let mut attempt = 0u32;
            loop {
                match obs.request_report_via(observer, reporter, suspect, attempt) {
                    ReportDelivery::Fresh(r) => {
                        obs.note_report_outcome(ReportOutcome::Fresh);
                        return Some(r);
                    }
                    ReportDelivery::Refused => {
                        obs.note_report_outcome(ReportOutcome::Refused);
                        return None;
                    }
                    ReportDelivery::Faulted => {
                        if attempt < self.cfg.max_report_retries {
                            attempt += 1;
                            *retry_msgs += 1;
                            obs.note_retries(1);
                            continue;
                        }
                        if let Some((r, sent_at)) = obs.stale_report(observer, reporter, suspect) {
                            if obs.tick.saturating_sub(sent_at) <= self.cfg.report_timeout_ticks {
                                obs.note_report_outcome(ReportOutcome::Stale);
                                return Some(r);
                            }
                        }
                        obs.note_report_outcome(ReportOutcome::AssumedZero);
                        return None;
                    }
                }
            }
        }

        fn judge(
            &self,
            observer: NodeId,
            group: &BuddyGroup,
            q_suspect_to_observer: u32,
            obs: &TickObservation<'_>,
        ) -> (f64, f64, u64) {
            let suspect = group.suspect;
            let own = obs.own_counters(observer, suspect);
            let mut retry_msgs = 0u64;
            let mut member_reports = Vec::with_capacity(group.members.len());
            for &m in &group.members {
                if m == observer {
                    continue;
                }
                let report =
                    self.resolve_report(observer, m, suspect, obs, &mut retry_msgs).map(|mut r| {
                        if self.cfg.clamp_reports_to_link {
                            r.sent_to_suspect =
                                r.sent_to_suspect.min(obs.overlay.link_capacity(m, suspect));
                        }
                        r
                    });
                member_reports.push(report);
            }
            let (sum_out_of_suspect, sum_into_suspect) =
                aggregate_group_traffic(own, &member_reports, self.cfg.aggregation);
            let g =
                general_indicator(sum_out_of_suspect, sum_into_suspect, group.k(), self.cfg.q_qpm);
            let s = single_indicator(
                q_suspect_to_observer as f64,
                sum_into_suspect - own.sent_to_suspect as f64,
                self.cfg.q_qpm,
            );
            (g, s, retry_msgs)
        }
    }

    impl Defense for RefPolice {
        fn name(&self) -> &'static str {
            "ref-dd-police"
        }

        fn on_tick(&mut self, obs: &TickObservation<'_>, actions: &mut Actions) {
            actions.control_msgs += self.exchange.on_tick(self.cfg.exchange, obs);
            self.exchanged_this_tick.clear();

            let n = obs.overlay.node_count();
            for i in 0..n {
                if !obs.runs_defense[i] {
                    continue;
                }
                let observer = NodeId::from_index(i);
                if self.cfg.readmission.enabled {
                    self.verdicts.expire_probations(observer, obs.tick, actions);
                    let before = actions.reconnects.len();
                    self.verdicts.fire_probes(observer, obs.tick, self.cfg.readmission, actions);
                    actions.control_msgs += (actions.reconnects.len() - before) as u64;
                }
                let degree = obs.overlay.degree(observer);
                for slot in 0..degree {
                    let half = obs.overlay.neighbors(observer)[slot];
                    let suspect = half.peer;
                    let q_ji = obs.overlay.accepted_via(suspect, half.ridx as usize);
                    if q_ji <= self.cfg.warning_threshold_qpm {
                        self.verdicts.below_warning(observer, suspect);
                        continue;
                    }
                    let group = match ref_assemble(
                        observer,
                        suspect,
                        &self.exchange,
                        obs,
                        self.cfg.radius,
                        self.cfg.verify_lists,
                    ) {
                        Some(bg) => {
                            self.verdicts.note_list_ok(observer, suspect);
                            bg
                        }
                        None => {
                            let streak = self.verdicts.note_list_missing(observer, suspect);
                            if streak < self.cfg.missing_list_grace {
                                continue;
                            }
                            BuddyGroup { suspect, members: vec![observer] }
                        }
                    };
                    if self.exchanged_this_tick.insert(suspect.0) {
                        let k = group.k() as u64;
                        actions.control_msgs += k * k.saturating_sub(1);
                    }
                    let (g, s, retry_msgs) = self.judge(observer, &group, q_ji, obs);
                    actions.control_msgs += retry_msgs;
                    let over_ct = is_bad(g, s, self.cfg.cut_threshold);
                    if self.verdicts.judged(
                        observer,
                        suspect,
                        over_ct,
                        obs.tick,
                        self.cfg.hysteresis,
                        self.cfg.readmission,
                        actions,
                    ) {
                        actions.cut(observer, suspect);
                    }
                }
            }
        }

        fn on_peer_reset(&mut self, node: NodeId) {
            self.exchange.reset_peer(node);
            self.verdicts.reset_observer(node);
        }

        fn on_edge_added(&mut self, _u: NodeId, _v: NodeId, deg_u: usize, deg_v: usize) {
            self.exchange.on_adjacency_event(self.cfg.exchange, deg_u, deg_v);
        }

        fn on_edge_removed(&mut self, u: NodeId, v: NodeId, deg_u: usize, deg_v: usize) {
            self.exchange.on_adjacency_event(self.cfg.exchange, deg_u, deg_v);
            self.exchange.forget_edge(u, v);
            self.verdicts.forget_edge(u, v);
        }
    }
}

// --- Scenario families ------------------------------------------------------

const N: usize = 300;
const SEEDS: [u64; 5] = [11, 42, 137, 2024, 77_777];

#[derive(Clone, Copy, Debug)]
enum Scenario {
    /// Paper defaults under churn: honest attackers, reliable transport.
    Baseline,
    /// Lossy + delayed control plane, crash-restarts, mixed report cheats.
    Faulty,
    /// Colluding coalition (shielding + framing + padded lists) against a
    /// hardened config: clamped reports, 2-of-3 hysteresis, readmission on,
    /// radius-2 cross-verification.
    Collusion,
}

impl Scenario {
    const ALL: [Scenario; 3] = [Scenario::Baseline, Scenario::Faulty, Scenario::Collusion];

    fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::Faulty => "faulty",
            Scenario::Collusion => "collusion",
        }
    }

    fn sim_config(self) -> SimConfig {
        let mut cfg = SimConfig {
            topology: TopologyConfig { n: N, model: TopologyModel::BarabasiAlbert { m: 3 } },
            ..SimConfig::default()
        };
        if matches!(self, Scenario::Faulty) {
            cfg.faults =
                FaultConfig { loss: 0.15, delay_prob: 0.3, delay_ticks: 1, crash_prob: 0.01 };
        }
        cfg
    }

    fn police_config(self) -> DdPoliceConfig {
        match self {
            Scenario::Baseline | Scenario::Faulty => DdPoliceConfig::default(),
            Scenario::Collusion => DdPoliceConfig {
                clamp_reports_to_link: true,
                radius: 2,
                hysteresis: ddp_police::Hysteresis { required: 2, window: 3 },
                readmission: ddp_police::ReadmissionPolicy {
                    enabled: true,
                    base_backoff_ticks: 2,
                    max_backoff_ticks: 8,
                    probation_ticks: 2,
                },
                ..DdPoliceConfig::default()
            },
        }
    }

    /// Attacker placement is a pure function of the scenario, so both engines
    /// see the exact same cast.
    fn cast<D: ddp_sim::Defense>(self, sim: &mut Simulation<D>) {
        match self {
            Scenario::Baseline => {
                for k in 0..10u32 {
                    sim.make_attacker(NodeId(k * 29 + 3), ReportBehavior::Honest);
                }
            }
            Scenario::Faulty => {
                for k in 0..12u32 {
                    let id = NodeId(k * 23 + 5);
                    let behavior = match k % 4 {
                        0 => ReportBehavior::Honest,
                        1 => ReportBehavior::Silent,
                        2 => ReportBehavior::Deflate(0.02),
                        _ => ReportBehavior::Inflate(3.0),
                    };
                    sim.make_attacker(id, behavior);
                }
            }
            Scenario::Collusion => {
                let victim = NodeId(200);
                for k in 0..8u32 {
                    let id = NodeId(k * 31 + 7);
                    let behavior = if k % 3 == 0 {
                        ReportBehavior::FrameVictim { victim, inflate: 40.0 }
                    } else {
                        ReportBehavior::ShieldColluders { factor: 0.05 }
                    };
                    sim.make_attacker(id, behavior);
                    if k % 2 == 0 {
                        sim.set_list_behavior(id, ListBehavior::PadFake { extra: 4 });
                    }
                }
            }
        }
    }

    fn ticks(self) -> usize {
        match self {
            Scenario::Baseline | Scenario::Faulty => 8,
            Scenario::Collusion => 10,
        }
    }

    fn run_crate(self, seed: u64) -> RunResult {
        let mut sim =
            Simulation::new(self.sim_config(), DdPolice::new(self.police_config(), N), seed);
        self.cast(&mut sim);
        sim.run(self.ticks())
    }

    fn run_reference(self, seed: u64) -> RunResult {
        let mut sim = Simulation::new(
            self.sim_config(),
            reference::RefPolice::new(self.police_config(), N),
            seed,
        );
        self.cast(&mut sim);
        sim.run(self.ticks())
    }
}

fn assert_runs_identical(a: &RunResult, b: &RunResult, what: &str) {
    // Field-by-field first, for readable failures; then the whole value.
    assert_eq!(a.series.success_rate, b.series.success_rate, "{what}: success_rate series");
    assert_eq!(a.series.response_time, b.series.response_time, "{what}: response_time series");
    assert_eq!(a.series.traffic, b.series.traffic, "{what}: traffic series");
    assert_eq!(
        a.series.control_traffic, b.series.control_traffic,
        "{what}: control_traffic series"
    );
    assert_eq!(a.series.drop_rate, b.series.drop_rate, "{what}: drop_rate series");
    assert_eq!(a.cut_log, b.cut_log, "{what}: cut log");
    assert_eq!(a.verdict_log, b.verdict_log, "{what}: verdict log");
    assert_eq!(a.summary, b.summary, "{what}: summary");
    assert_eq!(a, b, "{what}: full RunResult");
}

// --- Golden digests ---------------------------------------------------------

/// FNV-1a over the full `Debug` rendering of the result. Rust's `{:?}` for
/// floats is shortest-roundtrip, so two results digest equal iff they are
/// bit-for-bit equal; `RunResult` contains no hash-ordered containers, so the
/// rendering is deterministic.
fn digest_run(result: &RunResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{result:?}").bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digests of the pre-refactor engine, one per (scenario, seed), in
/// `Scenario::ALL` × `SEEDS` order. Captured with `print_golden_digests`.
const GOLDEN_DIGESTS: [[u64; 5]; 3] = [
    [
        0xab0d5f5a0e07bf51,
        0xd502a19eacd87e50,
        0x44b166205be3fcc4,
        0x10e4dd574f5dbc5e,
        0x483399d7ffb3f8d8,
    ], // baseline
    [
        0xc815bf248b336ea6,
        0xb2df0224fe9d94a0,
        0x04fe9355cccc8c79,
        0x395a0dbc0106b192,
        0x71eb622a5a361aab,
    ], // faulty
    [
        0x5314cb8fcd53ba2a,
        0xc84a82805716226b,
        0x8db22cf1ed82a465,
        0x0dc8f6ef43b4254e,
        0x1271a5decc80a09a,
    ], // collusion
];

#[test]
#[ignore = "digest capture helper; run with --ignored --nocapture to re-bless"]
fn print_golden_digests() {
    for scenario in Scenario::ALL {
        let digests: Vec<String> = SEEDS
            .iter()
            .map(|&seed| format!("0x{:016x}", digest_run(&scenario.run_crate(seed))))
            .collect();
        println!("    [{}], // {}", digests.join(", "), scenario.name());
    }
}

// --- The pins ---------------------------------------------------------------

#[test]
fn baseline_runs_match_reference_across_seeds() {
    for seed in SEEDS {
        let a = Scenario::Baseline.run_crate(seed);
        let b = Scenario::Baseline.run_reference(seed);
        assert_runs_identical(&a, &b, &format!("baseline seed {seed}"));
    }
}

#[test]
fn faulty_runs_match_reference_across_seeds() {
    for seed in SEEDS {
        let a = Scenario::Faulty.run_crate(seed);
        let b = Scenario::Faulty.run_reference(seed);
        assert_runs_identical(&a, &b, &format!("faulty seed {seed}"));
    }
}

#[test]
fn collusion_runs_match_reference_across_seeds() {
    for seed in SEEDS {
        let a = Scenario::Collusion.run_crate(seed);
        let b = Scenario::Collusion.run_reference(seed);
        assert_runs_identical(&a, &b, &format!("collusion seed {seed}"));
    }
}

#[test]
fn golden_digests_pin_pre_refactor_behavior() {
    for (s_idx, scenario) in Scenario::ALL.iter().enumerate() {
        for (d_idx, &seed) in SEEDS.iter().enumerate() {
            let got = digest_run(&scenario.run_crate(seed));
            let want = GOLDEN_DIGESTS[s_idx][d_idx];
            assert_eq!(
                got,
                want,
                "{} seed {seed}: engine output drifted from the pre-refactor golden \
                 digest (got 0x{got:016x}); if the change is intentional, re-bless via \
                 print_golden_digests",
                scenario.name()
            );
        }
    }
}

#[test]
fn scenarios_exercise_the_interesting_paths() {
    // Sanity that the pins cover real behavior, not empty runs: the
    // baseline must cut attackers, the faulty transport must actually
    // misbehave, and the collusion scenario must drive the verdict
    // lifecycle (quarantines and probes).
    let base = Scenario::Baseline.run_crate(42);
    assert!(base.summary.attackers_cut > 0, "baseline scenario never cut anyone");
    assert!(!base.verdict_log.is_empty(), "baseline scenario logged no verdicts");

    let faulty = Scenario::Faulty.run_crate(42);
    let r = &faulty.summary.resilience;
    assert!(
        r.lists_lost + r.lists_delayed + r.reports_stale_used + r.reports_assumed_zero > 0,
        "faulty scenario injected no transport faults"
    );

    let mut saw_lifecycle = false;
    for seed in SEEDS {
        let coll = Scenario::Collusion.run_crate(seed);
        if coll.summary.verdicts.quarantines > 0 || coll.summary.verdicts.readmission_probes > 0 {
            saw_lifecycle = true;
            break;
        }
    }
    assert!(saw_lifecycle, "collusion scenario never entered the readmission lifecycle");
}
