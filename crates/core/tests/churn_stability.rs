//! Churn hardening: defense state about departed identities must not leak.
//!
//! Before this PR, a peer that left or crashed kept living on inside every
//! former neighbor's defense state — exchanged-list snapshots, missing-list
//! grace streaks, and quarantine/probation clocks all survived the identity
//! they described, and a recycled slot inherited a stranger's record. These
//! tests pin the two reclamation paths (graceful `on_peer_departed`, TTL
//! sweep for crashes) and the end-to-end bounded-memory property.

use ddp_police::{DdPolice, DdPoliceConfig, ReadmissionPolicy, SuspectState};
use ddp_sim::{
    Actions, Defense, ListBehavior, Overlay, ReportBehavior, SessionConfig, SimConfig, Simulation,
    TickObservation,
};
use ddp_topology::{DynamicGraph, NodeId, TopologyConfig, TopologyModel};
use ddp_workload::BandwidthClass;

/// A 4-peer line-plus-spur overlay: 0–1, 0–2, 1–3. Peer 0 plays the suspect.
fn small_overlay() -> Overlay {
    let mut g = DynamicGraph::new(4);
    g.add_edge(NodeId(0), NodeId(1));
    g.add_edge(NodeId(0), NodeId(2));
    g.add_edge(NodeId(1), NodeId(3));
    Overlay::new(g, &[BandwidthClass::Ethernet; 4])
}

fn churn_cfg() -> DdPoliceConfig {
    DdPoliceConfig {
        readmission: ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() },
        suspect_ttl_ticks: 4,
        ..DdPoliceConfig::default()
    }
}

const HONEST: &[ReportBehavior] = &[ReportBehavior::Honest; 4];
const TRUTHFUL: &[ListBehavior] = &[ListBehavior::Truthful; 4];
const RUNS: &[bool] = &[true; 4];

fn obs<'a>(overlay: &'a Overlay, tick: u32, online: &'a [bool]) -> TickObservation<'a> {
    TickObservation {
        tick,
        overlay,
        online,
        runs_defense: RUNS,
        report_behavior: HONEST,
        list_behavior: TRUTHFUL,
        faults: None,
    }
}

/// Flood hard enough from peer 0 into peer 1 that observer 1 quarantines 0
/// on the first judged tick, then return the armed police instance.
fn quarantine_suspect_zero(overlay: &mut Overlay, online: &[bool]) -> DdPolice {
    let slot = overlay
        .neighbors(NodeId(0))
        .iter()
        .position(|h| h.peer == NodeId(1))
        .expect("0–1 edge exists");
    overlay.record_accept(NodeId(0), slot, 20_000);
    let mut police = DdPolice::new(churn_cfg(), 4);
    let mut actions = Actions::default();
    police.on_tick(&obs(overlay, 1, online), &mut actions);
    assert_eq!(actions.cuts, vec![(NodeId(1), NodeId(0))], "observer 1 cuts the flooder");
    let entry = police.verdicts().entry(NodeId(1), NodeId(0)).expect("verdict entry exists");
    assert!(
        matches!(entry.state, SuspectState::Quarantined { .. }),
        "readmission keeps the cut as a quarantine"
    );
    police
}

#[test]
fn graceful_departure_sweeps_all_state_about_the_identity() {
    let mut overlay = small_overlay();
    let online = vec![true; 4];
    let mut police = quarantine_suspect_zero(&mut overlay, &online);

    let (verdicts, snapshots) = police.state_footprint();
    assert!(verdicts >= 1);
    assert_eq!(snapshots, 6, "three edges announce in both directions");
    assert!(police.forbids_link(NodeId(1), NodeId(0)), "open quarantine vetoes re-linking");

    police.on_peer_departed(NodeId(0));

    assert_eq!(police.state_footprint().0, 0, "no verdict survives the departed suspect");
    // Peer 0's own view (snapshots of 1 and 2) and both snapshots *of* peer 0
    // are gone; only the 1↔3 pair may remain.
    assert_eq!(police.state_footprint().1, 2);
    assert!(
        !police.forbids_link(NodeId(1), NodeId(0)),
        "a recycled slot must not inherit its predecessor's quarantine"
    );
}

#[test]
fn crashed_suspects_clocked_state_expires_instead_of_probing_a_dead_slot() {
    let mut overlay = small_overlay();
    let online = vec![true; 4];
    let mut police = quarantine_suspect_zero(&mut overlay, &online);
    let SuspectState::Quarantined { until, .. } =
        police.verdicts().entry(NodeId(1), NodeId(0)).unwrap().state
    else {
        unreachable!()
    };
    assert_eq!(until, 5, "cut at tick 1 + default base backoff 4");

    // Peer 0 crashes: no goodbye ran, its entry waits on the sweep. The
    // quarantine clock is honored while pending, then collected when due —
    // the readmission probe must never fire toward the dead address.
    let mut offline = online.clone();
    offline[0] = false;
    overlay.reset_tick_counters();
    for tick in 2..=4 {
        let mut actions = Actions::default();
        police.on_tick(&obs(&overlay, tick, &offline), &mut actions);
        assert!(actions.reconnects.is_empty());
        assert_eq!(police.state_footprint().0, 1, "clock not due at tick {tick}");
    }
    let mut actions = Actions::default();
    police.on_tick(&obs(&overlay, 5, &offline), &mut actions);
    assert!(actions.reconnects.is_empty(), "probe collected, not fired into the dead slot");
    assert_eq!(police.state_footprint().0, 0, "due clock about an offline suspect is swept");
}

#[test]
fn ttl_disabled_preserves_the_static_membership_behavior() {
    // With the default `suspect_ttl_ticks = u32::MAX` the sweep never runs:
    // a quarantine about an offline suspect survives to fire its probe —
    // exactly the pre-PR (paper, static membership) lifecycle.
    let mut overlay = small_overlay();
    let online = vec![true; 4];
    let slot = overlay.neighbors(NodeId(0)).iter().position(|h| h.peer == NodeId(1)).unwrap();
    overlay.record_accept(NodeId(0), slot, 20_000);
    let cfg = DdPoliceConfig {
        readmission: ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() },
        ..DdPoliceConfig::default()
    };
    let mut police = DdPolice::new(cfg, 4);
    let mut actions = Actions::default();
    police.on_tick(&obs(&overlay, 1, &online), &mut actions);
    let mut offline = online.clone();
    offline[0] = false;
    overlay.reset_tick_counters();
    for tick in 2..=5 {
        let mut actions = Actions::default();
        police.on_tick(&obs(&overlay, tick, &offline), &mut actions);
        if tick == 5 {
            assert_eq!(actions.reconnects, vec![(NodeId(1), NodeId(0))], "legacy probe fires");
        }
    }
}

/// The end-to-end bounded-memory regression: a long run under the session
/// model (heavy join/leave/crash traffic, slots recycled and grown) must not
/// accumulate defense state. The footprint at the end stays within a small
/// factor of the mid-run footprint and within fixed per-slot budgets.
#[test]
fn long_churn_run_keeps_defense_state_bounded() {
    let cfg = SimConfig {
        topology: TopologyConfig { n: 150, model: TopologyModel::BarabasiAlbert { m: 3 } },
        churn: false,
        session: Some(SessionConfig::steady_state(150, 6.0)),
        ..SimConfig::default()
    };
    let police_cfg = DdPoliceConfig {
        readmission: ReadmissionPolicy { enabled: true, ..ReadmissionPolicy::default() },
        suspect_ttl_ticks: 8,
        ..DdPoliceConfig::default()
    };
    let mut sim = Simulation::new(cfg, DdPolice::new(police_cfg, 150), 42);
    for a in [5u32, 50, 100] {
        sim.make_attacker(NodeId(a), ReportBehavior::Honest);
    }

    for _ in 0..40 {
        sim.step();
    }
    let (mid_verdicts, mid_snapshots) = sim.defense().state_footprint();
    for _ in 0..40 {
        sim.step();
    }
    let (fin_verdicts, fin_snapshots) = sim.defense().state_footprint();

    let stats = sim.session_stats();
    assert!(stats.joins > 50 && stats.leaves + stats.crashes > 50, "churn actually happened");

    // Verdict entries track *live* suspicion only: a handful of attackers
    // plus transient watches — nowhere near one per identity ever seen.
    let slots = sim.node_count();
    assert!(
        fin_verdicts <= slots / 4 + 8,
        "verdict state leaked: {fin_verdicts} entries over {slots} slots"
    );
    assert!(
        fin_verdicts <= 2 * mid_verdicts + 16,
        "verdict state grew between samples: {mid_verdicts} -> {fin_verdicts}"
    );
    // Snapshots are bounded by live directed edges (mean degree ~6), not by
    // the total number of identities that ever churned through.
    assert!(
        fin_snapshots <= 10 * slots,
        "snapshot state leaked: {fin_snapshots} snapshots over {slots} slots"
    );
    assert!(
        fin_snapshots <= 2 * mid_snapshots + 64,
        "snapshot state grew between samples: {mid_snapshots} -> {fin_snapshots}"
    );
}
