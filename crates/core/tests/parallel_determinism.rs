//! Serial-vs-parallel differential suite (the tentpole's pin).
//!
//! The sharded tick engine claims byte-identity: a run at any worker count
//! produces the same per-tick state hash (FNV-1a over the complete snapshot
//! payload), the same judgment trace, and the same final results as the
//! serial engine. This suite sweeps the shared scenario matrix
//! ([`ddp_oracle::scenario_matrix`]) across worker counts and asserts
//! exactly that — and then proves it has teeth by flipping the engine's
//! unordered-reduction sabotage lever and requiring the resulting
//! reduction-order race to be *detected*.

use ddp_oracle::{run_parallel_lockstep, scenario_matrix, ScenarioSpec};

/// Worker counts under test. 2 = minimal sharding, 4 = the CI target width;
/// both exceed this container's single hardware core on purpose — identity
/// must hold regardless of how the OS schedules the workers.
const WIDTHS: [usize; 2] = [2, 4];

#[test]
fn full_matrix_is_thread_invariant() {
    for (label, spec) in scenario_matrix() {
        for threads in WIDTHS {
            if let Err(d) = run_parallel_lockstep(&spec, threads, false) {
                panic!(
                    "{label}: parallel run diverged from serial at {threads} threads: {d}\nspec:\n{}",
                    spec.to_json()
                );
            }
        }
    }
}

#[test]
fn thread_count_one_is_the_serial_engine() {
    // Width 1 must take the serial path bit for bit — no partitioning
    // overhead is allowed to leak into observable state.
    for (label, spec) in scenario_matrix() {
        if let Err(d) = run_parallel_lockstep(&spec, 1, false) {
            panic!("{label}: width-1 twin diverged: {d}");
        }
    }
}

#[test]
fn random_specs_are_thread_invariant() {
    for fuzz_seed in 0..12 {
        let spec = ScenarioSpec::random(fuzz_seed);
        for threads in WIDTHS {
            if let Err(d) = run_parallel_lockstep(&spec, threads, false) {
                panic!(
                    "fuzz seed {fuzz_seed} diverged at {threads} threads: {d}\nspec:\n{}",
                    spec.to_json()
                );
            }
        }
    }
}

/// A scenario busy enough that several partitions judge observers of the
/// same suspects every tick: the reduction order visibly decides who pays
/// each suspect's `k(k-1)` exchange charge and the cut/reconnect ordering.
fn busy_spec() -> ScenarioSpec {
    ScenarioSpec {
        peers: 120,
        agents: 6,
        readmission: true,
        hys_window: 2,
        hys_required: 2,
        ticks: 12,
        ..ScenarioSpec::default()
    }
}

#[test]
fn unordered_reduction_mutation_is_caught() {
    // The mutation check: a planted reduction-order race (partition merge
    // reversed) must be detected in at least one scenario — otherwise this
    // suite could not catch a real one. Not every matrix entry must diverge
    // (a quiet overlay has nothing to race on), but across the matrix plus
    // the crafted busy spec the race must surface.
    let mut specs = scenario_matrix();
    specs.push(("busy crafted", busy_spec()));
    let mut caught = 0usize;
    let mut ran = 0usize;
    for (_, spec) in &specs {
        ran += 1;
        if run_parallel_lockstep(spec, 4, true).is_err() {
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "reversed reduction went undetected across all {ran} scenarios — the suite lost its teeth"
    );
}

#[test]
fn sabotage_lever_is_inert_at_width_one() {
    // The lever models a *parallel* reduction bug; with one worker there is
    // no reduction and flipping it must change nothing.
    let spec = busy_spec();
    run_parallel_lockstep(&spec, 1, true)
        .unwrap_or_else(|d| panic!("sabotage leaked into the serial path: {d}"));
}

#[test]
fn busy_spec_diverges_under_sabotage() {
    // The crafted spec specifically must catch the race: this pins the
    // mutation check's sensitivity so a future matrix reshuffle cannot
    // silently reduce it to "caught somewhere, maybe".
    let spec = busy_spec();
    run_parallel_lockstep(&spec, 4, true)
        .expect_err("busy spec must expose the reversed reduction");
}
