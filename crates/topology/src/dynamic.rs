//! Mutable overlay graph with O(1) edge removal and reciprocal indices.
//!
//! The simulator mutates the overlay constantly: peers join and leave (churn,
//! §3.5 of the paper) and DD-POLICE disconnects suspected DDoS agents. Each
//! adjacency entry is a [`Half`] edge that records, besides the peer id, the
//! position (`ridx`) of the *twin* entry in the peer's adjacency list. This
//! makes `remove_edge` O(degree) for the lookup but O(1) for the splice, and —
//! crucially for the simulator — lets per-directed-edge traffic counters be
//! stored positionally (`counter[u][slot]`) and accessed from either side of
//! the edge without hashing.
//!
//! Adjacency rows live in a single flat [`SegVec`] arena rather than a
//! `Vec<Vec<Half>>`: the flooding hot loop touches every half-edge of every
//! frontier node each tick, and one contiguous allocation removes a pointer
//! chase (and an allocator round-trip per node) from that path. Slot
//! evolution under `swap_remove` is bit-identical to the nested-`Vec`
//! layout, so positional counter mirrors remain valid.

use crate::{Graph, NodeId, SegVec};

/// One directed half of an undirected overlay connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Half {
    /// The peer at the far end of this connection.
    pub peer: NodeId,
    /// Index of the twin half-edge inside `peer`'s adjacency list.
    pub ridx: u32,
}

/// Padding value for unused arena headroom; never observable via `neighbors`.
const HOLE: Half = Half { peer: NodeId(u32::MAX), ridx: u32::MAX };

/// A mutable undirected graph supporting the overlay's churn operations.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    adj: SegVec<Half>,
    edge_count: usize,
}

impl Default for DynamicGraph {
    fn default() -> Self {
        DynamicGraph::new(0)
    }
}

impl DynamicGraph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        DynamicGraph { adj: SegVec::new(n, HOLE), edge_count: 0 }
    }

    /// Build from an immutable snapshot.
    pub fn from_graph(g: &Graph) -> Self {
        let mut dg = DynamicGraph::new(g.node_count());
        for (u, v) in g.edges() {
            dg.add_edge(u, v);
        }
        dg
    }

    /// Build from an undirected edge list over `n` nodes (duplicates ignored).
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut dg = DynamicGraph::new(n);
        for &(u, v) in edges {
            dg.add_edge(u, v);
        }
        dg
    }

    /// Rebuild a graph from explicit per-node adjacency rows, preserving
    /// slot order and twin indices verbatim — the snapshot-restore
    /// constructor. Slot order is observable engine state (emissions and
    /// positional counter mirrors index by slot), so this must NOT
    /// canonicalize; callers restoring untrusted bytes should follow up with
    /// [`DynamicGraph::check_invariants`].
    pub fn from_rows(rows: &[Vec<Half>]) -> Self {
        let lens: Vec<usize> = rows.iter().map(Vec::len).collect();
        let mut adj = SegVec::from_lens(&lens, HOLE);
        for (i, row) in rows.iter().enumerate() {
            adj.slice_mut(i).copy_from_slice(row);
        }
        let halves: usize = lens.iter().sum();
        DynamicGraph { adj, edge_count: halves / 2 }
    }

    /// Number of node slots (including isolated / departed nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.rows()
    }

    /// Number of undirected edges currently present.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Append a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push_row();
        NodeId::from_index(self.adj.rows() - 1)
    }

    /// Adjacency of `u` as half-edges.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Half] {
        self.adj.slice(u.index())
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj.len_of(u.index())
    }

    /// Slot of `v` inside `u`'s adjacency list, if connected.
    pub fn slot_of(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.neighbors(u).iter().position(|h| h.peer == v)
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).iter().any(|h| h.peer == b)
    }

    /// Connect `u` and `v`. Returns `false` (and does nothing) if the edge
    /// already exists or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || self.contains_edge(u, v) {
            return false;
        }
        let iu = self.adj.len_of(u.index()) as u32;
        let iv = self.adj.len_of(v.index()) as u32;
        self.adj.push(u.index(), Half { peer: v, ridx: iv });
        self.adj.push(v.index(), Half { peer: u, ridx: iu });
        self.edge_count += 1;
        true
    }

    /// Disconnect `u` and `v`. Returns `false` if they were not connected.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(slot) = self.slot_of(u, v) else { return false };
        self.remove_edge_at(u, slot);
        true
    }

    /// Disconnect the edge occupying `slot` in `u`'s adjacency list.
    ///
    /// Returns the peer that was disconnected.
    pub fn remove_edge_at(&mut self, u: NodeId, slot: usize) -> NodeId {
        let half = self.adj.get(u.index(), slot);
        self.detach_half(half.peer, half.ridx as usize);
        self.detach_half(u, slot);
        self.edge_count -= 1;
        half.peer
    }

    /// Remove every edge incident to `u` (peer departure). Returns the peers
    /// that were disconnected.
    pub fn isolate(&mut self, u: NodeId) -> Vec<NodeId> {
        let mut freed = Vec::with_capacity(self.degree(u));
        while self.adj.len_of(u.index()) > 0 {
            let half = self.adj.get(u.index(), self.adj.len_of(u.index()) - 1);
            self.detach_half(half.peer, half.ridx as usize);
            self.adj.pop(u.index());
            self.edge_count -= 1;
            freed.push(half.peer);
        }
        freed
    }

    /// swap_remove entry `slot` from `who`'s adjacency and repair the moved
    /// entry's twin pointer.
    fn detach_half(&mut self, who: NodeId, slot: usize) {
        self.adj.swap_remove(who.index(), slot);
        if slot < self.adj.len_of(who.index()) {
            // The former last element now lives at `slot`; its twin must be
            // told about the move.
            let moved = self.adj.get(who.index(), slot);
            let mut twin = self.adj.get(moved.peer.index(), moved.ridx as usize);
            twin.ridx = slot as u32;
            self.adj.set(moved.peer.index(), moved.ridx as usize, twin);
        }
    }

    /// Iterate each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            let u = NodeId::from_index(u);
            self.neighbors(u).iter().filter(move |h| u < h.peer).map(move |h| (u, h.peer))
        })
    }

    /// Snapshot to CSR form.
    pub fn to_graph(&self) -> Graph {
        let edges: Vec<_> = self.edges().collect();
        Graph::from_edges(self.node_count(), &edges)
    }

    /// Verify the reciprocal-index invariant (twin pointers consistent, no
    /// self loops, no duplicate edges). Intended for tests and debug builds.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for u in 0..self.node_count() {
            let u = NodeId::from_index(u);
            let list = self.neighbors(u);
            for (slot, h) in list.iter().enumerate() {
                if h.peer == u {
                    return Err(format!("self loop at {u}"));
                }
                let twin_list = self.neighbors(h.peer);
                let Some(twin) = twin_list.get(h.ridx as usize) else {
                    return Err(format!("{u} slot {slot}: twin index {} out of range", h.ridx));
                };
                if twin.peer != u || twin.ridx as usize != slot {
                    return Err(format!(
                        "broken twin: {u}[{slot}] -> {}[{}] -> {}[{}]",
                        h.peer, h.ridx, twin.peer, twin.ridx
                    ));
                }
                counted += 1;
            }
            let mut peers: Vec<_> = list.iter().map(|h| h.peer).collect();
            peers.sort_unstable();
            peers.dedup();
            if peers.len() != list.len() {
                return Err(format!("duplicate edges at {u}"));
            }
        }
        if counted != self.edge_count * 2 {
            return Err(format!(
                "edge_count {} inconsistent with {} half edges",
                self.edge_count, counted
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_and_remove_edge_roundtrip() {
        let mut g = DynamicGraph::new(3);
        assert!(g.add_edge(nid(0), nid(1)));
        assert!(!g.add_edge(nid(0), nid(1)), "duplicate add must fail");
        assert!(!g.add_edge(nid(1), nid(0)), "reverse duplicate add must fail");
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(nid(1), nid(0)));
        assert!(!g.remove_edge(nid(0), nid(1)));
        assert_eq!(g.edge_count(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn self_edge_rejected() {
        let mut g = DynamicGraph::new(2);
        assert!(!g.add_edge(nid(1), nid(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn swap_remove_repairs_twin_pointers() {
        // Node 0 connected to 1, 2, 3; removing the first edge forces a
        // swap_remove that moves entry for 3 into slot 0.
        let mut g = DynamicGraph::new(4);
        g.add_edge(nid(0), nid(1));
        g.add_edge(nid(0), nid(2));
        g.add_edge(nid(0), nid(3));
        g.check_invariants().unwrap();
        assert!(g.remove_edge(nid(0), nid(1)));
        g.check_invariants().unwrap();
        assert!(g.contains_edge(nid(0), nid(3)));
        assert!(g.contains_edge(nid(0), nid(2)));
        // Removing via the far side must also work after the move.
        assert!(g.remove_edge(nid(3), nid(0)));
        g.check_invariants().unwrap();
        assert_eq!(g.degree(nid(0)), 1);
    }

    #[test]
    fn isolate_removes_all_incident_edges() {
        let mut g = DynamicGraph::new(5);
        for v in 1..5 {
            g.add_edge(nid(0), nid(v));
        }
        g.add_edge(nid(1), nid(2));
        let freed = g.isolate(nid(0));
        assert_eq!(freed.len(), 4);
        assert_eq!(g.degree(nid(0)), 0);
        assert_eq!(g.edge_count(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = DynamicGraph::new(1);
        let n = g.add_node();
        assert_eq!(n, nid(1));
        assert!(g.add_edge(nid(0), n));
        g.check_invariants().unwrap();
    }

    #[test]
    fn to_graph_snapshot_matches() {
        let mut g = DynamicGraph::new(4);
        g.add_edge(nid(0), nid(1));
        g.add_edge(nid(2), nid(3));
        g.add_edge(nid(1), nid(2));
        let csr = g.to_graph();
        assert_eq!(csr.edge_count(), 3);
        assert!(csr.contains_edge(nid(1), nid(2)));
    }

    #[test]
    fn remove_edge_at_returns_peer() {
        let mut g = DynamicGraph::new(3);
        g.add_edge(nid(0), nid(2));
        let peer = g.remove_edge_at(nid(0), 0);
        assert_eq!(peer, nid(2));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn from_rows_preserves_slot_order_and_twins() {
        // Drive a graph through churn (so swap_remove scrambled slot order),
        // then rebuild from its rows: every row must match verbatim.
        let mut g = DynamicGraph::new(6);
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (2, 4), (3, 5)] {
            g.add_edge(nid(u), nid(v));
        }
        g.remove_edge(nid(0), nid(1));
        g.isolate(nid(4));
        let rows: Vec<Vec<Half>> =
            (0..g.node_count()).map(|u| g.neighbors(NodeId::from_index(u)).to_vec()).collect();
        let rebuilt = DynamicGraph::from_rows(&rows);
        rebuilt.check_invariants().unwrap();
        assert_eq!(rebuilt.edge_count(), g.edge_count());
        for u in 0..g.node_count() {
            let u = NodeId::from_index(u);
            assert_eq!(rebuilt.neighbors(u), g.neighbors(u), "row {u} must match verbatim");
        }
    }

    #[test]
    fn heavy_churn_keeps_invariants_over_flat_arena() {
        // Repeated add/remove/isolate cycles force row relocations and
        // compaction inside the SegVec arena; twin pointers must survive.
        let mut g = DynamicGraph::new(64);
        let mut toggle = 0u64;
        for round in 0..50u32 {
            for u in 0..64u32 {
                let v = (u * 7 + round) % 64;
                toggle = toggle.wrapping_mul(6364136223846793005).wrapping_add(round as u64);
                if toggle & 1 == 0 {
                    g.add_edge(nid(u), nid(v));
                } else {
                    g.remove_edge(nid(u), nid(v));
                }
            }
            if round % 7 == 0 {
                g.isolate(nid(round % 64));
            }
            g.check_invariants().unwrap();
        }
    }
}
