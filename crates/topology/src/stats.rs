//! Graph statistics used for topology validation and reach estimation.

use crate::{DynamicGraph, NodeId};
use std::collections::VecDeque;

/// Mean degree over all node slots.
pub fn mean_degree(g: &DynamicGraph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    (2 * g.edge_count()) as f64 / g.node_count() as f64
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &DynamicGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in 0..g.node_count() {
        let d = g.degree(NodeId::from_index(u));
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Connected components, each as a list of node ids. Isolated nodes form
/// singleton components.
pub fn connected_components(g: &DynamicGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut comp = vec![NodeId::from_index(start)];
        queue.push_back(NodeId::from_index(start));
        while let Some(u) = queue.pop_front() {
            for h in g.neighbors(u) {
                if !seen[h.peer.index()] {
                    seen[h.peer.index()] = true;
                    comp.push(h.peer);
                    queue.push_back(h.peer);
                }
            }
        }
        comps.push(comp);
    }
    comps
}

/// Number of nodes reachable from `src` within `ttl` hops (excluding `src`).
///
/// This is the maximal audience of a TTL-limited flooded query and is used to
/// calibrate simulation TTLs so that the unattacked network is not saturated.
pub fn reach_within(g: &DynamicGraph, src: NodeId, ttl: usize) -> usize {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    let mut count = 0usize;
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        if d as usize >= ttl {
            continue;
        }
        for h in g.neighbors(u) {
            if dist[h.peer.index()] == u32::MAX {
                dist[h.peer.index()] = d + 1;
                count += 1;
                queue.push_back(h.peer);
            }
        }
    }
    count
}

/// Eccentricity of `src` (longest shortest path from it) within its component.
pub fn eccentricity(g: &DynamicGraph, src: NodeId) -> usize {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    let mut ecc = 0usize;
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        ecc = ecc.max(d as usize);
        for h in g.neighbors(u) {
            if dist[h.peer.index()] == u32::MAX {
                dist[h.peer.index()] = d + 1;
                queue.push_back(h.peer);
            }
        }
    }
    ecc
}

/// Lower bound of the diameter via the classic double-BFS sweep.
pub fn diameter_estimate(g: &DynamicGraph) -> usize {
    if g.node_count() == 0 {
        return 0;
    }
    // BFS from node 0, find the farthest node, BFS again from there.
    let far = farthest_from(g, NodeId(0)).0;
    eccentricity(g, far)
}

fn farthest_from(g: &DynamicGraph, src: NodeId) -> (NodeId, usize) {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    let mut best = (src, 0usize);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()] as usize;
        if d > best.1 {
            best = (u, d);
        }
        for h in g.neighbors(u) {
            if dist[h.peer.index()] == u32::MAX {
                dist[h.peer.index()] = dist[u.index()] + 1;
                queue.push_back(h.peer);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
        }
        g
    }

    #[test]
    fn mean_degree_of_path() {
        let g = path_graph(5);
        assert!((mean_degree(&g) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn degree_histogram_of_star() {
        let mut g = DynamicGraph::new(5);
        for v in 1..5 {
            g.add_edge(NodeId(0), NodeId(v as u32));
        }
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = DynamicGraph::new(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn reach_within_ttl_on_path() {
        let g = path_graph(10);
        assert_eq!(reach_within(&g, NodeId(0), 3), 3);
        assert_eq!(reach_within(&g, NodeId(5), 2), 4);
        assert_eq!(reach_within(&g, NodeId(0), 0), 0);
        assert_eq!(reach_within(&g, NodeId(0), 100), 9);
    }

    #[test]
    fn diameter_of_path() {
        let g = path_graph(7);
        assert_eq!(diameter_estimate(&g), 6);
        assert_eq!(eccentricity(&g, NodeId(3)), 3);
    }
}
