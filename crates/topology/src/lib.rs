//! Overlay topology generation and graph data structures.
//!
//! The DD-POLICE paper (§3.5) evaluates on BRITE-generated logical topologies
//! of 20,000 peers where "most peers have 3 or 4 logical neighbors, and a few
//! peers have tens of direct neighbors", with a mean degree of 6. BRITE is not
//! available as a Rust library, so this crate provides generators that
//! reproduce the same degree statistics:
//!
//! * [`generate::barabasi_albert`] — preferential attachment; power-law tail,
//!   minimum degree `m`, mean degree `2m`. With `m = 3` this matches the
//!   paper's description directly and is the default.
//! * [`generate::waxman`] — the geometric model BRITE implements natively.
//! * [`generate::erdos_renyi`] — a uniform-degree control topology.
//!
//! Two graph representations are provided:
//!
//! * [`Graph`] — a compact CSR snapshot for read-only analysis,
//! * [`DynamicGraph`] — the mutable overlay used by the simulator, with O(1)
//!   edge removal and reciprocal-index bookkeeping so that per-directed-edge
//!   traffic counters can be stored positionally.

pub mod dynamic;
pub mod generate;
pub mod graph;
pub mod partition;
pub mod segvec;
pub mod stats;

pub use dynamic::{DynamicGraph, Half};
pub use generate::{TopologyConfig, TopologyModel};
pub use graph::Graph;
pub use partition::{cross_partition_edges, Partition};
pub use segvec::SegVec;

/// Identifier of a peer (node) in the overlay.
///
/// Plain `u32` newtype: the simulator keeps all per-node state in flat arrays
/// indexed by `NodeId::index()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The array index corresponding to this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from an array index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}
