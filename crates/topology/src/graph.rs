//! Compact CSR (compressed sparse row) snapshot of an undirected graph.
//!
//! Used for read-only analysis (degree statistics, connectivity, reach
//! estimation). The simulator itself works on [`crate::DynamicGraph`].

use crate::NodeId;

/// An immutable undirected graph in CSR form.
///
/// Each undirected edge `{u, v}` appears twice in the adjacency array, once
/// under `u` and once under `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u32>,
    adjacency: Vec<NodeId>,
}

impl Graph {
    /// Build a CSR graph from an undirected edge list over `n` nodes.
    ///
    /// Self-loops are rejected; duplicate edges are deduplicated.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range `0..n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!(u.index() < n && v.index() < n, "edge endpoint out of range");
            if u == v {
                continue; // logical overlays have no self-connections
            }
            pairs.push((u.0, v.0));
            pairs.push((v.0, u.0));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut offsets = vec![0u32; n + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adjacency = pairs.into_iter().map(|(_, v)| NodeId(v)).collect();
        Graph { offsets, adjacency }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Neighbors of `u`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            let u = NodeId::from_index(u);
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// All node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = Graph::from_edges(4, &[(nid(0), nid(1)), (nid(1), nid(2)), (nid(0), nid(3))]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(nid(0)), &[nid(1), nid(3)]);
        assert_eq!(g.neighbors(nid(1)), &[nid(0), nid(2)]);
        assert_eq!(g.neighbors(nid(2)), &[nid(1)]);
        assert_eq!(g.neighbors(nid(3)), &[nid(0)]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = Graph::from_edges(3, &[(nid(0), nid(1)), (nid(1), nid(0)), (nid(0), nid(1))]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(nid(0)), 1);
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = Graph::from_edges(2, &[(nid(0), nid(0)), (nid(0), nid(1))]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(nid(0)), &[nid(1)]);
    }

    #[test]
    fn contains_edge_is_symmetric() {
        let g = Graph::from_edges(3, &[(nid(0), nid(2))]);
        assert!(g.contains_edge(nid(0), nid(2)));
        assert!(g.contains_edge(nid(2), nid(0)));
        assert!(!g.contains_edge(nid(0), nid(1)));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = Graph::from_edges(4, &[(nid(0), nid(1)), (nid(1), nid(2)), (nid(2), nid(3))]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(nid(0), nid(1)), (nid(1), nid(2)), (nid(2), nid(3))]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let _ = Graph::from_edges(2, &[(nid(0), nid(5))]);
    }
}
