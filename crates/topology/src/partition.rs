//! Contiguous node partitions for the deterministic parallel tick engine.
//!
//! The simulator shards per-peer work (traffic accounting, list exchange,
//! the shared-judgment fast path) across a worker pool. Determinism rests on
//! one structural property: every partition is a **contiguous ascending
//! range** of node indices, so concatenating per-partition results in
//! partition order reproduces the serial ascending-id iteration exactly —
//! no sorting, no tie-breaking, no dependence on which worker ran first.
//!
//! Ranges are balanced by per-node weight (degree + 1 for adjacency-shaped
//! work): each boundary advances until its partition holds roughly
//! `total_weight / parts`, which keeps hub-heavy prefixes of a preferential-
//! attachment overlay from serializing the whole tick on worker 0.

use crate::dynamic::DynamicGraph;
use crate::NodeId;
use std::ops::Range;

/// A partition of node slots `0..n` into at most `parts` contiguous ranges.
///
/// Invariants (pinned by the proptests in `tests/proptest_partition.rs`):
/// ranges are disjoint, sorted, cover `0..n` exactly, and every range except
/// possibly trailing empty ones is non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Range boundaries: partition `p` is `bounds[p]..bounds[p + 1]`.
    bounds: Vec<usize>,
}

impl Partition {
    /// Split `0..n` into up to `parts` ranges of near-equal length.
    pub fn even(n: usize, parts: usize) -> Self {
        Partition::balanced_by(n, parts, |_| 1)
    }

    /// Split `0..n` into up to `parts` ranges balanced by `weight(i)`.
    /// Weights shape the split only; a zero-weight node still occupies a
    /// slot in exactly one range.
    pub fn balanced_by(n: usize, parts: usize, weight: impl Fn(usize) -> u64) -> Self {
        let parts = parts.max(1);
        let total: u64 = (0..n).map(&weight).sum();
        let mut bounds = Vec::with_capacity(parts + 1);
        bounds.push(0);
        let mut acc = 0u64;
        let mut next = 0usize;
        for p in 0..parts.saturating_sub(1) {
            // Target cumulative weight at the end of partition p. Integer
            // rounding is deterministic; the last partition absorbs slack.
            let target = total * (p as u64 + 1) / parts as u64;
            while next < n && acc < target {
                acc += weight(next);
                next += 1;
            }
            bounds.push(next);
        }
        bounds.push(n);
        Partition { bounds }
    }

    /// Split the graph's node slots balanced by `degree + 1` — the cost
    /// shape of per-observer adjacency scans (the +1 keeps isolated slots
    /// from collapsing into one range).
    pub fn by_degree(graph: &DynamicGraph, parts: usize) -> Self {
        Partition::balanced_by(graph.node_count(), parts, |i| {
            graph.degree(NodeId::from_index(i)) as u64 + 1
        })
    }

    /// Number of ranges (some may be empty when `parts > n`).
    pub fn parts(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of slots covered.
    pub fn len(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    /// Whether the partition covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot range of partition `p`.
    pub fn range(&self, p: usize) -> Range<usize> {
        self.bounds[p]..self.bounds[p + 1]
    }

    /// All ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.parts()).map(|p| self.range(p))
    }

    /// The interior boundaries plus both ends — the exact split points for
    /// `split_at_mut`-style sharding of a length-`n` slice.
    pub fn boundaries(&self) -> &[usize] {
        &self.bounds
    }

    /// Which partition slot `i` belongs to.
    pub fn part_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        // partition_point returns the count of bounds <= i; bounds[0] = 0 is
        // always <= i, so subtracting 1 lands on the owning range even when
        // empty ranges share a boundary.
        self.bounds.partition_point(|&b| b <= i) - 1
    }
}

/// Per-partition lists of cross-partition directed half-edges: entry `p`
/// holds every `(u, v)` with `u` in partition `p` and `v` elsewhere, in
/// ascending `(u, slot)` order. Symmetric by construction — `(u, v)` in
/// `p(u)`'s list has its twin `(v, u)` in `p(v)`'s — which the proptests
/// pin, because the merge step of the parallel tick relies on every
/// cross-partition judgment being visible from both sides.
pub fn cross_partition_edges(graph: &DynamicGraph, part: &Partition) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut out = vec![Vec::new(); part.parts()];
    for (p, range) in part.ranges().enumerate() {
        for u_idx in range {
            let u = NodeId::from_index(u_idx);
            for h in graph.neighbors(u) {
                if part.part_of(h.peer.index()) != p {
                    out[p].push((u, h.peer));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_exactly() {
        let p = Partition::even(10, 3);
        let ranges: Vec<_> = p.ranges().collect();
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 10);
        assert_eq!(p.range(0).start, 0);
        assert_eq!(p.range(2).end, 10);
    }

    #[test]
    fn more_parts_than_slots_leaves_empty_tails() {
        let p = Partition::even(2, 5);
        assert_eq!(p.parts(), 5);
        let covered: usize = p.ranges().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
        for i in 0..2 {
            let owner = p.part_of(i);
            assert!(p.range(owner).contains(&i));
        }
    }

    #[test]
    fn zero_slots_is_all_empty() {
        let p = Partition::even(0, 4);
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert!(p.ranges().all(|r| r.is_empty()));
    }

    #[test]
    fn part_of_matches_ranges() {
        let p = Partition::balanced_by(100, 7, |i| (i % 13) as u64);
        for i in 0..100 {
            assert!(p.range(p.part_of(i)).contains(&i), "slot {i}");
        }
    }

    #[test]
    fn degree_balancing_splits_hub_heavy_prefix() {
        // Node 0 is a hub with weight dwarfing the rest; degree balancing
        // must give partition 0 little beyond the hub itself.
        let mut g = DynamicGraph::new(100);
        for v in 1..60u32 {
            g.add_edge(NodeId(0), NodeId(v));
        }
        let even = Partition::even(100, 4);
        let deg = Partition::by_degree(&g, 4);
        assert_eq!(even.range(0).len(), 25);
        assert!(
            deg.range(0).len() < even.range(0).len(),
            "hub partition must shrink: {:?}",
            deg.boundaries()
        );
        assert_eq!(deg.ranges().map(|r| r.len()).sum::<usize>(), 100);
    }

    #[test]
    fn cross_edges_are_symmetric_and_only_cross() {
        let mut g = DynamicGraph::new(8);
        for (u, v) in [(0u32, 1), (1, 5), (2, 6), (3, 4), (6, 7)] {
            g.add_edge(NodeId(u), NodeId(v));
        }
        let p = Partition::even(8, 2); // {0..4}, {4..8}
        let cross = cross_partition_edges(&g, &p);
        let all: Vec<(NodeId, NodeId)> = cross.iter().flatten().copied().collect();
        for &(u, v) in &all {
            assert_ne!(p.part_of(u.index()), p.part_of(v.index()));
            assert!(all.contains(&(v, u)), "missing twin of ({u}, {v})");
        }
        // (0,1) and (3,4)/(1,5)/(2,6): only edges spanning the boundary.
        assert!(all.contains(&(NodeId(1), NodeId(5))));
        assert!(!all.contains(&(NodeId(0), NodeId(1))));
        assert!(!all.contains(&(NodeId(6), NodeId(7))));
    }
}
