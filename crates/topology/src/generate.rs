//! Topology generators substituting for BRITE (§3.5 of the paper).
//!
//! The paper's topologies have 20,000 peers, most with 3–4 neighbors, a few
//! with tens, mean degree 6. [`barabasi_albert`] with `m = 3` reproduces this
//! profile; [`waxman`] is the geometric model BRITE itself implements;
//! [`erdos_renyi`] is a uniform control.

use crate::{DynamicGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which generative model to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyModel {
    /// Preferential attachment with `m` edges per arriving node.
    BarabasiAlbert { m: usize },
    /// Waxman geometric random graph with parameters `alpha`, `beta`.
    Waxman { alpha: f64, beta: f64 },
    /// Uniform random graph with the requested mean degree.
    ErdosRenyi { mean_degree: f64 },
    /// Two-tier super-peer overlay (the paper's §1 notes flooding runs
    /// "among peers or among super-peers"): a fraction of nodes form a
    /// preferential-attachment core, every other node attaches to one core
    /// member as a leaf.
    SuperPeer { super_fraction: f64, core_m: usize },
}

impl Default for TopologyModel {
    fn default() -> Self {
        // Mean degree 2m = 6, minimum degree 3: the paper's profile.
        TopologyModel::BarabasiAlbert { m: 3 }
    }
}

/// Full description of a topology to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyConfig {
    /// Number of peers.
    pub n: usize,
    /// Generative model.
    pub model: TopologyModel,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig { n: 2_000, model: TopologyModel::default() }
    }
}

impl TopologyConfig {
    /// Paper-scale configuration: 20,000 peers (§3.5).
    pub fn paper_scale() -> Self {
        TopologyConfig { n: 20_000, model: TopologyModel::default() }
    }

    /// Generate the overlay with the given RNG.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> DynamicGraph {
        let g = match self.model {
            TopologyModel::BarabasiAlbert { m } => barabasi_albert(self.n, m, rng),
            TopologyModel::Waxman { alpha, beta } => waxman(self.n, alpha, beta, rng),
            TopologyModel::ErdosRenyi { mean_degree } => erdos_renyi(self.n, mean_degree, rng),
            TopologyModel::SuperPeer { super_fraction, core_m } => {
                super_peer(self.n, super_fraction, core_m, rng)
            }
        };
        debug_assert!(g.check_invariants().is_ok());
        g
    }
}

/// Barabási–Albert preferential attachment.
///
/// Starts from an `m + 1`-clique; each arriving node attaches to `m` distinct
/// existing nodes sampled proportionally to their current degree (implemented
/// with the repeated-endpoints trick: every half-edge endpoint is recorded
/// once, so a uniform draw over endpoints is a degree-proportional draw over
/// nodes). The result is connected with minimum degree `m`, mean degree
/// `≈ 2m`, and a power-law tail ("a few peers have tens of neighbors").
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> DynamicGraph {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "need more nodes than attachment edges");
    let mut g = DynamicGraph::new(n);
    // Seed clique over nodes 0..=m.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            endpoints.push(NodeId::from_index(u));
            endpoints.push(NodeId::from_index(v));
        }
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    for u in (m + 1)..n {
        let u = NodeId::from_index(u);
        chosen.clear();
        // Rejection-sample m distinct degree-proportional targets.
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            g.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    g
}

/// Waxman geometric random graph (the model BRITE natively implements).
///
/// Nodes are placed uniformly in the unit square; the edge `{u, v}` exists
/// with probability `alpha * exp(-d(u, v) / (beta * L))` where `L = sqrt(2)`
/// is the maximal distance. Components are stitched together afterwards so
/// the overlay is connected (an unconnected overlay cannot carry flooding
/// search at all).
pub fn waxman<R: Rng + ?Sized>(n: usize, alpha: f64, beta: f64, rng: &mut R) -> DynamicGraph {
    assert!(n >= 2);
    assert!(alpha > 0.0 && beta > 0.0);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let l = std::f64::consts::SQRT_2;
    let mut g = DynamicGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    connect_components(&mut g, rng);
    g
}

/// Uniform random graph with expected mean degree `mean_degree`, stitched to
/// be connected.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, mean_degree: f64, rng: &mut R) -> DynamicGraph {
    assert!(n >= 2);
    assert!(mean_degree > 0.0);
    let mut g = DynamicGraph::new(n);
    // Expected number of edges: n * mean_degree / 2. Sample that many random
    // pairs; duplicates are rejected by add_edge, which slightly lowers the
    // realized degree — acceptable for a control topology.
    let target = ((n as f64) * mean_degree / 2.0).round() as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < target && attempts < target * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if g.add_edge(NodeId::from_index(u), NodeId::from_index(v)) {
            added += 1;
        }
    }
    connect_components(&mut g, rng);
    g
}

/// Two-tier super-peer overlay: `super_fraction` of the nodes form a BA
/// core (ids `0..s`), the rest attach as leaves to one uniformly random
/// super each. Flooding then effectively happens among the supers, with
/// leaves as sources/sinks — the architecture §1 describes for modern
/// Gnutella/FastTrack deployments.
pub fn super_peer<R: Rng + ?Sized>(
    n: usize,
    super_fraction: f64,
    core_m: usize,
    rng: &mut R,
) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&super_fraction));
    let supers = ((n as f64 * super_fraction).round() as usize).clamp(core_m + 1, n);
    let mut g = barabasi_albert(supers, core_m, rng);
    for _ in supers..n {
        let leaf = g.add_node();
        let hub = NodeId::from_index(rng.gen_range(0..supers));
        g.add_edge(leaf, hub);
    }
    g
}

/// Stitch disconnected components together with random inter-component edges.
fn connect_components<R: Rng + ?Sized>(g: &mut DynamicGraph, rng: &mut R) {
    let comps = crate::stats::connected_components(g);
    if comps.len() <= 1 {
        return;
    }
    // Link a random member of each subsequent component to a random member of
    // the first (giant) component.
    let mut reps: Vec<Vec<NodeId>> = comps;
    reps.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let giant = reps[0].clone();
    for comp in reps.iter().skip(1) {
        let a = *comp.choose(rng).expect("non-empty component");
        let b = *giant.choose(rng).expect("non-empty giant component");
        g.add_edge(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ba_has_paper_degree_profile() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(2_000, 3, &mut rng);
        let mean = stats::mean_degree(&g);
        assert!((5.5..6.5).contains(&mean), "mean degree {mean} should be ~6");
        // Minimum degree is m = 3.
        let min = (0..g.node_count()).map(|u| g.degree(NodeId::from_index(u))).min().unwrap();
        assert_eq!(min, 3);
        // Power-law tail: someone has "tens of direct neighbors".
        let max = (0..g.node_count()).map(|u| g.degree(NodeId::from_index(u))).max().unwrap();
        assert!(max >= 20, "max degree {max} should reach tens");
        assert_eq!(stats::connected_components(&g).len(), 1);
    }

    #[test]
    fn ba_most_peers_have_3_or_4_neighbors() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = barabasi_albert(2_000, 3, &mut rng);
        let small = (0..g.node_count())
            .filter(|&u| matches!(g.degree(NodeId::from_index(u)), 3 | 4))
            .count();
        assert!(
            small * 2 > g.node_count(),
            "expected majority of peers with degree 3-4, got {small}/{}",
            g.node_count()
        );
    }

    #[test]
    fn waxman_is_connected() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = waxman(300, 0.15, 0.15, &mut rng);
        assert_eq!(stats::connected_components(&g).len(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn erdos_renyi_mean_degree_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(2_000, 6.0, &mut rng);
        let mean = stats::mean_degree(&g);
        assert!((5.0..7.0).contains(&mean), "mean degree {mean}");
        assert_eq!(stats::connected_components(&g).len(), 1);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = TopologyConfig::default().generate(&mut StdRng::seed_from_u64(42));
        let g2 = TopologyConfig::default().generate(&mut StdRng::seed_from_u64(42));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn super_peer_has_two_tiers() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = super_peer(1_000, 0.2, 3, &mut rng);
        assert_eq!(g.node_count(), 1_000);
        assert_eq!(stats::connected_components(&g).len(), 1);
        // Leaves (ids 200..1000) have degree exactly 1.
        for leaf in 200..1_000 {
            assert_eq!(g.degree(NodeId(leaf as u32)), 1, "leaf {leaf}");
        }
        // The core keeps the BA profile: min degree m, hubs exist.
        let core_max = (0..200).map(|u| g.degree(NodeId(u as u32))).max().unwrap();
        assert!(core_max >= 15, "core hub degree {core_max}");
    }

    #[test]
    fn paper_scale_config() {
        let c = TopologyConfig::paper_scale();
        assert_eq!(c.n, 20_000);
    }
}
