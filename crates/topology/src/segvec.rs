//! Flat segmented storage for per-node variable-length rows.
//!
//! The simulator keeps one short, mutable row per node — adjacency half-edges
//! in [`crate::DynamicGraph`], per-edge traffic counters in the overlay. The
//! obvious `Vec<Vec<T>>` pays one heap allocation and one pointer chase per
//! row, which is exactly what the flooding hot loop cannot afford at 10⁵
//! nodes. A [`SegVec`] packs every row into one flat arena with per-row
//! `(base, len, cap)` bookkeeping:
//!
//! * `slice(i)` / `slice_mut(i)` are a single bounds-checked subslice of one
//!   contiguous allocation — rows of neighboring nodes share cache lines;
//! * `push(i, v)` appends in headroom; when a row is full it relocates to the
//!   arena tail with doubled capacity (`max(4, 2·cap)`), abandoning the old
//!   slot;
//! * `swap_remove(i, slot)` evolves slots *exactly* like `Vec::swap_remove` —
//!   callers that mirror removals across two `SegVec`s (graph + counters)
//!   stay aligned positionally;
//! * abandoned capacity is tracked and the arena is compacted in row order
//!   once more than half of a non-trivial arena is waste, so long churny runs
//!   cannot leak the arena unboundedly.
//!
//! Rows never observe compaction or relocation: all addressing goes through
//! `base[i]`, and `&[T]` borrows cannot be held across mutation.

/// Flat arena of `n` independently growable rows of `T`.
#[derive(Debug, Clone)]
pub struct SegVec<T: Copy> {
    flat: Vec<T>,
    base: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
    /// Arena slots abandoned by relocations, pending compaction.
    wasted: usize,
    /// Value used to pad fresh headroom (never observable through `slice`).
    fill: T,
}

impl<T: Copy> SegVec<T> {
    /// `n` empty rows. `fill` pads unused headroom slots.
    pub fn new(n: usize, fill: T) -> Self {
        SegVec {
            flat: Vec::new(),
            base: vec![0; n],
            len: vec![0; n],
            cap: vec![0; n],
            wasted: 0,
            fill,
        }
    }

    /// Rows laid out back-to-back with `cap == len`, each row holding
    /// `lens[i]` copies of `fill` — the bulk constructor for mirrors whose
    /// geometry is known up front.
    pub fn from_lens(lens: &[usize], fill: T) -> Self {
        let total: usize = lens.iter().sum();
        let mut base = Vec::with_capacity(lens.len());
        let mut at = 0u32;
        for &l in lens {
            base.push(at);
            at += l as u32;
        }
        SegVec {
            flat: vec![fill; total],
            base,
            len: lens.iter().map(|&l| l as u32).collect(),
            cap: lens.iter().map(|&l| l as u32).collect(),
            wasted: 0,
            fill,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.len.len()
    }

    /// Length of row `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.len[i] as usize
    }

    /// Arena offset of row `i` (valid until the next mutation).
    #[inline]
    pub fn base_of(&self, i: usize) -> usize {
        self.base[i] as usize
    }

    /// The whole arena, including headroom padding — for bulk resets only.
    #[inline]
    pub fn flat_mut(&mut self) -> &mut [T] {
        &mut self.flat
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn slice(&self, i: usize) -> &[T] {
        let b = self.base[i] as usize;
        &self.flat[b..b + self.len[i] as usize]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn slice_mut(&mut self, i: usize) -> &mut [T] {
        let b = self.base[i] as usize;
        let l = self.len[i] as usize;
        &mut self.flat[b..b + l]
    }

    /// Element `slot` of row `i`.
    #[inline]
    pub fn get(&self, i: usize, slot: usize) -> T {
        debug_assert!(slot < self.len[i] as usize);
        self.flat[self.base[i] as usize + slot]
    }

    /// Overwrite element `slot` of row `i`.
    #[inline]
    pub fn set(&mut self, i: usize, slot: usize, v: T) {
        debug_assert!(slot < self.len[i] as usize);
        self.flat[self.base[i] as usize + slot] = v;
    }

    /// Append an empty row.
    pub fn push_row(&mut self) {
        self.base.push(0);
        self.len.push(0);
        self.cap.push(0);
    }

    /// Append `v` to row `i`, relocating the row to the arena tail (with
    /// doubled capacity) when its headroom is exhausted.
    pub fn push(&mut self, i: usize, v: T) {
        if self.len[i] == self.cap[i] {
            self.relocate(i);
        }
        self.flat[self.base[i] as usize + self.len[i] as usize] = v;
        self.len[i] += 1;
    }

    /// Remove and return element `slot` of row `i`, moving the row's last
    /// element into its place — identical slot evolution to
    /// `Vec::swap_remove`.
    pub fn swap_remove(&mut self, i: usize, slot: usize) -> T {
        let b = self.base[i] as usize;
        let last = self.len[i] as usize - 1;
        debug_assert!(slot <= last);
        let out = self.flat[b + slot];
        self.flat[b + slot] = self.flat[b + last];
        self.len[i] = last as u32;
        out
    }

    /// Remove and return the last element of row `i`, if any.
    pub fn pop(&mut self, i: usize) -> Option<T> {
        if self.len[i] == 0 {
            return None;
        }
        self.len[i] -= 1;
        Some(self.flat[self.base[i] as usize + self.len[i] as usize])
    }

    /// Overwrite every arena slot (live and padding) with `v` — the O(arena)
    /// bulk reset used for per-tick counters.
    pub fn fill_all(&mut self, v: T) {
        self.flat.fill(v);
    }

    /// Arena slots currently abandoned (diagnostics / tests).
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Arena length including headroom and waste (diagnostics / tests).
    pub fn arena_len(&self) -> usize {
        self.flat.len()
    }

    fn relocate(&mut self, i: usize) {
        let old_base = self.base[i] as usize;
        let old_cap = self.cap[i] as usize;
        let live = self.len[i] as usize;
        let new_cap = (old_cap * 2).max(4);
        let new_base = self.flat.len();
        self.flat.resize(new_base + new_cap, self.fill);
        self.flat.copy_within(old_base..old_base + live, new_base);
        self.base[i] = new_base as u32;
        self.cap[i] = new_cap as u32;
        self.wasted += old_cap;
        if self.wasted > self.flat.len() / 2 && self.flat.len() > 1024 {
            self.compact();
        }
    }

    /// Rebuild the arena in row order with `cap == len`, dropping all waste
    /// and headroom.
    fn compact(&mut self) {
        let total: usize = self.len.iter().map(|&l| l as usize).sum();
        let mut flat = Vec::with_capacity(total);
        for i in 0..self.rows() {
            let b = self.base[i] as usize;
            let l = self.len[i] as usize;
            self.base[i] = flat.len() as u32;
            self.cap[i] = l as u32;
            flat.extend_from_slice(&self.flat[b..b + l]);
        }
        self.flat = flat;
        self.wasted = 0;
    }
}

impl<T: Copy + Default> Default for SegVec<T> {
    fn default() -> Self {
        SegVec::new(0, T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_slice_roundtrip() {
        let mut s = SegVec::new(3, 0u32);
        s.push(1, 10);
        s.push(1, 11);
        s.push(0, 7);
        assert_eq!(s.slice(0), &[7]);
        assert_eq!(s.slice(1), &[10, 11]);
        assert_eq!(s.slice(2), &[] as &[u32]);
        assert_eq!(s.len_of(1), 2);
    }

    #[test]
    fn swap_remove_matches_vec_semantics() {
        // Drive a SegVec row and a plain Vec through the same op sequence;
        // every intermediate state must agree slot-for-slot.
        let mut s = SegVec::new(1, 0u32);
        let mut model: Vec<u32> = Vec::new();
        for v in 0..10u32 {
            s.push(0, v);
            model.push(v);
        }
        for slot in [3usize, 0, 5, 5, 0] {
            assert_eq!(s.swap_remove(0, slot), model.swap_remove(slot));
            assert_eq!(s.slice(0), model.as_slice());
        }
        assert_eq!(s.pop(0), model.pop());
        assert_eq!(s.slice(0), model.as_slice());
    }

    #[test]
    fn relocation_preserves_contents_and_counts_waste() {
        let mut s = SegVec::new(2, 0u32);
        for v in 0..4u32 {
            s.push(0, v);
        }
        assert_eq!(s.wasted(), 0, "first relocation abandons a zero-cap row");
        s.push(0, 4); // forces 4 -> 8 relocation, abandoning 4 slots
        assert_eq!(s.slice(0), &[0, 1, 2, 3, 4]);
        assert_eq!(s.wasted(), 4);
        // Row 1 stays untouched.
        s.push(1, 99);
        assert_eq!(s.slice(1), &[99]);
    }

    #[test]
    fn compaction_fires_and_preserves_rows() {
        // Grow a few rows far enough that relocations push waste past half
        // of a >1024-slot arena, then verify contents survived compaction.
        let mut s = SegVec::new(4, 0u32);
        for round in 0..600u32 {
            for i in 0..4 {
                s.push(i, round * 10 + i as u32);
            }
        }
        assert!(s.wasted() < s.arena_len() / 2 || s.arena_len() <= 1024);
        for i in 0..4 {
            assert_eq!(s.len_of(i), 600);
            assert_eq!(s.get(i, 599), 5990 + i as u32);
            assert_eq!(s.get(i, 0), i as u32);
        }
    }

    #[test]
    fn from_lens_lays_rows_back_to_back() {
        let s = SegVec::from_lens(&[2, 0, 3], 9u8);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.slice(0), &[9, 9]);
        assert_eq!(s.slice(1), &[] as &[u8]);
        assert_eq!(s.slice(2), &[9, 9, 9]);
        assert_eq!(s.base_of(2), 2);
        assert_eq!(s.arena_len(), 5);
    }

    #[test]
    fn fill_all_resets_every_live_slot() {
        let mut s = SegVec::from_lens(&[2, 2], 1u32);
        s.set(0, 1, 42);
        s.set(1, 0, 7);
        s.fill_all(0);
        assert_eq!(s.slice(0), &[0, 0]);
        assert_eq!(s.slice(1), &[0, 0]);
    }

    #[test]
    fn push_row_appends_an_empty_row() {
        let mut s = SegVec::new(1, 0u32);
        s.push(0, 5);
        s.push_row();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.len_of(1), 0);
        s.push(1, 6);
        assert_eq!(s.slice(1), &[6]);
        assert_eq!(s.slice(0), &[5]);
    }
}
