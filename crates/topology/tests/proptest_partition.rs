//! Property-based tests for the parallel tick engine's partitioner.
//!
//! The deterministic merge step of the parallel tick leans on three
//! structural guarantees: every peer slot lands in exactly one partition,
//! the cross-partition edge lists are symmetric (a judgment spanning the
//! boundary is visible from both sides), and repartitioning after churn
//! (AddNode growth, slot recycling, edge churn) still covers the new slot
//! set exactly — a dropped or duplicated slot would silently skip or
//! double-run a peer's defense step.

use ddp_topology::{cross_partition_edges, DynamicGraph, NodeId, Partition};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
    /// Churn departure path: drop every edge at a slot so it can be
    /// recycled by a joiner.
    Isolate(u32),
    /// Churn growth path: append a fresh isolated slot.
    AddNode,
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..2 * n, 0..2 * n).prop_map(|(u, v)| Op::AddEdge(u, v)),
        2 => (0..2 * n, 0..2 * n).prop_map(|(u, v)| Op::RemoveEdge(u, v)),
        1 => (0..2 * n).prop_map(Op::Isolate),
        2 => Just(Op::AddNode),
    ]
}

fn apply(g: &mut DynamicGraph, op: &Op) {
    let n = g.node_count() as u32;
    let clamp = |x: u32| NodeId(x % n);
    match *op {
        Op::AddEdge(u, v) => {
            g.add_edge(clamp(u), clamp(v));
        }
        Op::RemoveEdge(u, v) => {
            g.remove_edge(clamp(u), clamp(v));
        }
        Op::Isolate(u) => {
            g.isolate(clamp(u));
        }
        Op::AddNode => {
            g.add_node();
        }
    }
}

/// Every slot in exactly one partition: ranges are disjoint, in order, and
/// their union is `0..n`.
fn assert_exact_cover(p: &Partition, n: usize) {
    assert_eq!(p.len(), n);
    let mut seen = 0usize;
    let mut prev_end = 0usize;
    for r in p.ranges() {
        assert_eq!(r.start, prev_end, "ranges must tile without gaps or overlap");
        prev_end = r.end;
        seen += r.len();
    }
    assert_eq!(prev_end, n);
    assert_eq!(seen, n);
    for i in 0..n {
        let owner = p.part_of(i);
        assert!(p.range(owner).contains(&i), "part_of({i}) disagrees with ranges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-one-partition and part_of/range agreement over random graphs
    /// and partition counts, for both the even and degree-balanced splits.
    #[test]
    fn every_slot_lands_in_exactly_one_partition(
        n in 1usize..40,
        parts in 1usize..10,
        ops in proptest::collection::vec(op_strategy(24), 0..60),
    ) {
        let mut g = DynamicGraph::new(n);
        for op in &ops {
            apply(&mut g, op);
        }
        assert_exact_cover(&Partition::even(g.node_count(), parts), g.node_count());
        assert_exact_cover(&Partition::by_degree(&g, parts), g.node_count());
    }

    /// Cross-partition edge lists are symmetric: `(u, v)` in `p(u)`'s list
    /// iff `(v, u)` in `p(v)`'s, every listed edge actually crosses, and no
    /// crossing edge is missed.
    #[test]
    fn cross_partition_edges_are_symmetric_and_complete(
        n in 2usize..32,
        parts in 1usize..8,
        ops in proptest::collection::vec(op_strategy(24), 0..80),
    ) {
        let mut g = DynamicGraph::new(n);
        for op in &ops {
            apply(&mut g, op);
        }
        let p = Partition::by_degree(&g, parts);
        let cross = cross_partition_edges(&g, &p);
        prop_assert_eq!(cross.len(), p.parts());

        let mut listed: HashSet<(u32, u32)> = HashSet::new();
        for (part, list) in cross.iter().enumerate() {
            for &(u, v) in list {
                prop_assert_eq!(p.part_of(u.index()), part, "edge listed under wrong partition");
                prop_assert_ne!(
                    p.part_of(u.index()), p.part_of(v.index()),
                    "listed edge does not cross"
                );
                prop_assert!(listed.insert((u.0, v.0)), "duplicate cross edge ({}, {})", u, v);
            }
        }
        // Symmetry + completeness against ground truth.
        for (u, v) in g.edges() {
            let crosses = p.part_of(u.index()) != p.part_of(v.index());
            prop_assert_eq!(listed.contains(&(u.0, v.0)), crosses);
            prop_assert_eq!(listed.contains(&(v.0, u.0)), crosses);
        }
        for &(u, v) in &listed {
            prop_assert!(listed.contains(&(v, u)), "missing twin of ({u}, {v})");
        }
    }

    /// Churn then repartition: growth via AddNode and slot recycling via
    /// Isolate never drop or duplicate a slot in the fresh partition, at
    /// every intermediate graph size.
    #[test]
    fn repartitioning_after_churn_never_drops_or_duplicates_slots(
        n in 1usize..24,
        parts in 1usize..6,
        ops in proptest::collection::vec(op_strategy(16), 1..100),
    ) {
        let mut g = DynamicGraph::new(n);
        for op in &ops {
            apply(&mut g, op);
            // Repartition after every mutation, as the engine does per tick.
            let p = Partition::by_degree(&g, parts);
            assert_exact_cover(&p, g.node_count());
            // Weight changes move boundaries but never the cover.
            let mut owners = vec![usize::MAX; g.node_count()];
            for (part, r) in p.ranges().enumerate() {
                for i in r {
                    prop_assert_eq!(owners[i], usize::MAX, "slot {} covered twice", i);
                    owners[i] = part;
                }
            }
            prop_assert!(owners.iter().all(|&o| o != usize::MAX), "slot dropped");
        }
    }
}
