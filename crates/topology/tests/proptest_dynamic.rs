//! Property-based tests for the dynamic graph's reciprocal-index invariant.

use ddp_topology::{DynamicGraph, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
    Isolate(u32),
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..n, 0..n).prop_map(|(u, v)| Op::AddEdge(u, v)),
        2 => (0..n, 0..n).prop_map(|(u, v)| Op::RemoveEdge(u, v)),
        1 => (0..n).prop_map(Op::Isolate),
    ]
}

proptest! {
    /// Any interleaving of add/remove/isolate keeps twin pointers, edge
    /// counts, and dedup invariants intact.
    #[test]
    fn dynamic_graph_invariants_hold(ops in proptest::collection::vec(op_strategy(24), 1..200)) {
        let mut g = DynamicGraph::new(24);
        for op in ops {
            match op {
                Op::AddEdge(u, v) => { g.add_edge(NodeId(u), NodeId(v)); }
                Op::RemoveEdge(u, v) => { g.remove_edge(NodeId(u), NodeId(v)); }
                Op::Isolate(u) => { g.isolate(NodeId(u)); }
            }
            prop_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        }
    }

    /// The CSR snapshot agrees with the dynamic graph on every edge.
    #[test]
    fn snapshot_agrees(ops in proptest::collection::vec(op_strategy(16), 1..100)) {
        let mut g = DynamicGraph::new(16);
        for op in ops {
            match op {
                Op::AddEdge(u, v) => { g.add_edge(NodeId(u), NodeId(v)); }
                Op::RemoveEdge(u, v) => { g.remove_edge(NodeId(u), NodeId(v)); }
                Op::Isolate(u) => { g.isolate(NodeId(u)); }
            }
        }
        let csr = g.to_graph();
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for u in 0..16u32 {
            for v in 0..16u32 {
                if u == v { continue; }
                prop_assert_eq!(
                    csr.contains_edge(NodeId(u), NodeId(v)),
                    g.contains_edge(NodeId(u), NodeId(v))
                );
            }
        }
    }
}
