//! Property-based tests for the dynamic graph's reciprocal-index invariant.

use ddp_topology::{DynamicGraph, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
    /// Positional removal: the raw index is reduced modulo the node's
    /// current degree at execution time (no-op at degree 0).
    RemoveEdgeAt(u32, usize),
    Isolate(u32),
    /// Append a fresh isolated node (churn join / whitewash rebirth path).
    AddNode,
}

/// Raw node indices are drawn from `0..2n` and reduced modulo the *current*
/// node count at execution time, so ops land on appended nodes too once
/// `AddNode` has grown the graph past its initial size.
fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..2 * n, 0..2 * n).prop_map(|(u, v)| Op::AddEdge(u, v)),
        2 => (0..2 * n, 0..2 * n).prop_map(|(u, v)| Op::RemoveEdge(u, v)),
        2 => (0..2 * n, 0..64usize).prop_map(|(u, s)| Op::RemoveEdgeAt(u, s)),
        1 => (0..2 * n).prop_map(Op::Isolate),
        1 => Just(Op::AddNode),
    ]
}

/// Canonical undirected key for the shadow model.
fn key(u: NodeId, v: NodeId) -> (u32, u32) {
    (u.0.min(v.0), u.0.max(v.0))
}

/// Slot-exact shadow of the adjacency layout: the same half-edge/twin
/// semantics replayed on plain per-node `Vec`s. Where the set model above
/// checks *membership*, this one pins the arena's *layout* — every peer and
/// reciprocal index in every slot — so any divergence in `SegVec`'s segment
/// growth, relocation, or swap_remove handling shows up as a slot mismatch.
struct ShadowAdj {
    adj: Vec<Vec<(u32, u32)>>,
}

impl ShadowAdj {
    fn new(n: usize) -> Self {
        ShadowAdj { adj: vec![Vec::new(); n] }
    }

    fn contains(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].iter().any(|&(p, _)| p == v)
    }

    fn add_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v || self.contains(u, v) {
            return false;
        }
        let iu = self.adj[u as usize].len() as u32;
        let iv = self.adj[v as usize].len() as u32;
        self.adj[u as usize].push((v, iv));
        self.adj[v as usize].push((u, iu));
        true
    }

    fn detach_half(&mut self, who: u32, slot: usize) {
        self.adj[who as usize].swap_remove(slot);
        if slot < self.adj[who as usize].len() {
            let (p, r) = self.adj[who as usize][slot];
            self.adj[p as usize][r as usize].1 = slot as u32;
        }
    }

    fn remove_edge_at(&mut self, u: u32, slot: usize) -> u32 {
        let (peer, ridx) = self.adj[u as usize][slot];
        self.detach_half(peer, ridx as usize);
        self.detach_half(u, slot);
        peer
    }

    fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        match self.adj[u as usize].iter().position(|&(p, _)| p == v) {
            Some(slot) => {
                self.remove_edge_at(u, slot);
                true
            }
            None => false,
        }
    }

    fn isolate(&mut self, u: u32) -> Vec<u32> {
        let mut freed = Vec::new();
        while let Some(&(peer, ridx)) = self.adj[u as usize].last() {
            self.detach_half(peer, ridx as usize);
            self.adj[u as usize].pop();
            freed.push(peer);
        }
        freed
    }

    /// Append an isolated node, returning its index (mirrors
    /// `DynamicGraph::add_node`).
    fn add_node(&mut self) -> u32 {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as u32
    }
}

proptest! {
    /// Any interleaving of add/remove/remove-at/isolate/add-node keeps twin
    /// pointers, edge counts, and dedup invariants intact.
    #[test]
    fn dynamic_graph_invariants_hold(ops in proptest::collection::vec(op_strategy(24), 1..200)) {
        let mut g = DynamicGraph::new(24);
        for op in ops {
            let n = g.node_count() as u32;
            match op {
                Op::AddEdge(u, v) => { g.add_edge(NodeId(u % n), NodeId(v % n)); }
                Op::RemoveEdge(u, v) => { g.remove_edge(NodeId(u % n), NodeId(v % n)); }
                Op::RemoveEdgeAt(u, s) => {
                    let u = u % n;
                    let deg = g.degree(NodeId(u));
                    if deg > 0 {
                        g.remove_edge_at(NodeId(u), s % deg);
                    }
                }
                Op::Isolate(u) => { g.isolate(NodeId(u % n)); }
                Op::AddNode => {
                    let id = g.add_node();
                    prop_assert_eq!(id.index(), n as usize, "add_node must append");
                    prop_assert_eq!(g.degree(id), 0, "a fresh node starts isolated");
                }
            }
            prop_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        }
    }

    /// The graph agrees with a shadow set-of-edges model after every single
    /// operation: membership, per-node degrees, and the edge count — across
    /// node insertions as well as edge churn.
    #[test]
    fn dynamic_graph_matches_shadow_model(
        ops in proptest::collection::vec(op_strategy(16), 1..150)
    ) {
        let mut g = DynamicGraph::new(16);
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for op in ops {
            let n = g.node_count() as u32;
            match op {
                Op::AddEdge(u, v) => {
                    let (u, v) = (u % n, v % n);
                    let added = g.add_edge(NodeId(u), NodeId(v));
                    prop_assert_eq!(
                        added,
                        u != v && model.insert(key(NodeId(u), NodeId(v))),
                        "add_edge({}, {}) return disagrees with the model", u, v
                    );
                }
                Op::RemoveEdge(u, v) => {
                    let (u, v) = (u % n, v % n);
                    let removed = g.remove_edge(NodeId(u), NodeId(v));
                    prop_assert_eq!(
                        removed,
                        model.remove(&key(NodeId(u), NodeId(v))),
                        "remove_edge({}, {}) return disagrees with the model", u, v
                    );
                }
                Op::RemoveEdgeAt(u, s) => {
                    let u = u % n;
                    let deg = g.degree(NodeId(u));
                    if deg > 0 {
                        let slot = s % deg;
                        let expect = g.neighbors(NodeId(u))[slot].peer;
                        let freed = g.remove_edge_at(NodeId(u), slot);
                        prop_assert_eq!(freed, expect, "remove_edge_at freed the wrong peer");
                        prop_assert!(model.remove(&key(NodeId(u), freed)));
                    }
                }
                Op::Isolate(u) => {
                    let u = u % n;
                    let freed = g.isolate(NodeId(u));
                    for v in &freed {
                        prop_assert!(model.remove(&key(NodeId(u), *v)));
                    }
                    prop_assert_eq!(g.degree(NodeId(u)), 0);
                    prop_assert!(!model.iter().any(|&(a, b)| a == u || b == u));
                }
                Op::AddNode => {
                    let id = g.add_node();
                    prop_assert_eq!(id.0, n, "add_node must return the next index");
                }
            }
            prop_assert_eq!(g.edge_count(), model.len());
            for u in 0..g.node_count() as u32 {
                let deg_model = model.iter().filter(|&&(a, b)| a == u || b == u).count();
                prop_assert_eq!(g.degree(NodeId(u)), deg_model, "degree mismatch at node {}", u);
            }
            for &(a, b) in &model {
                prop_assert!(g.contains_edge(NodeId(a), NodeId(b)));
            }
        }
    }

    /// The segmented arena matches the plain-`Vec` shadow slot-for-slot —
    /// peers *and* reciprocal indices — after every operation. This is the
    /// layout-level contract the per-edge counter arrays in the overlay rely
    /// on: a slot in the adjacency is a stable key for the tick's duration,
    /// and swap_remove slot evolution is identical to the naive layout.
    #[test]
    fn flat_adjacency_matches_slot_exact_shadow(
        ops in proptest::collection::vec(op_strategy(16), 1..150)
    ) {
        let mut g = DynamicGraph::new(16);
        let mut shadow = ShadowAdj::new(16);
        for op in ops {
            let n = g.node_count() as u32;
            match op {
                Op::AddEdge(u, v) => {
                    let (u, v) = (u % n, v % n);
                    prop_assert_eq!(g.add_edge(NodeId(u), NodeId(v)), shadow.add_edge(u, v));
                }
                Op::RemoveEdge(u, v) => {
                    let (u, v) = (u % n, v % n);
                    prop_assert_eq!(g.remove_edge(NodeId(u), NodeId(v)), shadow.remove_edge(u, v));
                }
                Op::RemoveEdgeAt(u, s) => {
                    let u = u % n;
                    let deg = g.degree(NodeId(u));
                    if deg > 0 {
                        let slot = s % deg;
                        let freed = g.remove_edge_at(NodeId(u), slot);
                        prop_assert_eq!(freed.0, shadow.remove_edge_at(u, slot));
                    }
                }
                Op::Isolate(u) => {
                    let u = u % n;
                    let freed: Vec<u32> = g.isolate(NodeId(u)).iter().map(|p| p.0).collect();
                    prop_assert_eq!(freed, shadow.isolate(u), "isolate order must match");
                }
                Op::AddNode => {
                    prop_assert_eq!(g.add_node().0, shadow.add_node(), "append index must match");
                }
            }
            prop_assert_eq!(g.node_count(), shadow.adj.len());
            for i in 0..g.node_count() {
                let got: Vec<(u32, u32)> =
                    g.neighbors(NodeId(i as u32)).iter().map(|h| (h.peer.0, h.ridx)).collect();
                prop_assert_eq!(
                    &got, &shadow.adj[i],
                    "adjacency row {} diverged from the slot-exact shadow", i
                );
            }
        }
    }

    /// The CSR snapshot agrees with the dynamic graph on every edge, for
    /// graphs that have grown past their initial node count.
    #[test]
    fn snapshot_agrees(ops in proptest::collection::vec(op_strategy(16), 1..100)) {
        let mut g = DynamicGraph::new(16);
        for op in ops {
            let n = g.node_count() as u32;
            match op {
                Op::AddEdge(u, v) => { g.add_edge(NodeId(u % n), NodeId(v % n)); }
                Op::RemoveEdge(u, v) => { g.remove_edge(NodeId(u % n), NodeId(v % n)); }
                Op::RemoveEdgeAt(u, s) => {
                    let u = u % n;
                    let deg = g.degree(NodeId(u));
                    if deg > 0 {
                        g.remove_edge_at(NodeId(u), s % deg);
                    }
                }
                Op::Isolate(u) => { g.isolate(NodeId(u % n)); }
                Op::AddNode => { g.add_node(); }
            }
        }
        let csr = g.to_graph();
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                if u == v { continue; }
                prop_assert_eq!(
                    csr.contains_edge(NodeId(u), NodeId(v)),
                    g.contains_edge(NodeId(u), NodeId(v))
                );
            }
        }
    }
}
