//! Golden-fixture pin for the `BENCH_sketch.json` schema.
//!
//! `runners::sketch_json` is the only writer of the sketch bench artifact;
//! this test pins its exact byte layout on fixed fake cells so the schema
//! cannot drift silently between PRs (the memory/accuracy trajectory is
//! diffed across commits). Regenerate after an intentional change with:
//!
//! ```text
//! DDP_BLESS=1 cargo test -p ddp-experiments --test sketch_schema
//! ```

use ddp_experiments::runners::{sketch_json, validate_sketch_json, SketchCell};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bench_sketch.golden.json")
}

fn fixed_cells() -> Vec<SketchCell> {
    vec![
        SketchCell {
            peers: 2000,
            agents: 20,
            attacker_rate_qpm: 1500,
            ticks: 8,
            ttl: 4,
            width_log2: 12,
            depth: 4,
            topk: 64,
            monitor_backend: "sketch".into(),
            exact_state_bytes: 96_000,
            sketch_state_bytes: 67_584,
            memory_ratio: 1.420455,
            elapsed_secs: 2.5,
            ticks_per_sec: 3.2,
            attackers_cut_exact: 20,
            attackers_cut_sketch: 19,
            missed_cuts: 1,
            extra_good_cuts: 148,
            items_max: 1_250_000,
            max_excess: 1015,
            epsilon_n: 830.2,
        },
        SketchCell {
            peers: 100_000,
            agents: 100,
            attacker_rate_qpm: 20_000,
            ticks: 4,
            ttl: 2,
            width_log2: 16,
            depth: 4,
            topk: 512,
            monitor_backend: "sketch".into(),
            exact_state_bytes: 4_800_000,
            sketch_state_bytes: 1_065_000,
            memory_ratio: 4.507042,
            elapsed_secs: 120.0,
            ticks_per_sec: 0.033333,
            attackers_cut_exact: 100,
            attackers_cut_sketch: 100,
            missed_cuts: 0,
            extra_good_cuts: 74,
            items_max: 9_000_000,
            max_excess: 1185,
            epsilon_n: 373.4,
        },
    ]
}

#[test]
fn bench_sketch_json_matches_golden_fixture() {
    let rendered = sketch_json(&fixed_cells(), 42);
    let path = fixture_path();
    if std::env::var_os("DDP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{rendered}\n")).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with DDP_BLESS=1", path.display())
    });
    assert_eq!(
        rendered,
        golden.trim_end(),
        "sketch_json drifted from the committed BENCH_sketch.json schema fixture"
    );
}

#[test]
fn golden_fixture_passes_structural_validation() {
    // The same validator the `sketch --smoke` CI job uses must accept the
    // fixture, so validator and writer can't drift apart either.
    let rendered = sketch_json(&fixed_cells(), 42);
    validate_sketch_json(&rendered).unwrap();
}

#[test]
fn committed_bench_artifact_is_schema_valid() {
    // The repo-root BENCH_sketch.json (committed measurement output) must
    // always parse against the current schema.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sketch.json");
    if let Ok(doc) = std::fs::read_to_string(&root) {
        validate_sketch_json(&doc)
            .unwrap_or_else(|e| panic!("committed BENCH_sketch.json invalid: {e}"));
    }
}
