//! Golden-fixture pin for the `BENCH_scale.json` schema.
//!
//! `runners::scale_json` is the only writer of the bench artifact; this test
//! pins its exact byte layout on fixed fake cells so the schema cannot drift
//! silently between PRs (the perf trajectory is diffed across commits).
//! Regenerate after an intentional change with:
//!
//! ```text
//! DDP_BLESS=1 cargo test -p ddp-experiments --test scale_schema
//! ```

use ddp_experiments::runners::{scale_json, validate_scale_json, ScaleCell};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bench_scale.golden.json")
}

fn fixed_cells() -> Vec<ScaleCell> {
    vec![
        ScaleCell {
            peers: 2000,
            attacker_fraction: 0.05,
            agents: 100,
            ticks: 10,
            threads: 1,
            elapsed_secs: 1.25,
            ticks_per_sec: 8.0,
            queries_per_sec: 250000.0,
            query_hops_total: 312500,
            peak_alloc_bytes: 8 << 20,
            step_allocations: 12345,
            success_rate_mean: 0.875,
            attackers_cut: 90,
        },
        ScaleCell {
            peers: 100000,
            attacker_fraction: 0.01,
            agents: 1000,
            ticks: 2,
            threads: 4,
            elapsed_secs: 40.5,
            ticks_per_sec: 0.04938271,
            queries_per_sec: 1500000.25,
            query_hops_total: 60750010,
            peak_alloc_bytes: 512 << 20,
            step_allocations: 987654,
            success_rate_mean: 0.5,
            attackers_cut: 4321,
        },
    ]
}

#[test]
fn bench_scale_json_matches_golden_fixture() {
    let rendered = scale_json(&fixed_cells(), 42);
    let path = fixture_path();
    if std::env::var_os("DDP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{rendered}\n")).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with DDP_BLESS=1", path.display())
    });
    assert_eq!(
        rendered,
        golden.trim_end(),
        "scale_json drifted from the committed BENCH_scale.json schema fixture"
    );
}

#[test]
fn golden_fixture_passes_structural_validation() {
    // The same validator the `scale --smoke` CI job uses must accept the
    // fixture, so validator and writer can't drift apart either.
    let rendered = scale_json(&fixed_cells(), 42);
    validate_scale_json(&rendered).unwrap();
}

#[test]
fn committed_bench_artifact_is_schema_valid() {
    // The repo-root BENCH_scale.json (committed measurement output) must
    // always parse against the current schema.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    if let Ok(doc) = std::fs::read_to_string(&root) {
        validate_scale_json(&doc)
            .unwrap_or_else(|e| panic!("committed BENCH_scale.json invalid: {e}"));
    }
}
