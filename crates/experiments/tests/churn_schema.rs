//! Golden-fixture pin for the `BENCH_churn.json` schema.
//!
//! `runners::churn_json` is the only writer of the churn bench artifact;
//! this test pins its exact byte layout on fixed fake cells so the schema
//! cannot drift silently between PRs. Regenerate after an intentional
//! change with:
//!
//! ```text
//! DDP_BLESS=1 cargo test -p ddp-experiments --test churn_schema
//! ```

use ddp_experiments::runners::{churn_json, validate_churn_json, ChurnCell};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bench_churn.golden.json")
}

fn fixed_cells() -> Vec<ChurnCell> {
    vec![
        ChurnCell {
            peers: 2000,
            ticks: 30,
            agents: 100,
            mean_session_ticks: 10.0,
            session_model: "exponential".into(),
            dwell_ticks: 1,
            readmission: false,
            joins: 5980.0,
            departures: 5940.0,
            rebirths: 120.5,
            detection_latency: 3.75,
            redetected: 101.0,
            redetection_latency: 4.25,
            redetection_rate: 0.838174,
            cuts_total: 1450.0,
            wrongful_cut_rate: 0.0310344,
            residual_damage: 0.042,
        },
        ChurnCell {
            peers: 2000,
            ticks: 30,
            agents: 100,
            mean_session_ticks: 5.0,
            session_model: "lognormal".into(),
            dwell_ticks: 3,
            readmission: true,
            joins: 11875.0,
            departures: 11800.0,
            rebirths: 85.0,
            detection_latency: 4.1,
            redetected: 60.0,
            redetection_latency: 6.5,
            redetection_rate: 0.705882,
            cuts_total: 2100.5,
            wrongful_cut_rate: 0.051,
            residual_damage: 0.0975,
        },
    ]
}

#[test]
fn bench_churn_json_matches_golden_fixture() {
    let rendered = churn_json(&fixed_cells(), 42);
    let path = fixture_path();
    if std::env::var_os("DDP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{rendered}\n")).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with DDP_BLESS=1", path.display())
    });
    assert_eq!(
        rendered,
        golden.trim_end(),
        "churn_json drifted from the committed BENCH_churn.json schema fixture"
    );
}

#[test]
fn golden_fixture_passes_structural_validation() {
    // The same validator the `churn --smoke` CI job uses must accept the
    // fixture, so validator and writer can't drift apart either.
    let rendered = churn_json(&fixed_cells(), 42);
    validate_churn_json(&rendered).unwrap();
}

#[test]
fn committed_bench_artifact_is_schema_valid() {
    // The repo-root BENCH_churn.json (committed measurement output) must
    // always parse against the current schema.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_churn.json");
    if let Ok(doc) = std::fs::read_to_string(&root) {
        validate_churn_json(&doc)
            .unwrap_or_else(|e| panic!("committed BENCH_churn.json invalid: {e}"));
    }
}
