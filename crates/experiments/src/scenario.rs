//! High-level scenario builder: topology + workload + attack + defense in
//! one declarative value, runnable with one call.

use ddp_attack::{AttackPlan, CheatStrategy};
use ddp_metrics::recovery::{recovery_time, RecoveryThresholds};
use ddp_metrics::summary::{RunSeries, RunSummary};
use ddp_metrics::{damage_rate, TimeSeries};
use ddp_police::{DdPolice, DdPoliceConfig, NaiveRateLimit};
use ddp_sim::{
    CutRecord, Defense, FaultConfig, ForwardingPolicy, ListBehavior, NoDefense, SimConfig,
    Simulation,
};
use ddp_topology::{TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// Which defense a scenario deploys.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseKind {
    /// Plain Gnutella, no protection.
    None,
    /// Local-only rate limiting (the Figure 1 strawman).
    NaiveRateLimit { threshold_qpm: u32 },
    /// DD-POLICE with the paper's defaults and the given cut threshold.
    DdPolice { cut_threshold: f64 },
    /// DD-POLICE with a fully custom configuration.
    DdPoliceFull(DdPoliceConfig),
    /// No detector, but fair per-link capacity sharing at saturated peers
    /// (the Daswani & Garcia-Molina-style survival baseline, paper's \[21\]).
    FairShare,
}

impl DefenseKind {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            DefenseKind::None => "none".into(),
            DefenseKind::NaiveRateLimit { .. } => "naive-limit".into(),
            DefenseKind::DdPolice { cut_threshold } => format!("dd-police(CT={cut_threshold})"),
            DefenseKind::DdPoliceFull(c) => format!("dd-police(CT={})", c.cut_threshold),
            DefenseKind::FairShare => "fair-share".into(),
        }
    }
}

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Engine configuration.
    pub sim: SimConfig,
    /// Deployed defense.
    pub defense: DefenseKind,
    /// Number of DDoS agents.
    pub agents: usize,
    /// How agents answer report requests (§3.4).
    pub cheat: CheatStrategy,
    /// How agents answer the neighbor-list exchange (§3.1).
    pub lists: ListBehavior,
    /// Simulated minutes.
    pub ticks: usize,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
}

impl Scenario {
    /// Start building a scenario from the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Instantiate the fully wired simulation at tick 0 — the exact engine
    /// `run` executes, exposed so checkpoint/resume can rebuild an identical
    /// starting state before fast-forwarding from a snapshot.
    pub fn build_sim(&self) -> Simulation<Box<dyn Defense>> {
        let mut sim_cfg = self.sim.clone();
        if matches!(self.defense, DefenseKind::FairShare) {
            sim_cfg.forwarding = ForwardingPolicy::FairShare;
        }
        let n = sim_cfg.peers();
        let defense: Box<dyn Defense> = match &self.defense {
            DefenseKind::None | DefenseKind::FairShare => Box::new(NoDefense),
            DefenseKind::NaiveRateLimit { threshold_qpm } => {
                Box::new(NaiveRateLimit::new(*threshold_qpm))
            }
            DefenseKind::DdPolice { cut_threshold } => {
                Box::new(DdPolice::new(DdPoliceConfig::with_cut_threshold(*cut_threshold), n))
            }
            DefenseKind::DdPoliceFull(cfg) => Box::new(DdPolice::new(*cfg, n)),
        };
        let mut sim = Simulation::new(sim_cfg, defense, self.seed);
        if self.agents > 0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xdd05_ee1f);
            let agents =
                AttackPlan::new(self.agents).with_cheat(self.cheat).apply(&mut sim, &mut rng);
            for a in agents {
                sim.set_list_behavior(a, self.lists);
            }
        }
        sim
    }

    /// Run the scenario.
    pub fn run(&self) -> ScenarioReport {
        let result = self.build_sim().run(self.ticks);
        ScenarioReport {
            defense: self.defense.label(),
            summary: result.summary,
            series: result.series,
            cut_log: result.cut_log,
        }
    }

    /// Run the scenario with crash-safe checkpointing: every `every` ticks
    /// the full engine state is atomically written to `checkpoint`, and when
    /// `resume` is set a valid checkpoint fast-forwards the run to its tick.
    ///
    /// The outputs are bit-identical to [`Scenario::run`] in every case:
    /// resuming replays the exact state an uninterrupted run would hold at
    /// the checkpoint tick, and a missing/corrupt/foreign checkpoint simply
    /// degrades to a full rerun from tick 0 (with a warning — a campaign
    /// must never die, or produce different numbers, because a checkpoint
    /// file did). Checkpoint *write* failures likewise warn and continue.
    pub fn run_checkpointed(
        &self,
        checkpoint: &Path,
        every: usize,
        resume: bool,
    ) -> ScenarioReport {
        let mut sim = self.build_sim();
        if resume && checkpoint.exists() {
            match sim.resume_from_file(checkpoint) {
                Ok(()) => eprintln!(
                    "[checkpoint] resumed {} at tick {}",
                    checkpoint.display(),
                    sim.tick()
                ),
                Err(e) => {
                    eprintln!(
                        "[checkpoint] ignoring {} (rerunning from tick 0): {e}",
                        checkpoint.display()
                    );
                    sim = self.build_sim();
                }
            }
        }
        while (sim.tick() as usize) < self.ticks {
            sim.step();
            let t = sim.tick() as usize;
            if every > 0 && t.is_multiple_of(every) && t < self.ticks {
                if let Err(e) = sim.write_snapshot_file(checkpoint) {
                    eprintln!(
                        "[checkpoint] could not write {} at tick {t}: {e}",
                        checkpoint.display()
                    );
                }
            }
        }
        let result = sim.finish();
        ScenarioReport {
            defense: self.defense.label(),
            summary: result.summary,
            series: result.series,
            cut_log: result.cut_log,
        }
    }

    /// Run the scenario *and* its paired no-attack baseline (same seed, same
    /// topology, no agents, no defense), yielding the damage-rate series
    /// `D(t) = (S(t) − S'(t)) / S(t)` of §3.7.2.
    pub fn run_with_damage(&self) -> DamageReport {
        self.damage_report(|s, _| s.run())
    }

    /// [`Scenario::run_with_damage`] with both runs checkpointed: the
    /// attacked run writes `<stem>-defended.snap`, the baseline
    /// `<stem>-baseline.snap`. Outputs are bit-identical to the
    /// uncheckpointed pair.
    pub fn run_with_damage_checkpointed(
        &self,
        stem: &Path,
        every: usize,
        resume: bool,
    ) -> DamageReport {
        let snap = |suffix: &str| {
            let mut name = stem.file_name().map(|s| s.to_os_string()).unwrap_or_default();
            name.push(suffix);
            name.push(".snap");
            stem.with_file_name(name)
        };
        self.damage_report(|s, which| {
            let suffix = match which {
                DamageRun::Attacked => "-defended",
                DamageRun::Baseline => "-baseline",
            };
            s.run_checkpointed(&snap(suffix), every, resume)
        })
    }

    /// Shared damage arithmetic: run the baseline twin and the attacked run
    /// through `runner`, then derive `D(t)` and the recovery time.
    fn damage_report(
        &self,
        mut runner: impl FnMut(&Scenario, DamageRun) -> ScenarioReport,
    ) -> DamageReport {
        let baseline_scenario = Scenario { defense: DefenseKind::None, agents: 0, ..self.clone() };
        let baseline = runner(&baseline_scenario, DamageRun::Baseline);
        let attacked = runner(self, DamageRun::Attacked);
        let mut damage = TimeSeries::new("damage_rate");
        for t in 0..attacked.series.success_rate.len() {
            let s0 = baseline.series.success_rate.values.get(t).copied().unwrap_or(1.0);
            let s1 = attacked.series.success_rate.values[t];
            damage.push(damage_rate(s0, s1));
        }
        let recovery = recovery_time(&damage, RecoveryThresholds::default());
        DamageReport { attacked, baseline, damage, recovery_ticks: recovery }
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    sim: SimConfig,
    defense: DefenseKind,
    agents: usize,
    cheat: CheatStrategy,
    lists: ListBehavior,
    ticks: usize,
    seed: u64,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            sim: SimConfig::default(),
            defense: DefenseKind::None,
            agents: 0,
            cheat: CheatStrategy::Honest,
            lists: ListBehavior::Truthful,
            ticks: 30,
            seed: 42,
        }
    }
}

impl ScenarioBuilder {
    /// Overlay size.
    pub fn peers(mut self, n: usize) -> Self {
        self.sim.topology = TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } };
        self
    }

    /// Simulated minutes.
    pub fn ticks(mut self, t: usize) -> Self {
        self.ticks = t;
        self
    }

    /// Number of DDoS agents.
    pub fn attackers(mut self, k: usize) -> Self {
        self.agents = k;
        self
    }

    /// Agents' report-cheating strategy.
    pub fn cheat(mut self, c: CheatStrategy) -> Self {
        self.cheat = c;
        self
    }

    /// Agents' neighbor-list lying strategy.
    pub fn lists(mut self, l: ListBehavior) -> Self {
        self.lists = l;
        self
    }

    /// Deployed defense.
    pub fn defense(mut self, d: DefenseKind) -> Self {
        self.defense = d;
        self
    }

    /// Master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Enable/disable churn.
    pub fn churn(mut self, on: bool) -> Self {
        self.sim.churn = on;
        self
    }

    /// Replace the whole engine config (advanced).
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Control-plane fault injection (lossy/delayed protocol messages,
    /// crash-restarting peers).
    pub fn faults(mut self, f: FaultConfig) -> Self {
        self.sim.faults = f;
        self
    }

    /// Finalize.
    pub fn build(self) -> Scenario {
        Scenario {
            sim: self.sim,
            defense: self.defense,
            agents: self.agents,
            cheat: self.cheat,
            lists: self.lists,
            ticks: self.ticks,
            seed: self.seed,
        }
    }
}

/// Result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Defense label.
    pub defense: String,
    /// Whole-run aggregates.
    pub summary: RunSummary,
    /// Per-tick series.
    pub series: RunSeries,
    /// Every defensive disconnection, in order (detection-latency analysis).
    pub cut_log: Vec<CutRecord>,
}

/// Which half of a damage pair a runner callback is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DamageRun {
    Baseline,
    Attacked,
}

/// An attacked run paired with its no-attack baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DamageReport {
    pub attacked: ScenarioReport,
    pub baseline: ScenarioReport,
    /// `D(t)` per tick.
    pub damage: TimeSeries,
    /// §3.7.2 damage recovery time (ticks), if an episode occurred and
    /// completed.
    pub recovery_ticks: Option<usize>,
}

impl DamageReport {
    /// Mean damage over the stabilized last quarter of the run.
    pub fn stable_damage(&self) -> f64 {
        self.damage.tail_mean((self.damage.len() / 4).max(1))
    }
}

/// Common options every experiment runner takes.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Overlay size (default 2,000; `--paper-scale` selects 20,000).
    pub peers: usize,
    /// Simulated minutes per run.
    pub ticks: usize,
    /// Base seed; replicate seeds derive from it.
    pub seed: u64,
    /// Number of agents for fixed-attack experiments (paper: 100).
    pub agents: usize,
    /// Replicates averaged per configuration.
    pub replicates: usize,
    /// Where to write CSVs (none = stdout only).
    pub csv_dir: Option<PathBuf>,
    /// Reduced validation run. Runners with an expensive full grid (`scale`,
    /// `churn`, `fuzz`) read this directly; new runners inherit the flag
    /// with no per-runner plumbing.
    pub smoke: bool,
    /// Write a full engine checkpoint every N ticks (0 = off).
    pub checkpoint_every: usize,
    /// Where checkpoint files go (default: alongside the CSVs, or the
    /// current directory when no `--out` is given).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume interrupted runs from their checkpoints when present.
    pub resume: bool,
    /// Worker-pool width for the tick engine (1 = serial). The engine is
    /// byte-deterministic across widths, so this only changes wall clock.
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            peers: 2_000,
            ticks: 30,
            seed: 42,
            agents: 100,
            replicates: 1,
            csv_dir: None,
            smoke: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: false,
            threads: 1,
        }
    }
}

impl ExpOptions {
    /// Seed for replicate `r` of configuration index `c`.
    pub fn seed_for(&self, c: usize, r: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((c as u64) << 32)
            .wrapping_add(r as u64)
    }

    /// Checkpoint stem (directory + basename, no extension) for a named unit
    /// of work, or `None` when checkpointing is off. The directory defaults
    /// to the CSV output directory, then the current directory.
    pub fn checkpoint_stem(&self, name: &str) -> Option<PathBuf> {
        if self.checkpoint_every == 0 {
            return None;
        }
        let dir = self
            .checkpoint_dir
            .clone()
            .or_else(|| self.csv_dir.clone())
            .unwrap_or_else(|| PathBuf::from("."));
        Some(dir.join(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_requested_scenario() {
        let s = Scenario::builder()
            .peers(500)
            .ticks(10)
            .attackers(7)
            .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
            .seed(1)
            .build();
        assert_eq!(s.sim.peers(), 500);
        assert_eq!(s.agents, 7);
        assert_eq!(s.ticks, 10);
        assert_eq!(s.defense.label(), "dd-police(CT=5)");
    }

    #[test]
    fn small_scenario_runs_end_to_end() {
        let report = Scenario::builder()
            .peers(200)
            .ticks(5)
            .attackers(3)
            .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
            .churn(false)
            .build()
            .run();
        assert_eq!(report.summary.ticks, 5);
        assert!(report.summary.attackers_cut > 0);
    }

    #[test]
    fn damage_report_pairs_baseline_and_attack() {
        let dr = Scenario::builder()
            .peers(200)
            .ticks(6)
            .attackers(10)
            .defense(DefenseKind::None)
            .churn(false)
            .build()
            .run_with_damage();
        assert_eq!(dr.damage.len(), 6);
        assert!(
            dr.stable_damage() > 0.3,
            "10 undefended agents on 200 peers must hurt: {}",
            dr.stable_damage()
        );
        assert!(dr.baseline.summary.success_rate_mean > dr.attacked.summary.success_rate_mean);
    }

    #[test]
    fn fair_share_scenario_uses_fair_forwarding() {
        // Smoke: runs and labels correctly.
        let report = Scenario::builder()
            .peers(200)
            .ticks(3)
            .attackers(5)
            .defense(DefenseKind::FairShare)
            .churn(false)
            .build()
            .run();
        assert_eq!(report.defense, "fair-share");
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let mk = || {
            Scenario::builder()
                .peers(200)
                .ticks(4)
                .attackers(5)
                .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
                .seed(77)
                .build()
                .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.series.success_rate, b.series.success_rate);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn replicate_seeds_differ() {
        let o = ExpOptions::default();
        assert_ne!(o.seed_for(0, 0), o.seed_for(0, 1));
        assert_ne!(o.seed_for(0, 0), o.seed_for(1, 0));
    }

    #[test]
    fn checkpoint_stem_resolution() {
        let mut o = ExpOptions::default();
        assert_eq!(o.checkpoint_stem("ct5_r0"), None, "off by default");
        o.checkpoint_every = 3;
        assert_eq!(o.checkpoint_stem("x"), Some(PathBuf::from("./x")));
        o.csv_dir = Some(PathBuf::from("out"));
        assert_eq!(o.checkpoint_stem("x"), Some(PathBuf::from("out/x")));
        o.checkpoint_dir = Some(PathBuf::from("ckpt"));
        assert_eq!(o.checkpoint_stem("x"), Some(PathBuf::from("ckpt/x")));
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ddp-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn checkpointable_scenario() -> Scenario {
        Scenario::builder()
            .peers(200)
            .ticks(8)
            .attackers(5)
            .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
            .seed(11)
            .build()
    }

    #[test]
    fn checkpointed_run_is_bit_identical_to_plain_run() {
        let s = checkpointable_scenario();
        let dir = scratch_dir("plain");
        let ckpt = dir.join("run.snap");
        let plain = s.run();
        let checkpointed = s.run_checkpointed(&ckpt, 3, false);
        assert_eq!(plain, checkpointed);
        assert!(ckpt.exists(), "periodic checkpoint must have been written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_mid_run_checkpoint_matches_uninterrupted_run() {
        let s = checkpointable_scenario();
        let dir = scratch_dir("resume");
        let ckpt = dir.join("run.snap");
        // Simulate a crash: run only to tick 5, leaving the tick-3 checkpoint.
        let mut partial = s.build_sim();
        while (partial.tick() as usize) < 5 {
            partial.step();
            if partial.tick() == 3 {
                partial.write_snapshot_file(&ckpt).unwrap();
            }
        }
        drop(partial);
        let resumed = s.run_checkpointed(&ckpt, 3, true);
        assert_eq!(s.run(), resumed, "resume must reproduce the uninterrupted run bit-for-bit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_full_rerun() {
        let s = checkpointable_scenario();
        let dir = scratch_dir("corrupt");
        let ckpt = dir.join("run.snap");
        std::fs::write(&ckpt, b"not a snapshot").unwrap();
        let report = s.run_checkpointed(&ckpt, 0, true);
        assert_eq!(s.run(), report, "a corrupt checkpoint must not change the numbers");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_damage_pair_matches_plain_pair() {
        let s = checkpointable_scenario();
        let dir = scratch_dir("damage");
        let stem = dir.join("pair");
        let plain = s.run_with_damage();
        let checkpointed = s.run_with_damage_checkpointed(&stem, 4, false);
        assert_eq!(plain, checkpointed);
        assert!(dir.join("pair-defended.snap").exists());
        assert!(dir.join("pair-baseline.snap").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
