//! High-level scenario builder: topology + workload + attack + defense in
//! one declarative value, runnable with one call.

use ddp_attack::{AttackPlan, CheatStrategy};
use ddp_metrics::recovery::{recovery_time, RecoveryThresholds};
use ddp_metrics::summary::{RunSeries, RunSummary};
use ddp_metrics::{damage_rate, TimeSeries};
use ddp_police::{DdPolice, DdPoliceConfig, NaiveRateLimit};
use ddp_sim::{
    CutRecord, Defense, FaultConfig, ForwardingPolicy, ListBehavior, NoDefense, SimConfig,
    Simulation,
};
use ddp_topology::{TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Which defense a scenario deploys.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseKind {
    /// Plain Gnutella, no protection.
    None,
    /// Local-only rate limiting (the Figure 1 strawman).
    NaiveRateLimit { threshold_qpm: u32 },
    /// DD-POLICE with the paper's defaults and the given cut threshold.
    DdPolice { cut_threshold: f64 },
    /// DD-POLICE with a fully custom configuration.
    DdPoliceFull(DdPoliceConfig),
    /// No detector, but fair per-link capacity sharing at saturated peers
    /// (the Daswani & Garcia-Molina-style survival baseline, paper's \[21\]).
    FairShare,
}

impl DefenseKind {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            DefenseKind::None => "none".into(),
            DefenseKind::NaiveRateLimit { .. } => "naive-limit".into(),
            DefenseKind::DdPolice { cut_threshold } => format!("dd-police(CT={cut_threshold})"),
            DefenseKind::DdPoliceFull(c) => format!("dd-police(CT={})", c.cut_threshold),
            DefenseKind::FairShare => "fair-share".into(),
        }
    }
}

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Engine configuration.
    pub sim: SimConfig,
    /// Deployed defense.
    pub defense: DefenseKind,
    /// Number of DDoS agents.
    pub agents: usize,
    /// How agents answer report requests (§3.4).
    pub cheat: CheatStrategy,
    /// How agents answer the neighbor-list exchange (§3.1).
    pub lists: ListBehavior,
    /// Simulated minutes.
    pub ticks: usize,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
}

impl Scenario {
    /// Start building a scenario from the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Run the scenario.
    pub fn run(&self) -> ScenarioReport {
        let mut sim_cfg = self.sim.clone();
        if matches!(self.defense, DefenseKind::FairShare) {
            sim_cfg.forwarding = ForwardingPolicy::FairShare;
        }
        let n = sim_cfg.peers();
        let defense: Box<dyn Defense> = match &self.defense {
            DefenseKind::None | DefenseKind::FairShare => Box::new(NoDefense),
            DefenseKind::NaiveRateLimit { threshold_qpm } => {
                Box::new(NaiveRateLimit::new(*threshold_qpm))
            }
            DefenseKind::DdPolice { cut_threshold } => {
                Box::new(DdPolice::new(DdPoliceConfig::with_cut_threshold(*cut_threshold), n))
            }
            DefenseKind::DdPoliceFull(cfg) => Box::new(DdPolice::new(*cfg, n)),
        };
        let mut sim = Simulation::new(sim_cfg, defense, self.seed);
        if self.agents > 0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xdd05_ee1f);
            let agents =
                AttackPlan::new(self.agents).with_cheat(self.cheat).apply(&mut sim, &mut rng);
            for a in agents {
                sim.set_list_behavior(a, self.lists);
            }
        }
        let result = sim.run(self.ticks);
        ScenarioReport {
            defense: self.defense.label(),
            summary: result.summary,
            series: result.series,
            cut_log: result.cut_log,
        }
    }

    /// Run the scenario *and* its paired no-attack baseline (same seed, same
    /// topology, no agents, no defense), yielding the damage-rate series
    /// `D(t) = (S(t) − S'(t)) / S(t)` of §3.7.2.
    pub fn run_with_damage(&self) -> DamageReport {
        let baseline_scenario = Scenario { defense: DefenseKind::None, agents: 0, ..self.clone() };
        let baseline = baseline_scenario.run();
        let attacked = self.run();
        let mut damage = TimeSeries::new("damage_rate");
        for t in 0..attacked.series.success_rate.len() {
            let s0 = baseline.series.success_rate.values.get(t).copied().unwrap_or(1.0);
            let s1 = attacked.series.success_rate.values[t];
            damage.push(damage_rate(s0, s1));
        }
        let recovery = recovery_time(&damage, RecoveryThresholds::default());
        DamageReport { attacked, baseline, damage, recovery_ticks: recovery }
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    sim: SimConfig,
    defense: DefenseKind,
    agents: usize,
    cheat: CheatStrategy,
    lists: ListBehavior,
    ticks: usize,
    seed: u64,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            sim: SimConfig::default(),
            defense: DefenseKind::None,
            agents: 0,
            cheat: CheatStrategy::Honest,
            lists: ListBehavior::Truthful,
            ticks: 30,
            seed: 42,
        }
    }
}

impl ScenarioBuilder {
    /// Overlay size.
    pub fn peers(mut self, n: usize) -> Self {
        self.sim.topology = TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 3 } };
        self
    }

    /// Simulated minutes.
    pub fn ticks(mut self, t: usize) -> Self {
        self.ticks = t;
        self
    }

    /// Number of DDoS agents.
    pub fn attackers(mut self, k: usize) -> Self {
        self.agents = k;
        self
    }

    /// Agents' report-cheating strategy.
    pub fn cheat(mut self, c: CheatStrategy) -> Self {
        self.cheat = c;
        self
    }

    /// Agents' neighbor-list lying strategy.
    pub fn lists(mut self, l: ListBehavior) -> Self {
        self.lists = l;
        self
    }

    /// Deployed defense.
    pub fn defense(mut self, d: DefenseKind) -> Self {
        self.defense = d;
        self
    }

    /// Master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Enable/disable churn.
    pub fn churn(mut self, on: bool) -> Self {
        self.sim.churn = on;
        self
    }

    /// Replace the whole engine config (advanced).
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Control-plane fault injection (lossy/delayed protocol messages,
    /// crash-restarting peers).
    pub fn faults(mut self, f: FaultConfig) -> Self {
        self.sim.faults = f;
        self
    }

    /// Finalize.
    pub fn build(self) -> Scenario {
        Scenario {
            sim: self.sim,
            defense: self.defense,
            agents: self.agents,
            cheat: self.cheat,
            lists: self.lists,
            ticks: self.ticks,
            seed: self.seed,
        }
    }
}

/// Result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Defense label.
    pub defense: String,
    /// Whole-run aggregates.
    pub summary: RunSummary,
    /// Per-tick series.
    pub series: RunSeries,
    /// Every defensive disconnection, in order (detection-latency analysis).
    pub cut_log: Vec<CutRecord>,
}

/// An attacked run paired with its no-attack baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DamageReport {
    pub attacked: ScenarioReport,
    pub baseline: ScenarioReport,
    /// `D(t)` per tick.
    pub damage: TimeSeries,
    /// §3.7.2 damage recovery time (ticks), if an episode occurred and
    /// completed.
    pub recovery_ticks: Option<usize>,
}

impl DamageReport {
    /// Mean damage over the stabilized last quarter of the run.
    pub fn stable_damage(&self) -> f64 {
        self.damage.tail_mean((self.damage.len() / 4).max(1))
    }
}

/// Common options every experiment runner takes.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Overlay size (default 2,000; `--paper-scale` selects 20,000).
    pub peers: usize,
    /// Simulated minutes per run.
    pub ticks: usize,
    /// Base seed; replicate seeds derive from it.
    pub seed: u64,
    /// Number of agents for fixed-attack experiments (paper: 100).
    pub agents: usize,
    /// Replicates averaged per configuration.
    pub replicates: usize,
    /// Where to write CSVs (none = stdout only).
    pub csv_dir: Option<PathBuf>,
    /// Reduced validation run. Runners with an expensive full grid (`scale`,
    /// `churn`, `fuzz`) read this directly; new runners inherit the flag
    /// with no per-runner plumbing.
    pub smoke: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            peers: 2_000,
            ticks: 30,
            seed: 42,
            agents: 100,
            replicates: 1,
            csv_dir: None,
            smoke: false,
        }
    }
}

impl ExpOptions {
    /// Seed for replicate `r` of configuration index `c`.
    pub fn seed_for(&self, c: usize, r: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((c as u64) << 32)
            .wrapping_add(r as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_requested_scenario() {
        let s = Scenario::builder()
            .peers(500)
            .ticks(10)
            .attackers(7)
            .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
            .seed(1)
            .build();
        assert_eq!(s.sim.peers(), 500);
        assert_eq!(s.agents, 7);
        assert_eq!(s.ticks, 10);
        assert_eq!(s.defense.label(), "dd-police(CT=5)");
    }

    #[test]
    fn small_scenario_runs_end_to_end() {
        let report = Scenario::builder()
            .peers(200)
            .ticks(5)
            .attackers(3)
            .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
            .churn(false)
            .build()
            .run();
        assert_eq!(report.summary.ticks, 5);
        assert!(report.summary.attackers_cut > 0);
    }

    #[test]
    fn damage_report_pairs_baseline_and_attack() {
        let dr = Scenario::builder()
            .peers(200)
            .ticks(6)
            .attackers(10)
            .defense(DefenseKind::None)
            .churn(false)
            .build()
            .run_with_damage();
        assert_eq!(dr.damage.len(), 6);
        assert!(
            dr.stable_damage() > 0.3,
            "10 undefended agents on 200 peers must hurt: {}",
            dr.stable_damage()
        );
        assert!(dr.baseline.summary.success_rate_mean > dr.attacked.summary.success_rate_mean);
    }

    #[test]
    fn fair_share_scenario_uses_fair_forwarding() {
        // Smoke: runs and labels correctly.
        let report = Scenario::builder()
            .peers(200)
            .ticks(3)
            .attackers(5)
            .defense(DefenseKind::FairShare)
            .churn(false)
            .build()
            .run();
        assert_eq!(report.defense, "fair-share");
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let mk = || {
            Scenario::builder()
                .peers(200)
                .ticks(4)
                .attackers(5)
                .defense(DefenseKind::DdPolice { cut_threshold: 5.0 })
                .seed(77)
                .build()
                .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.series.success_rate, b.series.success_rate);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn replicate_seeds_differ() {
        let o = ExpOptions::default();
        assert_ne!(o.seed_for(0, 0), o.seed_for(0, 1));
        assert_ne!(o.seed_for(0, 0), o.seed_for(1, 0));
    }
}
