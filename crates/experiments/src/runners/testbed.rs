//! Sim-vs-wire cross-validation on the multi-process testbed.
//!
//! Runs the *same* topology and attack three ways and puts the detection and
//! traffic numbers side by side:
//!
//! 1. **sim** — the in-memory [`Harness`] (one process, virtual time);
//! 2. **wire** — a mesh of real `ddp-servent` processes over loopback TCP,
//!    undisturbed;
//! 3. **wire+chaos** — the same mesh with a good neighbor of the attacker
//!    SIGKILL'd mid-run and a good-good edge severed mid-frame through a
//!    chaos proxy.
//!
//! The state machine is identical in all three, so detection (first cut of
//! the attacker, how many buddies cut it, isolation) must agree; the wire
//! rows additionally prove the supervised runtime survives process death and
//! torn sockets without hanging. Needs the `ddp-servent` binary on disk
//! (`cargo build --release -p ddp-servent`, or `DDP_SERVENT_BIN`).

use crate::output::Table;
use crate::scenario::ExpOptions;
use ddp_servent::{Harness, HarnessConfig, ServentRole};
use ddp_testbed::{MeshReport, MeshSpec, NodeSpec, WireMesh};
use ddp_topology::{NodeId, TopologyConfig, TopologyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const ATTACK_QPM: u32 = 1_500;
const QUERY_RATE_QPM: f64 = 2.0;
const CATALOG_SIZE: usize = 50;
const ITEMS_PER_PEER: usize = 8;

struct RunRow {
    mode: &'static str,
    first_cut_s: Option<u64>,
    cutters: usize,
    isolated: bool,
    issued: u64,
    frames: u64,
    bytes: u64,
    dropped: u64,
    completed: String,
    wall_s: f64,
}

impl RunRow {
    fn into_row(self) -> Vec<String> {
        vec![
            self.mode.to_string(),
            self.first_cut_s.map_or_else(|| "-".into(), |t| t.to_string()),
            self.cutters.to_string(),
            if self.isolated { "yes" } else { "NO" }.to_string(),
            self.issued.to_string(),
            self.frames.to_string(),
            self.bytes.to_string(),
            self.dropped.to_string(),
            self.completed,
            format!("{:.1}", self.wall_s),
        ]
    }
}

/// The shared catalog, identical to the one `ddp-servent --catalog-size 50`
/// builds for itself.
fn catalog() -> Vec<String> {
    (0..CATALOG_SIZE).map(|i| format!("item-{i:03}")).collect()
}

fn sim_row(
    graph: &ddp_topology::DynamicGraph,
    attacker: NodeId,
    role: ServentRole,
    minutes: u64,
    seed: u64,
) -> RunRow {
    let cfg = HarnessConfig {
        catalog: catalog(),
        items_per_peer: ITEMS_PER_PEER,
        query_rate_qpm: QUERY_RATE_QPM,
        ..HarnessConfig::default()
    };
    let started = Instant::now();
    let mut h = Harness::new(graph, &[(attacker, role)], cfg, seed);
    h.run_minutes(minutes);
    let isolated = h.servents[attacker.index()].neighbors().is_empty();
    let report = h.report();
    let cuts: Vec<&(u64, NodeId, NodeId)> =
        report.cuts.iter().filter(|&&(_, _, s)| s == attacker).collect();
    let mut observers: Vec<NodeId> = cuts.iter().map(|&&(_, o, _)| o).collect();
    observers.sort();
    observers.dedup();
    RunRow {
        mode: "sim",
        first_cut_s: cuts.iter().map(|&&(t, _, _)| t).min(),
        cutters: observers.len(),
        isolated,
        issued: report.issued as u64,
        frames: report.frames,
        bytes: report.bytes,
        dropped: report.frames_dropped,
        completed: format!("{n}/{n}", n = graph.node_count()),
        wall_s: started.elapsed().as_secs_f64(),
    }
}

fn wire_row(mode: &'static str, n: usize, attacker: u32, report: &MeshReport) -> RunRow {
    let conn = report.total_conn();
    let (issued, _resolved) = report.totals();
    RunRow {
        mode,
        first_cut_s: report.first_cut_of(attacker),
        cutters: report.cuts_of(attacker),
        isolated: report.isolated(attacker),
        issued,
        frames: conn.frames_sent,
        bytes: conn.bytes_sent,
        dropped: conn.frames_dropped,
        completed: format!("{}/{n}", report.summaries.len()),
        wall_s: report.wall.as_secs_f64(),
    }
}

/// Sim-vs-wire cross-validation table. `Err` carries a human-readable reason
/// (typically: the `ddp-servent` binary is not built).
pub fn testbed(opts: &ExpOptions) -> Result<Table, String> {
    let (n, minutes, tick_ms) = if opts.smoke { (10usize, 3u64, 30u64) } else { (16, 4, 40) };
    let attacker = NodeId(4);
    let role = ServentRole::FloodingAgent { rate_qpm: ATTACK_QPM, respond_reports: true };

    let graph = TopologyConfig { n, model: TopologyModel::BarabasiAlbert { m: 2 } }
        .generate(&mut StdRng::seed_from_u64(opts.seed));
    let edges: Vec<(u32, u32)> = graph.edges().map(|(u, v)| (u.0, v.0)).collect();
    let nodes: Vec<NodeSpec> = (0..n as u32)
        .map(|id| NodeSpec { id, role: if id == attacker.0 { role } else { ServentRole::Good } })
        .collect();

    // Chaos targets: SIGKILL the highest-id good neighbor of the attacker
    // (its reports vanish mid-run; assume-zero must absorb that), and sever
    // a good-good edge not touching the attacker or the victim.
    let victim = graph
        .neighbors(attacker)
        .iter()
        .map(|h| h.peer.0)
        .filter(|&p| p != attacker.0)
        .max()
        .ok_or("attacker has no neighbors in the generated graph")?;
    let severed = edges
        .iter()
        .copied()
        .find(|&(u, v)| ![u, v].iter().any(|&x| x == attacker.0 || x == victim))
        .ok_or("no good-good edge available to sever")?;

    let mut table = Table::new(
        "testbed_crossval",
        format!(
            "Sim vs wire cross-validation — n={n}, BA m=2, attacker {attacker} at \
             {ATTACK_QPM} qpm, {minutes} min, tick {tick_ms} ms \
             (chaos: SIGKILL servent {victim} @t~60s, sever edge \
             {severed:?} mid-frame @t~80s)"
        ),
        &[
            "mode",
            "first_cut_s",
            "cutters",
            "attacker_isolated",
            "issued",
            "frames",
            "bytes",
            "frames_dropped",
            "completed",
            "wall_s",
        ],
    );

    table.push_row(sim_row(&graph, attacker, role, minutes, opts.seed).into_row());

    let out_base = std::env::temp_dir().join(format!("ddp-testbed-{}", std::process::id()));
    let base_spec = MeshSpec {
        nodes,
        edges: edges.clone(),
        proxied_edges: vec![],
        minutes,
        tick_ms,
        seed: opts.seed,
        query_rate_qpm: QUERY_RATE_QPM,
        out_dir: out_base.join("wire"),
        checkpoint_every: None,
    };

    // Undisturbed wire mesh.
    let mesh = WireMesh::launch(base_spec.clone()).map_err(|e| format!("launch wire mesh: {e}"))?;
    let wire = mesh.collect();
    if !wire.hung.is_empty() {
        return Err(format!("wire mesh hung: servents {:?}", wire.hung));
    }
    table.push_row(wire_row("wire", n, attacker.0, &wire).into_row());

    // Chaos wire mesh: same spec, proxied severable edge, scheduled faults.
    let mut chaos_spec = base_spec;
    chaos_spec.proxied_edges = vec![severed];
    chaos_spec.out_dir = out_base.join("chaos");
    let mut mesh = WireMesh::launch(chaos_spec).map_err(|e| format!("launch chaos mesh: {e}"))?;
    // Protocol second t lands at roughly grace(500ms) + t*tick_ms wall time.
    std::thread::sleep(Duration::from_millis(700 + 60 * tick_ms));
    mesh.kill(victim).map_err(|e| format!("SIGKILL servent {victim}: {e}"))?;
    std::thread::sleep(Duration::from_millis(20 * tick_ms));
    mesh.sever(severed, true).map_err(|e| format!("sever {severed:?}: {e}"))?;
    let chaos = mesh.collect();
    if !chaos.hung.is_empty() {
        return Err(format!("chaos mesh hung: servents {:?}", chaos.hung));
    }
    table.push_row(wire_row("wire+chaos", n, attacker.0, &chaos).into_row());

    // Acceptance checks: detection must hold in every mode.
    for (mode, report) in [("wire", &wire), ("wire+chaos", &chaos)] {
        if report.first_cut_of(attacker.0).is_none() {
            return Err(format!("{mode}: attacker was never cut"));
        }
        if !report.isolated(attacker.0) {
            return Err(format!("{mode}: attacker not isolated among survivors"));
        }
    }

    let _ = std::fs::remove_dir_all(&out_base);
    Ok(table)
}
