//! Runners with closed-form or single-node content: Table 1, Figure 2,
//! Figures 5 and 6.

use crate::output::{f, pct, Table};
use ddp_protocol::{encode_message, Guid, Message, NeighborTraffic, Payload};
use ddp_testbed::ChainExperiment;
use std::net::Ipv4Addr;

/// Table 1: the `Neighbor_Traffic` message body, field by field, with byte
/// offsets taken from an actual encoding.
pub fn table1() -> Table {
    let nt = NeighborTraffic {
        source_ip: Ipv4Addr::new(10, 0, 0, 1),
        suspect_ip: Ipv4Addr::new(10, 0, 0, 2),
        timestamp: 1_185_000_000, // a 2007 timestamp, in the paper's spirit
        outgoing_queries: 412,
        incoming_queries: 5_204,
    };
    let msg = Message::new(Guid::derived(1, 1), 1, Payload::NeighborTraffic(nt));
    let wire = encode_message(&msg);
    let body = &wire[ddp_protocol::HEADER_LEN..];

    let mut t = Table::new(
        "table1_neighbor_traffic",
        "Table 1: Neighbor_Traffic message body (payload type 0x83)",
        &["field", "byte offset", "bytes", "encoded value"],
    );
    let fields: [(&str, usize, usize, String); 5] = [
        ("Source IP Address", 0, 4, nt.source_ip.to_string()),
        ("Suspect IP Address", 4, 4, nt.suspect_ip.to_string()),
        ("Source timestamp", 8, 4, nt.timestamp.to_string()),
        ("# of Outgoing queries", 12, 4, nt.outgoing_queries.to_string()),
        ("# of Incoming queries", 16, 4, nt.incoming_queries.to_string()),
    ];
    for (name, off, len, val) in fields {
        let hex: String = body[off..off + len].iter().map(|b| format!("{b:02x}")).collect();
        t.push_row(vec![name.into(), off.to_string(), format!("{len} (0x{hex})"), val]);
    }
    t.push_row(vec![
        "(unified Gnutella header)".into(),
        "-23".into(),
        "23".into(),
        format!("GUID + type 0x{:02x} + TTL + hops + length", msg.header.kind as u8),
    ]);
    t
}

/// Figure 2: the indicator worked example — peer j with three neighbors,
/// `g(j,t) = s(j,t,i) = q0 / q`.
pub fn fig2() -> Table {
    let q = 10u32;
    let mut t = Table::new(
        "fig2_indicator_example",
        "Figure 2: indicator worked example (k = 3 neighbors, q = 10/min)",
        &["q0 issued by j", "g(j,t)", "s(j,t,i)", "expected q0/q"],
    );
    for q0 in [5.0, 100.0, 5_000.0, 20_000.0] {
        let (q1, q2, q3) = (40.0, 70.0, 25.0);
        let out1 = q0 + q2 + q3;
        let out2 = q0 + q1 + q3;
        let out3 = q0 + q1 + q2;
        let g = ddp_police::indicator::general_indicator(out1 + out2 + out3, q1 + q2 + q3, 3, q);
        let s = ddp_police::indicator::single_indicator(out1, q2 + q3, q);
        t.push_row(vec![f(q0, 0), f(g, 1), f(s, 1), f(q0 / q as f64, 1)]);
    }
    t
}

/// Figure 5: queries sent by peer A vs processed by peer B.
pub fn fig5() -> Table {
    let mut t = Table::new(
        "fig5_sent_vs_processed",
        "Figure 5: queries sent out vs processed per minute (section 2.3 testbed)",
        &["sent/min", "processed/min", "dropped/min"],
    );
    for p in ChainExperiment::default().paper_sweep() {
        t.push_row(vec![
            p.sent_qpm.to_string(),
            p.processed_qpm.to_string(),
            p.dropped_qpm.to_string(),
        ]);
    }
    t
}

/// Figure 6: query drop rate vs query density at peer B.
pub fn fig6() -> Table {
    let mut t = Table::new(
        "fig6_drop_rate",
        "Figure 6: query drop rate vs query density (section 2.3 testbed)",
        &["received/min", "drop rate"],
    );
    for p in ChainExperiment::default().paper_sweep() {
        t.push_row(vec![p.sent_qpm.to_string(), pct(p.drop_rate)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_fields_plus_header_row() {
        let t = table1();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0][1], "0");
        assert_eq!(t.rows[4][1], "16");
    }

    #[test]
    fn fig2_matches_q0_over_q() {
        let t = fig2();
        for row in &t.rows {
            assert_eq!(row[1], row[3], "g must equal q0/q");
            assert_eq!(row[2], row[3], "s must equal q0/q");
        }
    }

    #[test]
    fn fig5_knee_at_15k() {
        let t = fig5();
        let knee: Vec<_> = t.rows.iter().filter(|r| r[2] != "0").collect();
        assert_eq!(knee.first().unwrap()[0], "16000", "drops start just past 15k");
    }

    #[test]
    fn fig6_terminal_drop_rate() {
        let t = fig6();
        assert_eq!(t.rows.last().unwrap()[1], "48.3%"); // 1 - 15000/29000
    }
}
