//! One runner per paper table/figure, plus ablations.

mod ablations;
mod churn;
mod collusion;
mod ct;
mod fuzz;
mod policy;
mod resilience;
mod scale;
mod sketch;
mod soak;
mod static_figs;
mod structured;
mod sweep;
mod testbed;

pub use ablations::{
    ablate_clamp, ablate_forwarding, ablate_lists, ablate_radius, ablate_rejoin, ablate_topology,
    ablate_warning,
};
pub use churn::{
    churn, churn_grid, churn_grid_params, churn_json, redetection_stats, validate_churn_json,
    ChurnCell, CHURN_CELL_KEYS, CHURN_SCHEMA, DWELLS, MEAN_SESSIONS, SESSION_MODELS,
};
pub use collusion::{
    collusion, collusion_grid, readmission, readmission_grid, CollusionCell, ReadmissionCell,
};
pub use ct::{ct_sweep, fig12, fig13, fig14, CtRow, CT_GRID};
pub use fuzz::{fuzz, fuzz_seed_range, FUZZ_SMOKE_SCENARIOS};
pub use policy::{cheating, exchange};
pub use resilience::{detection_latency, resilience, resilience_grid, ResilienceCell};
pub use scale::{
    measure_cell, scale, scale_grid, scale_json, validate_scale_json, ScaleCell, SCALE_CELL_KEYS,
    SCALE_SCHEMA,
};
pub use sketch::{
    measure_sketch_cell, sketch, sketch_grid, sketch_json, validate_sketch_json, SketchCell,
    SKETCH_CELL_KEYS, SKETCH_SCHEMA,
};
pub use soak::soak;
pub use static_figs::{fig2, fig5, fig6, table1};
pub use structured::structured;
pub use sweep::{agent_sweep, consequences, fig10, fig11, fig9, SweepRow};
pub use testbed::testbed;

use crate::output::Table;
use crate::scenario::ExpOptions;

/// Print a table and, if requested, persist it as CSV.
pub fn emit(table: &Table, opts: &ExpOptions) {
    print!("{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        match table.write_csv(dir) {
            Ok(path) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] {}: {e}", table.name),
        }
    }
    println!();
}
