//! `fuzz` — the differential fuzz campaign: seeded random scenarios through
//! the engine/oracle lockstep harness (`ddp-oracle`).
//!
//! Every scenario runs the optimized `DdPolice` engine and the naive paper
//! transcription side by side, comparing all observable defense state after
//! every tick. A clean campaign prints a coverage summary; the first
//! divergence is shrunk to a minimal spec, written as a replayable JSON
//! reproducer under `tests/repro/`, and fails the process — CI treats any
//! divergence as a broken engine optimization.

use crate::output::Table;
use crate::scenario::ExpOptions;
use ddp_oracle::{run_lockstep, shrink, ScenarioSpec};
use rayon::prelude::*;

/// Scenarios in a `--smoke` campaign (the acceptance floor is 50).
pub const FUZZ_SMOKE_SCENARIOS: u64 = 60;

/// Scenarios in a full campaign.
const FUZZ_FULL_SCENARIOS: u64 = 500;

/// Lockstep runs the shrinker may spend minimizing one divergence.
const SHRINK_BUDGET: usize = 400;

/// The fuzz-seed range a campaign covers: contiguous from the base seed, so
/// `--seed` selects a reproducible slice of the scenario space.
pub fn fuzz_seed_range(opts: &ExpOptions) -> std::ops::Range<u64> {
    let count = if opts.smoke { FUZZ_SMOKE_SCENARIOS } else { FUZZ_FULL_SCENARIOS };
    let base = opts.seed.wrapping_mul(0x1_0000); // seeds 41/42 never overlap
    base..base.wrapping_add(count)
}

/// Run the campaign. On divergence: shrink, write the reproducer, exit 1.
pub fn fuzz(opts: &ExpOptions) -> Table {
    let seeds: Vec<u64> = fuzz_seed_range(opts).collect();
    eprintln!("[fuzz] running {} seeded scenarios in lockstep", seeds.len());

    let outcomes: Vec<(u64, ScenarioSpec, Result<ddp_oracle::harness::LockstepStats, _>)> = seeds
        .par_iter()
        .map(|&fuzz_seed| {
            let spec = ScenarioSpec::random(fuzz_seed);
            let outcome = run_lockstep(&spec);
            (fuzz_seed, spec, outcome)
        })
        .collect();

    // Handle the first divergence (by seed order, for determinism).
    if let Some((fuzz_seed, spec, Err(d))) = outcomes
        .iter()
        .find(|(_, _, outcome)| outcome.is_err())
        .map(|(s, spec, o)| (*s, spec.clone(), o.clone()))
    {
        eprintln!("[fuzz] DIVERGENCE at fuzz seed {fuzz_seed}: {d}");
        eprintln!("[fuzz] shrinking (budget {SHRINK_BUDGET} lockstep runs)...");
        let repro = shrink(&spec, SHRINK_BUDGET)
            .expect("a spec that just diverged must diverge again under the same harness");
        eprintln!(
            "[fuzz] shrunk after {} runs to peers={} ticks={} agents={}: {}",
            repro.runs, repro.spec.peers, repro.spec.ticks, repro.spec.agents, repro.divergence
        );
        let json = repro.spec.to_json();
        let path = format!("tests/repro/fuzz_{fuzz_seed}.json");
        match std::fs::create_dir_all("tests/repro").and_then(|()| std::fs::write(&path, &json)) {
            Ok(()) => eprintln!("[fuzz] wrote reproducer {path} — commit it with the fix"),
            Err(e) => eprintln!("[fuzz] could not write {path} ({e}); reproducer spec:\n{json}"),
        }
        // Engine state one tick *before* the divergence, next to the JSON:
        // restore it and single-step straight into the failing tick instead
        // of replaying the whole run under a debugger.
        if repro.divergence.tick > 1 {
            let snap_path = format!("tests/repro/fuzz_{fuzz_seed}.snap");
            let mut engine = repro.spec.instantiate(ddp_police::DdPolice::new(
                repro.spec.police_config(),
                repro.spec.peers,
            ));
            engine.defense_mut().set_tracing(true);
            engine.defense_mut().set_force_fast_path(repro.spec.force_fast_path);
            while engine.tick() + 1 < repro.divergence.tick {
                engine.step();
            }
            match engine.write_snapshot_file(std::path::Path::new(&snap_path)) {
                Ok(()) => eprintln!(
                    "[fuzz] wrote pre-divergence snapshot {snap_path} (tick {})",
                    engine.tick()
                ),
                Err(e) => eprintln!("[fuzz] could not write {snap_path}: {e}"),
            }
        }
        std::process::exit(1);
    }

    // Clean campaign: coverage summary so a weak generator is visible.
    let mut ticks = 0u64;
    let mut judgments = 0u64;
    let mut cuts = 0u64;
    let (mut with_faults, mut with_churn, mut with_collusion, mut with_whitewash) =
        (0u64, 0u64, 0u64, 0u64);
    for (_, spec, outcome) in &outcomes {
        let stats = outcome.as_ref().expect("divergences handled above");
        ticks += u64::from(stats.ticks);
        judgments += stats.judgments as u64;
        cuts += stats.cuts as u64;
        with_faults += u64::from(spec.loss > 0.0 || spec.delay_prob > 0.0 || spec.crash_prob > 0.0);
        with_churn += u64::from(spec.churn || spec.session_mean > 0.0);
        with_collusion += u64::from(spec.collusion != 0);
        with_whitewash += u64::from(spec.whitewash_dwell > 0);
    }

    let mut table = Table::new(
        if opts.smoke { "fuzz_smoke" } else { "fuzz" },
        "Differential fuzz: optimized engine vs naive oracle, lockstep state equality",
        &[
            "scenarios",
            "divergences",
            "ticks",
            "judgments",
            "cuts",
            "faulty",
            "churning",
            "colluding",
            "whitewashing",
        ],
    );
    table.push_row(vec![
        outcomes.len().to_string(),
        "0".to_string(),
        ticks.to_string(),
        judgments.to_string(),
        cuts.to_string(),
        with_faults.to_string(),
        with_churn.to_string(),
        with_collusion.to_string(),
        with_whitewash.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_range_meets_the_acceptance_floor() {
        let opts = ExpOptions { smoke: true, ..ExpOptions::default() };
        assert!(fuzz_seed_range(&opts).count() >= 50);
    }

    #[test]
    fn seed_ranges_are_disjoint_across_base_seeds() {
        let a = fuzz_seed_range(&ExpOptions { seed: 41, smoke: false, ..ExpOptions::default() });
        let b = fuzz_seed_range(&ExpOptions { seed: 42, smoke: false, ..ExpOptions::default() });
        assert!(a.end <= b.start || b.end <= a.start);
    }

    #[test]
    fn a_slice_of_the_smoke_campaign_runs_clean() {
        let opts = ExpOptions { smoke: true, ..ExpOptions::default() };
        for fuzz_seed in fuzz_seed_range(&opts).take(5) {
            let spec = ScenarioSpec::random(fuzz_seed);
            if let Err(d) = run_lockstep(&spec) {
                panic!("fuzz seed {fuzz_seed} diverged at {d}\nspec:\n{}", spec.to_json());
            }
        }
    }
}
